#!/usr/bin/env python3
"""Design-space exploration: how cost weights steer multi-app allocation.

A miniature of the paper's Section 10.2 experiment: generate one
sequence per benchmark set, then allocate it on a 3x3 heterogeneous
mesh under the five cost-weight settings of Table 4 and report how many
applications fit and what limited further allocation.

Run:  python examples/design_space_exploration.py [--apps N]
"""

import sys

from repro import CostWeights, allocate_until_failure, benchmark_architectures
from repro.generate.benchmark import generate_benchmark_set

WEIGHTS = [
    CostWeights(1, 0, 0),
    CostWeights(0, 1, 0),
    CostWeights(0, 0, 1),
    CostWeights(1, 1, 1),
    CostWeights(0, 1, 2),
]
SETS = ["processing", "memory", "communication", "mixed"]


def main() -> None:
    count = 40
    if "--apps" in sys.argv:
        count = int(sys.argv[sys.argv.index("--apps") + 1])

    template = benchmark_architectures()[1]
    sequences = {
        set_name: generate_benchmark_set(
            set_name, count, template.processor_types(), seed=1
        )
        for set_name in SETS
    }

    print(f"{'weights':12s}" + "".join(f"{s:>15s}" for s in SETS))
    best = {s: (None, -1) for s in SETS}
    for weights in WEIGHTS:
        row = f"{str(weights):12s}"
        for set_name in SETS:
            architecture = template.copy()
            result = allocate_until_failure(
                architecture, sequences[set_name], weights=weights
            )
            row += f"{result.applications_bound:>15d}"
            if result.applications_bound > best[set_name][1]:
                best[set_name] = (weights, result.applications_bound)
        print(row)

    print("\nbest weights per set:")
    for set_name, (weights, bound) in best.items():
        print(f"  {set_name:14s} {weights} ({bound} applications)")
    print(
        "\nThe paper's finding: communication weight matters most "
        "(synchronisation drives slice sizes), memory is a strong "
        "secondary objective; (0,1,2) wins on the mixed set."
    )


if __name__ == "__main__":
    main()
