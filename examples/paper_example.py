#!/usr/bin/env python3
"""Walk through the paper's running example (Sections 3-9, Fig. 2-5).

Reproduces, on the two-tile platform of Table 1 and the three-actor
application of Table 2:

* the ideal throughput of the application SDFG (Fig. 5a),
* the binding-aware SDFG and its self-timed throughput (Fig. 5b),
* the schedule/TDMA-constrained throughput (Fig. 5c),
* the conservative model of the paper's ref [4] for comparison (§8.2),
* the Table 3 bindings under four cost-weight settings,
* the full three-step strategy.

Run:  python examples/paper_example.py
"""

from fractions import Fraction

from repro import CostWeights, ResourceAllocator, bind_application, throughput
from repro.appmodel.binding import SchedulingFunction
from repro.appmodel.binding_aware import build_binding_aware_graph
from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
    paper_example_binding,
)
from repro.baselines.tdma_inflation import tdma_inflated_throughput
from repro.core.scheduling import build_static_order_schedules
from repro.throughput.constrained import constrained_throughput


def fig5() -> None:
    print("=== Fig. 5: throughput under increasing realism ===")
    application = paper_example_application()
    architecture = paper_example_architecture()
    binding = paper_example_binding()

    ideal = throughput(application.graph, auto_concurrency=False).of("a3")
    print(f"(a) application SDFG alone        : a3 fires {ideal}/time-unit")

    slices = {"t1": 5, "t2": 5}  # 50% wheels, as in the figure
    bag = build_binding_aware_graph(
        application, architecture, binding, slices=slices
    )
    bound = throughput(bag.graph).of("a3")
    print(f"(b) binding-aware SDFG            : a3 fires {bound}/time-unit")

    schedules = build_static_order_schedules(bag)
    scheduling = SchedulingFunction()
    for tile, schedule in schedules.items():
        scheduling.set_schedule(tile, schedule)
        scheduling.set_slice(tile, slices[tile])
    constrained = constrained_throughput(
        bag.graph, bag.tile_constraints(scheduling)
    ).of("a3")
    print(f"(c) schedule+TDMA constrained     : a3 fires {constrained}/time-unit")

    inflated = tdma_inflated_throughput(bag, slices).of("a3")
    print(f"ref [4] (inflated execution times): a3 fires {inflated}/time-unit")
    print(
        "ordering reproduced: "
        f"{ideal} > {bound} > {constrained} >= {inflated}\n"
    )


def table3() -> None:
    print("=== Table 3: binding of actors for cost-weight settings ===")
    architecture = paper_example_architecture()
    print(f"{'c1,c2,c3':10s} {'a1':4s} {'a2':4s} {'a3':4s}")
    for weights in [(1, 0, 0), (0, 1, 0), (0, 0, 1), (1, 1, 1)]:
        application = paper_example_application()
        binding = bind_application(
            application, architecture, CostWeights(*weights)
        )
        row = " ".join(f"{binding.tile_of(a):4s}" for a in ("a1", "a2", "a3"))
        print(f"{str(weights):10s} {row}")
    print()


def full_strategy() -> None:
    print("=== Full strategy (Section 9) ===")
    application = paper_example_application(
        throughput_constraint=Fraction(1, 30)
    )
    architecture = paper_example_architecture()
    allocation = ResourceAllocator(weights=CostWeights(1, 1, 1)).allocate(
        application, architecture
    )
    print(f"binding   : {allocation.binding.assignment}")
    for tile in allocation.binding.used_tiles():
        schedule = allocation.scheduling.schedule_of(tile)
        print(
            f"schedule  : {tile}: ({' '.join(schedule.periodic)})*  "
            f"slice {allocation.scheduling.slice_of(tile)}/10"
        )
    print(
        f"throughput: {allocation.achieved_throughput} "
        f">= {application.throughput_constraint} "
        f"({allocation.throughput_checks} throughput checks)"
    )


if __name__ == "__main__":
    fig5()
    table3()
    full_strategy()
