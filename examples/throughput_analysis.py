#!/usr/bin/env python3
"""Throughput-analysis workflow: direct SDFG analysis vs the HSDF path.

Demonstrates the library's analysis layer on its own (no resource
allocation): exact self-timed throughput on the SDFG, the classical
SDF -> HSDF -> maximum-cycle-ratio route, and how the HSDF path's cost
explodes with the multirate factor while the direct path stays flat —
the paper's Section 1 argument.  Also shows SDF3-style XML export.

Run:  python examples/throughput_analysis.py
"""

from repro import sdf_to_hsdf, throughput
from repro.baselines.hsdf_path import timed_throughput_comparison
from repro.generate.classic import samplerate_converter
from repro.generate.multimedia import h263_decoder
from repro.sdf.serialization import graph_to_sdf3_xml


def main() -> None:
    # the classic CD-to-DAT converter (repetition vector 147/147/98/28/32/160)
    graph = samplerate_converter().graph
    result = throughput(graph)
    print(f"=== {graph.name}: direct state-space analysis ===")
    print(f"repetition vector : {result.gamma}")
    print(f"iteration rate    : {result.iteration_rate}")
    for actor in graph.actor_names:
        print(f"  throughput({actor}) = {result.of(actor)}")

    hsdf = sdf_to_hsdf(graph)
    print(f"\nHSDF expansion: {len(graph)} actors -> {len(hsdf)} actors")
    comparison = timed_throughput_comparison(graph)
    assert comparison.direct_rate == comparison.hsdf_rate
    print(
        f"both paths agree on the rate ({comparison.direct_rate}); "
        f"direct {comparison.direct_seconds * 1e3:.1f} ms vs "
        f"HSDF {comparison.hsdf_seconds * 1e3:.1f} ms"
    )

    print("\n=== scaling with the multirate factor (H.263 family) ===")
    print(f"{'macroblocks':>12s} {'hsdf actors':>12s} "
          f"{'direct (ms)':>12s} {'hsdf (ms)':>12s}")
    for macroblocks in (10, 50, 250, 1000):
        app = h263_decoder(macroblocks=macroblocks)
        comparison = timed_throughput_comparison(app.graph)
        print(
            f"{macroblocks:12d} {comparison.hsdf_actors:12d} "
            f"{comparison.direct_seconds * 1e3:12.1f} "
            f"{comparison.hsdf_seconds * 1e3:12.1f}"
        )

    print("\n=== SDF3-style XML export (first lines) ===")
    xml = graph_to_sdf3_xml(graph)
    print(xml[:300] + " ...")


if __name__ == "__main__":
    main()
