#!/usr/bin/env python3
"""The paper's Section 10.3 multimedia system.

Binds three H.263 decoders and one MP3 decoder to a 2x2 mesh with two
generic processors and two accelerators, using cost weights (2, 0, 1)
(balance processing, ignore memory, limit communication) — exactly the
paper's setup.  Reports per-application bindings, slices and the number
of throughput checks, plus the HSDFG sizes that make the classical
HSDF-based flow impractical on this system.

Run:  python examples/multimedia_system.py [--full]

By default the H.263 multirate factor is scaled to 99 macroblocks so
the script finishes in seconds; ``--full`` uses the paper's 2376
(HSDFG: 4754 actors per decoder, 14275 for the system) and takes a few
minutes — the point of the paper being that even that is *feasible*,
where an HSDF-based flow would take hours.
"""

import sys
import time

from repro import (
    CostWeights,
    ProcessorType,
    ResourceAllocator,
    allocate_until_failure,
    multimedia_architecture,
)
from repro.generate.multimedia import h263_decoder, mp3_decoder
from repro.sdf.repetition import iteration_length


def main() -> None:
    full = "--full" in sys.argv
    macroblocks = 2376 if full else 99

    generic = ProcessorType("generic")
    accelerator = ProcessorType("accelerator")
    architecture = multimedia_architecture()

    applications = [
        h263_decoder(
            f"h263-{index}",
            macroblocks=macroblocks,
            generic=generic,
            accelerator=accelerator,
        )
        for index in range(3)
    ]
    applications.append(mp3_decoder(generic=generic, accelerator=accelerator))

    total_hsdf = sum(iteration_length(app.graph) for app in applications)
    print(f"architecture : {architecture.name}")
    print(
        f"applications : 3x H.263 ({len(applications[0].graph)} actors, "
        f"HSDFG {iteration_length(applications[0].graph)}) + "
        f"MP3 ({len(applications[3].graph)} actors)"
    )
    print(f"system HSDFG : {total_hsdf} actors"
          + (" (paper: 14275)" if full else f" (paper, full-size: 14275)"))
    print()

    allocator = ResourceAllocator(weights=CostWeights(2, 0, 1))
    started = time.perf_counter()
    result = allocate_until_failure(
        architecture, applications, allocator=allocator
    )
    elapsed = time.perf_counter() - started

    print(f"bound {result.applications_bound}/4 applications "
          f"in {elapsed:.1f}s "
          f"({result.total_throughput_checks} throughput checks)")
    for allocation in result.allocations:
        tiles = ", ".join(
            f"{actor}->{tile}"
            for actor, tile in allocation.binding.assignment.items()
        )
        print(f"  {allocation.application.name:8s} {tiles}")
        print(
            f"           slices {allocation.scheduling.slices}  "
            f"throughput {allocation.achieved_throughput} "
            f"(constraint {allocation.application.throughput_constraint})"
        )
    print("\nresource utilisation at the end of the flow:")
    for resource, fraction in result.utilisation().items():
        print(f"  {resource:12s} {fraction:.2f}")


if __name__ == "__main__":
    main()
