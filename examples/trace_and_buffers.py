#!/usr/bin/env python3
"""Inspect a mapped application: Gantt trace, latency, buffer sizing.

Allocates the paper's running example, then uses the extension layer to

* draw the Gantt chart of the constrained execution (TDMA gating makes
  firings visibly stretch across the unreserved part of the wheel),
* report the first-output latency next to the steady-state period,
* shrink the channel buffers as far as the throughput guarantee allows
  (the storage/throughput trade-off of the authors' DAC'06 companion
  work), and
* emit Graphviz DOT for the binding.

Run:  python examples/trace_and_buffers.py
"""

from fractions import Fraction

from repro import CostWeights, ResourceAllocator
from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
)
from repro.extensions import (
    binding_to_dot,
    buffer_throughput_tradeoff,
    minimise_buffers,
    output_latency,
    render_gantt,
    trace_allocation,
)


def main() -> None:
    application = paper_example_application(
        throughput_constraint=Fraction(1, 60)
    )
    architecture = paper_example_architecture()
    allocation = ResourceAllocator(weights=CostWeights(1, 1, 1)).allocate(
        application, architecture
    )
    print(f"binding: {allocation.binding.assignment}")
    print(f"slices : {allocation.scheduling.slices}")
    print(f"rate   : {allocation.achieved_throughput}\n")

    print("=== Gantt trace (transient + one period) ===")
    events = trace_allocation(allocation, architecture)
    print(render_gantt(events, width=64))
    print()

    latency = output_latency(
        application.graph, "a3", auto_concurrency=False
    )
    print(
        f"first-output latency (application alone): {latency.latency} "
        f"time units; steady period {latency.iteration_period}\n"
    )

    print("=== storage/throughput trade-off ===")
    curve = buffer_throughput_tradeoff(
        application, architecture, allocation.binding, allocation.scheduling
    )
    for tokens, rate in curve:
        bar = "#" * int(rate * 400)
        print(f"  {tokens:3d} buffer tokens: rate {str(rate):7s} {bar}")

    sizing = minimise_buffers(
        application, architecture, allocation.binding, allocation.scheduling
    )
    print(
        f"\nper-channel minimisation saves {sizing.memory_saved} bits while "
        f"keeping rate {sizing.achieved_throughput} >= "
        f"{application.throughput_constraint}"
    )
    for name, new in sizing.buffers.items():
        old = sizing.original[name]
        print(
            f"  {name}: tile {old.buffer_tile}->{new.buffer_tile}  "
            f"src {old.buffer_src}->{new.buffer_src}  "
            f"dst {old.buffer_dst}->{new.buffer_dst}"
        )

    print("\n=== Graphviz (render with `dot -Tpdf`) ===")
    print(binding_to_dot(application, allocation.binding, architecture))


if __name__ == "__main__":
    main()
