#!/usr/bin/env python3
"""Quickstart: map one throughput-constrained application to an MP-SoC.

Builds a four-stage video-style pipeline with a multirate kernel,
declares its resource requirements, and asks the allocator for a
binding, per-tile static-order schedules and TDMA slices that guarantee
the throughput constraint.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import (
    ApplicationGraph,
    CostWeights,
    ProcessorType,
    ResourceAllocator,
    SDFGraph,
    mesh_architecture,
)


def build_application() -> ApplicationGraph:
    """A camera -> filter -> scale -> display pipeline.

    The filter works on 4-pixel blocks (multirate), and a feedback edge
    from display to camera with 2 tokens models double buffering.
    """
    graph = SDFGraph("pipeline")
    graph.add_actor("camera")
    graph.add_actor("filter")
    graph.add_actor("scale")
    graph.add_actor("display")
    graph.add_channel("raw", "camera", "filter", 4, 1)
    graph.add_channel("filtered", "filter", "scale", 1, 4)
    graph.add_channel("scaled", "scale", "display", 1, 1)
    graph.add_channel("vsync", "display", "camera", 1, 1, tokens=2)

    application = ApplicationGraph(
        graph,
        throughput_constraint=Fraction(1, 2000),  # frames per time unit
        output_actor="display",
    )

    dsp = ProcessorType("dsp")
    risc = ProcessorType("risc")
    # Gamma: (execution time, memory) per supported processor type
    application.set_actor_requirements("camera", (risc, 100, 2_000))
    application.set_actor_requirements(
        "filter", (dsp, 20, 1_000), (risc, 60, 1_500)
    )
    application.set_actor_requirements(
        "scale", (dsp, 40, 1_200), (risc, 90, 1_800)
    )
    application.set_actor_requirements("display", (risc, 120, 2_500))
    # Theta: token size, buffers (defaults are liveness-safe), bandwidth
    application.set_channel_requirements("raw", token_size=256, bandwidth=300)
    application.set_channel_requirements(
        "filtered", token_size=256, bandwidth=300
    )
    application.set_channel_requirements(
        "scaled", token_size=512, bandwidth=200
    )
    application.set_channel_requirements("vsync", token_size=8, bandwidth=50)
    return application


def main() -> None:
    application = build_application()
    platform = mesh_architecture(
        2,
        2,
        [ProcessorType("dsp"), ProcessorType("risc")],
        wheel=100,
        memory=100_000,
        bandwidth_in=2_000,
        bandwidth_out=2_000,
    )

    allocator = ResourceAllocator(weights=CostWeights(1, 1, 2))
    allocation = allocator.allocate(application, platform)

    print(f"application: {application.name}")
    print(f"constraint : {application.throughput_constraint} firings/unit\n")
    print("binding (actor -> tile [processor]):")
    for actor, tile in allocation.binding.assignment.items():
        processor = platform.tile(tile).processor_type.name
        print(f"  {actor:8s} -> {tile} [{processor}]")
    print("\nper-tile static-order schedules and TDMA slices:")
    for tile in allocation.binding.used_tiles():
        schedule = allocation.scheduling.schedule_of(tile)
        slice_size = allocation.scheduling.slice_of(tile)
        body = " ".join(schedule.periodic)
        prefix = " ".join(schedule.transient)
        rendered = f"{prefix} ({body})*" if prefix else f"({body})*"
        print(f"  {tile}: slice {slice_size:3d}/100   schedule {rendered}")
    print(
        f"\nguaranteed throughput: {allocation.achieved_throughput} "
        f"(constraint met: {allocation.satisfied})"
    )
    print(f"throughput checks used by the strategy: {allocation.throughput_checks}")


if __name__ == "__main__":
    main()
