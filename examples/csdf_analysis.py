#!/usr/bin/env python3
"""Cyclo-Static Dataflow: finer-grained pipelining than SDF allows.

The paper's related work contrasts its SDF strategy with Bilsen et
al.'s cyclo-static dataflow mapping ([6]).  This example shows the CSDF
substrate on a sample-interleaving stereo filter: the coarse SDF model
produces both channel samples in one long firing, while the CSDF model
splits the actor into two phases that release each channel's sample as
soon as it is ready — measurably improving throughput with identical
total work.

Run:  python examples/csdf_analysis.py
"""

from repro.csdf import (
    CSDFGraph,
    csdf_repetition_vector,
    csdf_throughput,
    sdf_to_csdf,
)
from repro.sdf.graph import SDFGraph
from repro.throughput.state_space import throughput


def coarse_sdf_model() -> SDFGraph:
    """SDF: the filter emits both samples after 8 time units.

    The tight rate-control loop (2 tokens) makes the feedback cycle the
    throughput bottleneck, which is exactly where phase-level token
    release pays off.
    """
    graph = SDFGraph("stereo-sdf")
    graph.add_actor("src", 2)
    graph.add_actor("filter", 8)  # processes L+R in one firing
    graph.add_actor("dac", 3)
    graph.add_channel("in", "src", "filter", 2, 2)
    graph.add_channel("out", "filter", "dac", 2, 1)
    graph.add_channel("rate", "dac", "src", 1, 2, tokens=2)
    return graph


def phased_csdf_model() -> CSDFGraph:
    """CSDF: the filter alternates L and R phases of 4 units each."""
    graph = CSDFGraph("stereo-csdf")
    graph.add_actor("src", [2])
    graph.add_actor("filter", [4, 4])  # same total work, two phases
    graph.add_actor("dac", [3])
    graph.add_channel("in", "src", "filter", [2], [1, 1])
    graph.add_channel("out", "filter", "dac", [1, 1], [1])
    graph.add_channel("rate", "dac", "src", [1], [2], tokens=2)
    return graph


def main() -> None:
    sdf = coarse_sdf_model()
    sdf_rate = throughput(sdf, auto_concurrency=False)
    print("=== coarse SDF model ===")
    print(f"repetition vector : {sdf_rate.gamma}")
    print(f"dac sample rate   : {sdf_rate.of('dac')}")

    csdf = phased_csdf_model()
    gamma = csdf_repetition_vector(csdf)
    csdf_rate = csdf_throughput(csdf, auto_concurrency=False)
    print("\n=== phased CSDF model (same total work) ===")
    print(f"repetition vector : {gamma}")
    print(f"dac sample rate   : {csdf_rate.of('dac')}")

    improvement = csdf_rate.of("dac") / sdf_rate.of("dac")
    print(f"\nCSDF phasing improves the sample rate by {improvement}x")

    # single-phase CSDF is exactly SDF: the engines agree
    lifted = sdf_to_csdf(sdf)
    assert (
        csdf_throughput(lifted, auto_concurrency=False).iteration_rate
        == sdf_rate.iteration_rate
    )
    print("(single-phase CSDF reproduces the SDF analysis exactly)")


if __name__ == "__main__":
    main()
