#!/usr/bin/env python3
"""AST-level repository invariants, run by ``make lint`` and CI.

The checks pin down drift that neither the test suite nor mypy can
notice, because nothing fails at runtime when they are violated — the
broken hook just silently never fires or the docs silently rot:

1. **Fault points are registered.**  Every ``fault_point("...")`` call
   site in ``src/`` names a point listed in
   ``repro.resilience.faults.KNOWN_FAULT_POINTS``.  A typo'd point
   would otherwise compile, run, and simply never be injectable.
2. **Trace events are documented.**  Every trace event emitted in
   ``src/`` (an ``.instant`` / ``.complete`` / ``.span`` call whose
   first two arguments are string literals — the ``(category, name)``
   pair) appears in the event catalogue table of
   ``docs/OBSERVABILITY.md``.
3. **No wall-clock reads outside the obs layer.**  ``time.time()`` is
   non-monotonic; engines and reports must use ``perf_counter`` or go
   through ``repro.obs``.  Both ``time.time(...)`` calls and
   ``from time import time`` imports are flagged outside
   ``src/repro/obs/``.
4. **Registered fault points are wired.**  The reverse of check 1:
   every point in ``KNOWN_FAULT_POINTS`` has at least one
   ``fault_point("...")`` call site somewhere under ``src/`` (the scan
   covers every package, including ``repro/service``).  A point whose
   hook was deleted would otherwise stay registered forever, and soak
   tests targeting it would silently inject nothing.
5. **Counters are documented.**  Every literal counter name passed to
   a ``.counter("...")`` call under ``src/`` appears in the counter
   catalogue table of ``docs/OBSERVABILITY.md`` (family prefix in the
   first cell joined with each backticked suffix in the second).
   Dynamically composed names (f-strings) are skipped here and listed
   in the catalogue with their expanded values by hand.
6. **Locks are registered.**  No bare ``threading.Lock()`` /
   ``threading.RLock()`` allocation exists under ``src/`` outside
   ``repro/obs/lockcheck.py`` (every lock must flow through
   ``make_lock`` so the runtime sanitizer can wrap it), every
   ``make_lock("<name>")`` literal equals the allocation site's
   derived node name ``<module>.<Class>.<attr>`` (the join key between
   the static lock-order graph and the sanitizer's observed edges),
   and every lock site documents its discipline — at least one
   ``# guarded-by:`` annotation naming it, or a ``# guards:`` comment
   on the allocation.  Uses :mod:`repro.analysis.source`.
7. **Exit codes are single-sourced.**  The ``EXIT_CODES`` /
   ``SANDBOX_EXIT_CODES`` registry in ``src/repro/exitcodes.py``
   matches the "Exit codes" table of ``docs/ROBUSTNESS.md``
   cell-for-cell, every integer ``return`` literal in
   ``src/repro/cli.py`` is a registered code, the sandbox modules
   define no exit-code literals of their own, and every
   ``HTTP_EXIT_MAP`` value is a registered code.

Checks 1-5 and 7 are read from source with :mod:`ast` — they never
import the package, so they work on a broken tree and add no import
side effects.  Check 6 reuses the concurrency analyser
(``repro.analysis.source``), which is itself pure AST over the same
files.  Exit status: 0 when clean, 1 with one ``file:line:``
diagnostic per violation otherwise.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import List, Set, Tuple

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
FAULTS = SRC / "resilience" / "faults.py"
OBSERVABILITY = REPO / "docs" / "OBSERVABILITY.md"
ROBUSTNESS = REPO / "docs" / "ROBUSTNESS.md"
EXITCODES = SRC / "exitcodes.py"
CLI = SRC / "cli.py"
LOCKCHECK = SRC / "obs" / "lockcheck.py"
SANDBOX_MODULES = (
    SRC / "service" / "sandbox.py",
    SRC / "service" / "sandbox_child.py",
)

#: methods whose leading (str, str) arguments form a trace event
_TRACE_METHODS = ("instant", "complete", "span")


def known_fault_points() -> Set[str]:
    """``KNOWN_FAULT_POINTS`` parsed out of the faults module source."""
    tree = ast.parse(FAULTS.read_text(), filename=str(FAULTS))
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "KNOWN_FAULT_POINTS"
            ):
                value = node.value
                assert isinstance(value, (ast.Tuple, ast.List))
                return {
                    element.value
                    for element in value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                }
    raise SystemExit(f"KNOWN_FAULT_POINTS not found in {FAULTS}")


def _catalogue_pairs(marker: str) -> Set[Tuple[str, str]]:
    """(first-cell, name) pairs from one OBSERVABILITY catalogue table.

    A catalogue is the markdown table directly under the ``marker``
    heading (parsing stops at the next ``###`` heading): the first
    cell is the backtick-quoted category/family, the second cell lists
    the backtick-quoted names.
    """
    text = OBSERVABILITY.read_text()
    start = text.index(marker)
    end = text.find("\n### ", start + len(marker))
    section = text[start : end if end != -1 else len(text)]
    pairs: Set[Tuple[str, str]] = set()
    for line in section.splitlines():
        cells = [cell.strip() for cell in line.strip().strip("|").split("|")]
        if len(cells) < 2 or not cells[0].startswith("`"):
            continue
        category = cells[0].strip("`")
        for name in re.findall(r"`([^`]+)`", cells[1]):
            pairs.add((category, name))
    if not pairs:
        raise SystemExit(
            f"no catalogue table under {marker!r} in {OBSERVABILITY}"
        )
    return pairs


def documented_events() -> Set[Tuple[str, str]]:
    """(category, event) pairs from the OBSERVABILITY event catalogue."""
    return _catalogue_pairs("### Event catalogue")


def documented_counters() -> Set[str]:
    """Full dotted counter names from the OBSERVABILITY counter catalogue."""
    return {
        f"{family}.{name}"
        for family, name in _catalogue_pairs("### Counter catalogue")
    }


def _string_args(call: ast.Call, count: int) -> List[str]:
    """The first ``count`` positional args, when all are str literals."""
    values = []
    for argument in call.args[:count]:
        if not (
            isinstance(argument, ast.Constant)
            and isinstance(argument.value, str)
        ):
            return []
        values.append(argument.value)
    return values if len(values) == count else []


def check_file(
    path: Path,
    fault_points: Set[str],
    events: Set[Tuple[str, str]],
    counters: Set[str],
    used_points: Set[str],
) -> List[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    relative = path.relative_to(REPO)
    in_obs = SRC / "obs" in path.parents
    problems: List[str] = []

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if (
                node.module == "time"
                and any(alias.name == "time" for alias in node.names)
                and not in_obs
            ):
                problems.append(
                    f"{relative}:{node.lineno}: 'from time import time' "
                    "outside repro.obs (use perf_counter or the obs layer)"
                )
            continue
        if not isinstance(node, ast.Call):
            continue
        function = node.func
        if isinstance(function, ast.Name) and function.id == "fault_point":
            names = _string_args(node, 1)
            if names:
                used_points.add(names[0])
            if names and names[0] not in fault_points:
                problems.append(
                    f"{relative}:{node.lineno}: fault_point "
                    f"{names[0]!r} is not in KNOWN_FAULT_POINTS "
                    "(repro/resilience/faults.py)"
                )
        elif isinstance(function, ast.Attribute):
            if (
                function.attr == "time"
                and isinstance(function.value, ast.Name)
                and function.value.id == "time"
                and not in_obs
            ):
                problems.append(
                    f"{relative}:{node.lineno}: time.time() outside "
                    "repro.obs (use perf_counter or the obs layer)"
                )
            elif function.attr in _TRACE_METHODS:
                pair = _string_args(node, 2)
                if pair and tuple(pair) not in events:
                    problems.append(
                        f"{relative}:{node.lineno}: trace event "
                        f"({pair[0]!r}, {pair[1]!r}) is not in the "
                        "docs/OBSERVABILITY.md event catalogue"
                    )
            elif function.attr == "counter":
                names = _string_args(node, 1)
                if names and names[0] not in counters:
                    problems.append(
                        f"{relative}:{node.lineno}: counter "
                        f"{names[0]!r} is not in the "
                        "docs/OBSERVABILITY.md counter catalogue"
                    )
    return problems


def check_lock_registry() -> List[str]:
    """Check 6: every lock allocation obeys the guarded-by discipline."""
    sys.path.insert(0, str(REPO / "src"))
    try:
        from repro.analysis.source import lock_registry
    finally:
        sys.path.pop(0)
    problems: List[str] = []
    paths = sorted(str(p) for p in SRC.rglob("*.py"))
    for site in lock_registry(paths):
        where = f"{Path(site.path).resolve().relative_to(REPO)}:{site.line}"
        if site.declared is None:
            if Path(site.path).resolve() != LOCKCHECK:
                problems.append(
                    f"{where}: bare lock allocation for "
                    f"{site.cls}.{site.attr}; allocate it with "
                    "make_lock(...) so the lock sanitizer can wrap it"
                )
        elif site.declared != site.node:
            problems.append(
                f"{where}: make_lock name {site.declared!r} does not "
                f"match the site's derived node name {site.node!r}"
            )
        if not site.documented:
            problems.append(
                f"{where}: lock {site.cls}.{site.attr} documents no "
                "discipline: add `# guarded-by: "
                f"{site.attr}` annotations on the state it protects "
                "or a `# guards: ...` comment on the allocation"
            )
    # belt and braces: a lock allocated outside a class attribute would
    # be invisible to lock_registry, so flag every bare constructor call
    for path in SRC.rglob("*.py"):
        if path.resolve() == LOCKCHECK:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("Lock", "RLock")
                and isinstance(func.value, ast.Name)
                and func.value.id == "threading"
            ):
                problems.append(
                    f"{path.relative_to(REPO)}:{node.lineno}: "
                    "threading.Lock() outside repro.obs.lockcheck — "
                    "allocate locks with make_lock(...)"
                )
    return problems


def _exitcode_tables() -> Tuple[dict, dict, dict]:
    """``EXIT_CODES`` / ``SANDBOX_EXIT_CODES`` / ``HTTP_EXIT_MAP``,
    parsed from the registry module source."""
    tree = ast.parse(EXITCODES.read_text(), filename=str(EXITCODES))
    constants: dict = {}
    tables: dict = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target = node.target
        else:
            continue
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if isinstance(value, ast.Constant) and isinstance(value.value, int):
            constants[target.id] = value.value
        elif isinstance(value, ast.Dict):
            table: dict = {}
            for key, val in zip(value.keys, value.values):
                if isinstance(key, ast.Constant):
                    resolved_key = key.value
                elif isinstance(key, ast.Name) and key.id in constants:
                    resolved_key = constants[key.id]
                else:
                    continue
                if isinstance(val, ast.Constant):
                    table[resolved_key] = val.value
                elif isinstance(val, ast.Name) and val.id in constants:
                    table[resolved_key] = constants[val.id]
            tables[target.id] = table
    for name in ("EXIT_CODES", "SANDBOX_EXIT_CODES", "HTTP_EXIT_MAP"):
        if name not in tables:
            raise SystemExit(f"{name} not found in {EXITCODES}")
    return (
        tables["EXIT_CODES"],
        tables["SANDBOX_EXIT_CODES"],
        tables["HTTP_EXIT_MAP"],
    )


def _documented_exit_codes() -> dict:
    """The ROBUSTNESS.md "### Exit codes" table as ``{code: meaning}``."""
    text = ROBUSTNESS.read_text()
    marker = "### Exit codes"
    start = text.index(marker)
    end = text.find("\n### ", start + len(marker))
    section = text[start : end if end != -1 else len(text)]
    table: dict = {}
    for line in section.splitlines():
        cells = [cell.strip() for cell in line.strip().strip("|").split("|")]
        if len(cells) < 2 or not cells[0].startswith("`"):
            continue
        code = cells[0].strip("`")
        if code.isdigit():
            table[int(code)] = cells[1]
    if not table:
        raise SystemExit(
            f"no exit-code table under {marker!r} in {ROBUSTNESS}"
        )
    return table


def check_exit_codes() -> List[str]:
    """Check 7: the exit-code registry, docs and call sites agree."""
    problems: List[str] = []
    exit_codes, sandbox_codes, http_map = _exitcode_tables()
    documented = _documented_exit_codes()
    registry = {**exit_codes, **sandbox_codes}
    for code in sorted(set(registry) | set(documented)):
        if code not in documented:
            problems.append(
                f"{ROBUSTNESS.relative_to(REPO)}: exit code {code} "
                "is registered in repro/exitcodes.py but missing from "
                "the '### Exit codes' table"
            )
        elif code not in registry:
            problems.append(
                f"{ROBUSTNESS.relative_to(REPO)}: exit code {code} "
                "is documented but not registered in repro/exitcodes.py"
            )
        elif registry[code] != documented[code]:
            problems.append(
                f"{ROBUSTNESS.relative_to(REPO)}: exit code {code} "
                f"meaning {documented[code]!r} differs from the "
                f"registry's {registry[code]!r}"
            )
    tree = ast.parse(CLI.read_text(), filename=str(CLI))
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Return)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, int)
            and node.value.value not in exit_codes
        ):
            problems.append(
                f"{CLI.relative_to(REPO)}:{node.lineno}: return "
                f"{node.value.value} is not a registered CLI exit code "
                "(repro/exitcodes.py EXIT_CODES)"
            )
    for module in SANDBOX_MODULES:
        tree = ast.parse(module.read_text(), filename=str(module))
        for node in tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id.startswith("EXIT_")
                for t in node.targets
            ):
                problems.append(
                    f"{module.relative_to(REPO)}:{node.lineno}: "
                    "EXIT_* defined locally; import it from "
                    "repro.exitcodes instead"
                )
    for status, code in sorted(http_map.items()):
        if code not in exit_codes:
            problems.append(
                f"{EXITCODES.relative_to(REPO)}: HTTP_EXIT_MAP[{status}] "
                f"= {code} is not a registered CLI exit code"
            )
    return problems


def main() -> int:
    fault_points = known_fault_points()
    events = documented_events()
    counters = documented_counters()
    problems: List[str] = []
    used_points: Set[str] = set()
    for path in sorted(SRC.rglob("*.py")):
        problems.extend(
            check_file(path, fault_points, events, counters, used_points)
        )
    for point in sorted(fault_points - used_points):
        problems.append(
            f"{FAULTS.relative_to(REPO)}: fault point {point!r} is "
            "registered in KNOWN_FAULT_POINTS but has no "
            "fault_point(...) call site under src/"
        )
    problems.extend(check_lock_registry())
    problems.extend(check_exit_codes())
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} invariant violation(s)")
        return 1
    print("repository invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
