#!/usr/bin/env python3
"""End-to-end telemetry smoke: a real daemon, a real sandboxed child.

Run by ``make test-telemetry`` and the CI service job.  The script

1. starts ``repro-alloc serve`` as a subprocess on an ephemeral port
   with **process isolation** (so a sandbox child really spools a
   telemetry sidecar and the parent really harvests it),
2. submits the paper's running example through the HTTP API,
3. waits for the job to reach a terminal state,
4. scrapes ``/metrics`` and validates the Prometheus exposition —
   format-level with :func:`repro.obs.prom.validate_exposition`, and
   content-level: harvested ``repro_child_*`` counters and the
   queue-wait / attempt-latency histogram families must be present,
5. fetches the merged ``/jobs/<id>/trace`` and checks the parent and
   the sandboxed child sit on distinct pid lanes of one Chrome trace,
6. writes scrape / trace / timeline / health artifacts into ``--out``
   so CI uploads them for eyeballing in Perfetto,
7. drains the daemon.

Exit status: 0 on success, 1 with one diagnostic per failed check.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.obs.prom import parse_exposition, validate_exposition  # noqa: E402

TERMINAL = {"certified", "degraded", "failed", "quarantined"}


def _get(url: str, timeout: float = 10.0) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read()


def _post(url: str, payload: Dict[str, Any], timeout: float = 10.0) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.read()


def _wait_endpoint(spool: str, timeout: float = 30.0) -> str:
    path = os.path.join(spool, "endpoint.json")
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)["url"].rstrip("/")
        except (OSError, json.JSONDecodeError, KeyError):
            time.sleep(0.1)
    raise RuntimeError(f"daemon never announced an endpoint in {spool}")


def _wait_terminal(url: str, job_id: str, timeout: float = 180.0) -> Dict:
    deadline = time.perf_counter() + timeout
    record: Dict[str, Any] = {}
    while time.perf_counter() < deadline:
        record = json.loads(_get(f"{url}/jobs/{job_id}"))
        if record.get("state") in TERMINAL:
            return record
        time.sleep(0.25)
    raise RuntimeError(
        f"job {job_id} never reached a terminal state "
        f"(last: {record.get('state')!r})"
    )


def _paper_request() -> Dict[str, Any]:
    from repro.appmodel.example import (
        paper_example_application,
        paper_example_architecture,
    )
    from repro.appmodel.serialization import application_to_dict
    from repro.arch.serialization import architecture_to_dict

    return {
        "application": application_to_dict(paper_example_application()),
        "architecture": architecture_to_dict(paper_example_architecture()),
    }


def run(out_dir: str, keep_daemon_log: bool = True) -> List[str]:
    problems: List[str] = []
    os.makedirs(out_dir, exist_ok=True)
    spool = os.path.join(out_dir, "spool")
    log_path = os.path.join(out_dir, "daemon.log.jsonl")

    environment = dict(os.environ)
    environment["PYTHONPATH"] = SRC + os.pathsep + environment.get(
        "PYTHONPATH", ""
    )
    daemon = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--spool",
            spool,
            "--port",
            "0",
            "--workers",
            "1",
            "--isolation",
            "process",
            "--log",
            log_path,
            "--log-level",
            "debug",
        ],
        env=environment,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        url = _wait_endpoint(spool)
        print(f"telemetry-smoke: daemon up at {url}")

        accepted = json.loads(_post(f"{url}/jobs", _paper_request()))
        job_id = accepted["id"]
        record = _wait_terminal(url, job_id)
        print(f"telemetry-smoke: {job_id} -> {record['state']}")
        if record["state"] != "certified":
            problems.append(
                f"expected the paper example to certify, got "
                f"{record['state']!r} ({record.get('reason')!r})"
            )

        # -- scrape ---------------------------------------------------
        scrape = _get(f"{url}/metrics").decode("utf-8")
        with open(
            os.path.join(out_dir, "metrics.prom"), "w", encoding="utf-8"
        ) as handle:
            handle.write(scrape)
        for problem in validate_exposition(scrape):
            problems.append(f"/metrics exposition: {problem}")
        samples = parse_exposition(scrape)
        if not any(name.startswith("repro_child_") for name in samples):
            problems.append(
                "no repro_child_* counters in the scrape — the sandbox "
                "telemetry sidecar was not harvested"
            )
        for family in (
            "repro_service_queue_wait_seconds",
            "repro_service_attempt_seconds",
        ):
            if f"{family}_count" not in samples:
                problems.append(f"histogram family {family} missing")
            if not any(
                name.startswith(f"{family}_bucket") for name in samples
            ):
                problems.append(f"{family} has no _bucket samples")

        # -- merged per-job trace ------------------------------------
        trace = json.loads(_get(f"{url}/jobs/{job_id}/trace"))
        with open(
            os.path.join(out_dir, f"{job_id}.trace.json"),
            "w",
            encoding="utf-8",
        ) as handle:
            json.dump(trace, handle, indent=2)
        events = trace.get("traceEvents", [])
        pids = {event.get("pid") for event in events if "pid" in event}
        if len(pids) < 2:
            problems.append(
                f"merged trace has pid lanes {sorted(pids)} — expected "
                "parent and sandbox child on distinct lanes"
            )

        timeline = json.loads(_get(f"{url}/jobs/{job_id}/timeline"))
        with open(
            os.path.join(out_dir, f"{job_id}.timeline.json"),
            "w",
            encoding="utf-8",
        ) as handle:
            json.dump(timeline, handle, indent=2)
        sources = {entry.get("source") for entry in timeline["timeline"]}
        if not any(str(s).startswith("sandbox") for s in sources):
            problems.append(
                f"timeline sources {sorted(map(str, sources))} carry no "
                "sandbox-child segment"
            )

        health = json.loads(_get(f"{url}/health"))
        with open(
            os.path.join(out_dir, "health.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(health, handle, indent=2)

        try:
            _post(f"{url}/drain", {})
        except (urllib.error.URLError, OSError):
            pass
    finally:
        if daemon.poll() is None:
            daemon.send_signal(signal.SIGTERM)
        try:
            _, stderr = daemon.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            daemon.kill()
            _, stderr = daemon.communicate()
            problems.append("daemon did not drain within 30s of SIGTERM")
        if keep_daemon_log and stderr:
            with open(
                os.path.join(out_dir, "daemon.stderr.txt"),
                "w",
                encoding="utf-8",
            ) as handle:
                handle.write(stderr)
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default="telemetry-artifacts",
        help="directory for the scrape/trace/timeline artifacts",
    )
    arguments = parser.parse_args()
    problems = run(arguments.out)
    for problem in problems:
        print(f"telemetry-smoke: FAIL: {problem}", file=sys.stderr)
    if problems:
        print(f"{len(problems)} telemetry check(s) failed", file=sys.stderr)
        return 1
    print(
        f"telemetry-smoke: all checks passed (artifacts in "
        f"{arguments.out}/)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
