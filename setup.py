"""Setuptools shim.

Allows ``python setup.py develop`` on machines without the ``wheel``
package (PEP 660 editable installs need it); all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
