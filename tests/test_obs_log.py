"""Structured JSON logging: null-by-default, bound fields, resilience.

Same contract as the metrics/trace planes: a no-op singleton until the
daemon configures it, one JSON object per line once it is on, and a
logging failure must never propagate into the service.
"""

import io
import json

import pytest

from repro.obs.log import (
    LEVELS,
    NULL_LOGGER,
    JsonLogger,
    NullLogger,
    configure_logging,
    disable_logging,
    get_logger,
    logging_to,
)

pytestmark = pytest.mark.telemetry


def _records(stream):
    return [
        json.loads(line)
        for line in stream.getvalue().splitlines()
        if line.strip()
    ]


def test_null_by_default():
    assert get_logger() is NULL_LOGGER
    assert NULL_LOGGER.enabled is False
    assert NULL_LOGGER.bind(job="x") is NULL_LOGGER
    NULL_LOGGER.info("nothing.happens", job="x")  # must not raise


def test_records_are_json_lines_with_envelope():
    stream = io.StringIO()
    with logging_to(stream) as log:
        assert get_logger() is log
        log.info("job.submitted", job="job-000001")
    assert get_logger() is NULL_LOGGER  # restored on exit
    (record,) = _records(stream)
    assert record["level"] == "info"
    assert record["event"] == "job.submitted"
    assert record["job"] == "job-000001"
    assert isinstance(record["ts"], float)


def test_level_threshold_drops_quieter_records():
    stream = io.StringIO()
    with logging_to(stream, level="warning") as log:
        log.debug("dropped")
        log.info("dropped.too")
        log.warning("kept")
        log.error("kept.too")
    events = [record["event"] for record in _records(stream)]
    assert events == ["kept", "kept.too"]


def test_levels_are_ordered():
    assert LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"]
    assert LEVELS["warning"] < LEVELS["error"]


def test_unknown_level_is_rejected():
    with pytest.raises(ValueError, match="unknown log level"):
        JsonLogger(io.StringIO(), level="loud")


def test_bind_merges_and_overrides_fields():
    stream = io.StringIO()
    root = JsonLogger(stream)
    child = root.bind(job="job-000001", attempt=1)
    grandchild = child.bind(attempt=2)
    grandchild.info("attempt.start")
    # per-call fields win over bound fields
    grandchild.info("attempt.end", attempt=3)
    first, second = _records(stream)
    assert (first["job"], first["attempt"]) == ("job-000001", 2)
    assert second["attempt"] == 3


def test_bind_does_not_mutate_the_parent():
    stream = io.StringIO()
    root = JsonLogger(stream)
    root.bind(job="job-000001")
    root.info("bare")
    (record,) = _records(stream)
    assert "job" not in record


def test_configure_logging_to_path_appends(tmp_path):
    path = str(tmp_path / "daemon.log.jsonl")
    try:
        configure_logging(path).info("first")
        # reconfiguring reopens in append mode — no truncation
        configure_logging(path).info("second")
    finally:
        disable_logging()
    with open(path) as handle:
        events = [json.loads(line)["event"] for line in handle]
    assert events == ["first", "second"]


def test_non_serialisable_fields_are_stringified():
    stream = io.StringIO()
    JsonLogger(stream).info("odd.payload", value={1, 2})
    (record,) = _records(stream)
    assert isinstance(record["value"], str)


def test_emit_failure_is_swallowed():
    stream = io.StringIO()
    log = JsonLogger(stream)
    stream.close()
    log.info("into.the.void")  # must not raise


def test_null_and_json_logger_share_an_interface():
    for method in ("bind", "debug", "info", "warning", "error"):
        assert hasattr(NullLogger(), method)
        assert hasattr(JsonLogger(io.StringIO()), method)
