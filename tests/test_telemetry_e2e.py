"""Acceptance e2e for the telemetry plane (docs/OBSERVABILITY.md).

One process-isolated daemon run must yield, for the same job:

1. a **valid Prometheus scrape** over HTTP carrying the harvested
   ``child.*`` counters and the queue-wait / attempt-latency histogram
   families, and
2. **one merged Chrome trace** with the service and the sandbox child
   on distinct pid lanes,

with every service log record correlated by job id.  This is the
in-process twin of ``tools/telemetry_smoke.py`` (which drives the real
``repro-alloc serve`` subprocess in CI).
"""

import io
import json
import threading
import urllib.request

import pytest

from repro.obs import collecting, tracing
from repro.obs.log import logging_to
from repro.obs.prom import (
    CONTENT_TYPE,
    parse_exposition,
    validate_exposition,
)
from repro.obs.telemetry import PARENT_PID
from repro.service import AllocationService, RetryPolicy
from repro.service.httpd import ServiceHTTPServer

from tests.service_helpers import fast_request

pytestmark = [pytest.mark.telemetry, pytest.mark.service]


def test_process_isolated_daemon_exposes_child_telemetry(tmp_path):
    log_stream = io.StringIO()
    with collecting(), tracing(), logging_to(log_stream, level="debug"):
        service = AllocationService(
            str(tmp_path / "spool"),
            workers=1,
            isolation="process",
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, jitter=0.0),
            heartbeat_interval=0.1,
        ).start()
        server = ServiceHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        try:
            application, architecture = fast_request()
            job_id = service.submit(application, architecture)
            record = service.wait(job_id, timeout=120)
            assert record["state"] == "certified"

            # -- 1. the scrape ---------------------------------------
            with urllib.request.urlopen(f"{url}/metrics", timeout=10) as r:
                assert r.headers["Content-Type"] == CONTENT_TYPE
                scrape = r.read().decode("utf-8")
            assert validate_exposition(scrape) == []
            samples = parse_exposition(scrape)
            # the child's engine counters were harvested and summed
            # into the parent registry under the child.* namespace
            child_families = [
                name
                for name in samples
                if name.startswith("repro_child_") and name.endswith("_total")
            ]
            assert child_families, "no harvested child.* counters in scrape"
            assert samples["repro_service_telemetry_harvested_total"] >= 1
            # both latency histogram families, with observations
            for family in (
                "repro_service_queue_wait_seconds",
                "repro_service_attempt_seconds",
            ):
                assert samples[f"{family}_count"] >= 1
                assert any(
                    name.startswith(f"{family}_bucket") for name in samples
                )
            # scrape-time gauges from stats()
            assert "repro_service_queue_depth" in samples
            assert samples["repro_service_healthy"] == 1

            # -- 2. the merged trace ---------------------------------
            with urllib.request.urlopen(
                f"{url}/jobs/{job_id}/trace", timeout=10
            ) as r:
                document = json.loads(r.read())
            events = document["traceEvents"]
            pids = {e["pid"] for e in events if e.get("ph") != "M"}
            assert PARENT_PID in pids
            assert len(pids) >= 2, (
                f"expected parent + sandbox child pid lanes, got {pids}"
            )
            child_pids = pids - {PARENT_PID}
            # the child lane carries real engine events, not just marks
            assert any(
                e["pid"] in child_pids and e.get("ph") == "X"
                for e in events
            )
            # both lanes describe the same job: the parent lane carries
            # the job's service events
            parent_names = {
                e["name"] for e in events if e["pid"] == PARENT_PID
            }
            assert "job" in parent_names or "queue.wait" in parent_names

            # -- the timeline view merges both sources ---------------
            with urllib.request.urlopen(
                f"{url}/jobs/{job_id}/timeline", timeout=10
            ) as r:
                timeline = json.loads(r.read())["timeline"]
            sources = {entry["source"] for entry in timeline}
            assert "service" in sources
            assert any(str(s).startswith("sandbox-a") for s in sources)
            timestamps = [entry["timestamp"] for entry in timeline]
            assert timestamps == sorted(timestamps)

            # -- structured logs correlate by job id -----------------
            records = [
                json.loads(line)
                for line in log_stream.getvalue().splitlines()
            ]
            attempt_events = [
                r["event"] for r in records if r.get("job") == job_id
            ]
            assert "attempt.start" in attempt_events
            assert "attempt.end" in attempt_events
            assert "job.finished" in attempt_events
        finally:
            server.shutdown()
            server.server_close()
            service.drain(cancel_running=True)


def test_thread_isolation_has_no_child_lanes(tmp_path):
    """The same endpoints degrade gracefully without a sandbox child."""
    with collecting(), tracing():
        service = AllocationService(
            str(tmp_path / "spool"), workers=1, isolation="thread"
        ).start()
        try:
            application, architecture = fast_request()
            job_id = service.submit(application, architecture)
            assert service.wait(job_id, timeout=60)["state"] == "certified"
            document = service.job_chrome_trace(job_id)
            pids = {
                e["pid"]
                for e in document["traceEvents"]
                if e.get("ph") != "M"
            }
            assert pids == {PARENT_PID}
            timeline = service.timeline(job_id)
            assert {e["source"] for e in timeline} == {"service"}
        finally:
            service.drain(cancel_running=True)
