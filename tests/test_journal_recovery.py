"""Journal recovery under torn writes and schema evolution.

Two families of damage the daemon must shrug off at startup:

* **Torn writes** — a crash inside the atomic-rename window leaves a
  ``.tmp`` file next to an intact record, and a crash (or filesystem
  fault) can leave a zero-byte ``job-*.json``.  Recovery discards the
  former (the real record still holds the last durable state) and
  quarantines the latter as ``.corrupt`` without losing any sibling.
* **Old schemas** — version-1 records (no ``limits``, no
  ``sandbox_verdict``) must stay readable forever: they gain the new
  fields with their defaults and are re-stamped as version 2 on the
  next write.
"""

import json
import os

import pytest

from repro.service import JobJournal, JournalError
from repro.service.journal import (
    JOB_VERSION,
    new_job_record,
    validate_job_record,
)

pytestmark = pytest.mark.service


def _record(job_id="job-000001", **overrides):
    record = new_job_record(
        job_id,
        request={"application": {}, "architecture": {}},
        canonical={},
        max_attempts=3,
    )
    record.update(overrides)
    return record


def test_recover_discards_stale_tmp_and_keeps_the_record(tmp_path):
    journal = JobJournal(str(tmp_path))
    journal.write(_record())
    # a crash between fsync and rename leaves the temp file behind
    torn = os.path.join(journal.jobs_dir, "job-000001.json.tmp")
    with open(torn, "w") as handle:
        handle.write('{"format": "repro-service-job", "version"')

    records, corrupted = JobJournal(str(tmp_path)).recover()

    assert not os.path.exists(torn)
    assert corrupted == []
    assert [r["id"] for r in records] == ["job-000001"]


def test_recover_quarantines_zero_byte_record(tmp_path):
    journal = JobJournal(str(tmp_path))
    journal.write(_record("job-000001"))
    journal.write(_record("job-000002"))
    zero = journal.path("job-000002")
    open(zero, "w").close()

    records, corrupted = JobJournal(str(tmp_path)).recover()

    assert [r["id"] for r in records] == ["job-000001"]
    assert corrupted == ["job-000002.json"]
    assert os.path.exists(zero + ".corrupt")
    assert not os.path.exists(zero)


def test_recover_resumes_ids_past_corrupt_and_tmp_files(tmp_path):
    journal = JobJournal(str(tmp_path))
    journal.write(_record("job-000007"))
    open(os.path.join(journal.jobs_dir, "job-000008.json"), "w").close()
    # id allocation must not reuse the corrupt record's id
    assert JobJournal(str(tmp_path)).next_id() == "job-000009"


def test_version1_record_upgrades_in_place(tmp_path):
    journal = JobJournal(str(tmp_path))
    v1 = _record("job-000001")
    del v1["limits"]
    del v1["sandbox_verdict"]
    v1["version"] = 1
    with open(journal.path("job-000001"), "w") as handle:
        json.dump(v1, handle)

    loaded = journal.load("job-000001")
    assert loaded["version"] == JOB_VERSION
    assert loaded["limits"] == {}
    assert loaded["sandbox_verdict"] is None

    # and the upgraded record round-trips through a durable write
    journal.write(loaded)
    assert journal.load("job-000001")["version"] == JOB_VERSION


def test_unknown_future_version_is_rejected():
    futuristic = _record(version=JOB_VERSION + 1)
    with pytest.raises(JournalError, match="unsupported job record"):
        validate_job_record(futuristic, source="test")


def test_recovered_v1_job_keeps_its_state(tmp_path):
    journal = JobJournal(str(tmp_path))
    v1 = _record("job-000003", state="certified")
    del v1["limits"]
    del v1["sandbox_verdict"]
    v1["version"] = 1
    with open(journal.path("job-000003"), "w") as handle:
        json.dump(v1, handle)

    records, corrupted = JobJournal(str(tmp_path)).recover()
    assert corrupted == []
    (record,) = records
    assert record["state"] == "certified"
    assert record["version"] == JOB_VERSION
