"""Integration tests: full pipelines across modules."""

import random
from fractions import Fraction

import pytest

from repro import (
    ApplicationGraph,
    CostWeights,
    ProcessorType,
    ResourceAllocator,
    SDFGraph,
    allocate_until_failure,
    benchmark_architectures,
    mesh_architecture,
    multimedia_architecture,
)
from repro.appmodel.binding_aware import build_binding_aware_graph
from repro.generate.benchmark import generate_benchmark_set
from repro.generate.multimedia import h263_decoder, mp3_decoder
from repro.throughput.constrained import constrained_throughput
from repro.throughput.state_space import throughput


def test_quickstart_from_package_docstring():
    proc = ProcessorType("dsp")
    graph = SDFGraph("app")
    graph.add_actor("src")
    graph.add_actor("sink")
    graph.add_channel("d", "src", "sink", 2, 1)
    app = ApplicationGraph(graph, throughput_constraint=0, output_actor="sink")
    app.set_actor_requirements("src", (proc, 5, 100))
    app.set_actor_requirements("sink", (proc, 3, 100))
    app.set_channel_requirements("d", token_size=32, bandwidth=64)
    platform = mesh_architecture(2, 2, [proc])
    allocation = ResourceAllocator(weights=CostWeights(0, 1, 2)).allocate(
        app, platform
    )
    assert allocation.satisfied


def test_generated_set_allocates_and_respects_constraints():
    arch = benchmark_architectures()[2]
    apps = generate_benchmark_set(
        "mixed", 6, arch.processor_types(), seed=13
    )
    result = allocate_until_failure(
        arch, apps, weights=CostWeights(0, 1, 2)
    )
    assert result.applications_bound >= 1
    for allocation in result.allocations:
        assert allocation.satisfied
        # committed resources never exceed capacity
    for tile in arch.tiles:
        assert tile.wheel_occupied <= tile.wheel
        assert tile.memory_occupied <= tile.memory
        assert tile.connections_occupied <= tile.max_connections
        assert tile.bandwidth_in_occupied <= tile.bandwidth_in
        assert tile.bandwidth_out_occupied <= tile.bandwidth_out


def test_allocation_verifiable_post_hoc():
    """Re-verify a committed allocation with an independent engine run."""
    arch = benchmark_architectures()[2]
    apps = generate_benchmark_set(
        "processing", 2, arch.processor_types(), seed=21
    )
    clean = arch.copy()
    result = allocate_until_failure(arch, apps, weights=CostWeights(1, 1, 1))
    assert result.applications_bound == 2
    for allocation in result.allocations:
        bag = build_binding_aware_graph(
            allocation.application,
            clean,
            allocation.binding,
            slices=allocation.scheduling.slices,
        )
        verified = constrained_throughput(
            bag.graph, bag.tile_constraints(allocation.scheduling)
        )
        assert (
            verified.of(allocation.application.output_actor)
            >= allocation.application.throughput_constraint
        )


def test_multimedia_system_allocation():
    """§10.3 scenario: three H.263 decoders + one MP3 on the 2x2 mesh.

    Scaled-down macroblock count keeps the test fast; the full-size
    system runs in the multimedia benchmark.
    """
    arch = multimedia_architecture()
    generic = ProcessorType("generic")
    accelerator = ProcessorType("accelerator")
    apps = [
        h263_decoder(f"h263-{i}", macroblocks=30, generic=generic,
                     accelerator=accelerator)
        for i in range(3)
    ]
    apps.append(mp3_decoder(generic=generic, accelerator=accelerator))
    allocator = ResourceAllocator(weights=CostWeights(2, 0, 1))
    result = allocate_until_failure(arch, apps, allocator=allocator)
    assert result.applications_bound == 4
    # every allocation individually meets its constraint
    assert all(a.satisfied for a in result.allocations)


def test_two_applications_share_tiles_without_interference():
    """Timing guarantees are per-application: the second allocation
    cannot invalidate the first (TDMA slices are disjoint)."""
    arch = paper_arch = None
    from repro.appmodel.example import (
        paper_example_application,
        paper_example_architecture,
    )

    arch = paper_example_architecture()
    first_app = paper_example_application(Fraction(1, 60))
    second_app = paper_example_application(Fraction(1, 60))
    allocator = ResourceAllocator()
    first = allocator.allocate(first_app, arch)
    first.reservation.commit(arch)
    second = allocator.allocate(second_app, arch)
    second.reservation.commit(arch)
    # slices do not overlap: sum of occupancy within wheel
    for tile in arch.tiles:
        assert tile.wheel_occupied <= tile.wheel
    # both keep their guarantees (checked at allocation time)
    assert first.satisfied and second.satisfied


def test_roundtrip_through_serialization_and_analysis(tmp_path):
    """Generate -> serialise -> reload -> analyse == analyse directly."""
    from repro.generate.random_sdf import random_sdfg
    from repro.sdf.serialization import graph_from_json, graph_to_json

    graph = random_sdfg(rng=random.Random(99))
    for actor in graph.actors:
        actor.execution_time = 3
    path = tmp_path / "g.json"
    path.write_text(graph_to_json(graph))
    reloaded = graph_from_json(path.read_text())
    assert (
        throughput(reloaded).iteration_rate
        == throughput(graph).iteration_rate
    )
