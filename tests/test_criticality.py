"""Unit tests for the Eqn. 1 criticality estimate and binding order."""

from fractions import Fraction

import pytest

from repro.appmodel.application import ApplicationGraph
from repro.arch.tile import ProcessorType
from repro.core.criticality import actor_criticality, binding_order
from repro.sdf.graph import SDFGraph, chain

P1 = ProcessorType("p1")
P2 = ProcessorType("p2")


def test_paper_example_criticality(example_application):
    cost = actor_criticality(example_application)
    # a1 is on the d3 self cycle: gamma * tau_max / (Tok/q) = 4 / 1
    assert cost["a1"] == Fraction(4)
    # a2, a3 are on no cycle: fallback gamma * tau_max
    assert cost["a2"] == Fraction(7)
    assert cost["a3"] == Fraction(3)


def test_paper_example_binding_order(example_application):
    assert binding_order(example_application) == ["a2", "a1", "a3"]


def test_cycle_dominates_fallback():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_actor("c")
    graph.add_channel("ab", "a", "b")
    graph.add_channel("ba", "b", "a", tokens=2)
    graph.add_channel("bc", "b", "c")
    app = ApplicationGraph(graph)
    app.set_actor_requirements("a", (P1, 10, 0))
    app.set_actor_requirements("b", (P1, 10, 0))
    app.set_actor_requirements("c", (P1, 15, 0))
    cost = actor_criticality(app)
    # cycle cost (10 + 10)/2 = 10 for a and b; c alone: 15
    assert cost["a"] == Fraction(10)
    assert cost["c"] == Fraction(15)
    assert binding_order(app)[0] == "c"


def test_worst_case_time_over_processor_types():
    graph = chain(["a", "b"], tokens_on_back_edge=1)
    app = ApplicationGraph(graph)
    app.set_actor_requirements("a", (P1, 1, 0), (P2, 50, 0))
    app.set_actor_requirements("b", (P1, 10, 0))
    cost = actor_criticality(app)
    # sup over processor types: a contributes 50
    assert cost["a"] == Fraction(60, 1)  # cycle a->b->a with 1 token


def test_repetition_vector_weighting():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_channel("ab", "a", "b", 2, 1)
    app = ApplicationGraph(graph)
    app.set_actor_requirements("a", (P1, 5, 0))
    app.set_actor_requirements("b", (P1, 3, 0))
    cost = actor_criticality(app)
    # gamma = (1, 2): b's fallback is 2 * 3 = 6 > a's 5
    assert cost["b"] == Fraction(6)
    assert binding_order(app) == ["b", "a"]


def test_token_free_cycle_gets_infinite_cost():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_channel("ab", "a", "b")
    graph.add_channel("ba", "b", "a")
    app = ApplicationGraph.__new__(ApplicationGraph)  # bypass validation
    from repro.appmodel.application import ActorRequirements
    from repro.sdf.repetition import repetition_vector

    app.graph = graph
    app.name = graph.name
    app.actor_requirements = {
        "a": ActorRequirements({P1: (1, 0)}),
        "b": ActorRequirements({P1: (1, 0)}),
    }
    app.channel_requirements = {}
    app._gamma = repetition_vector(graph)
    cost = actor_criticality(app)
    assert cost["a"] == float("inf")
    # infinite-cost actors bind first, surfacing the modelling error
    assert set(binding_order(app)) == {"a", "b"}


def test_ties_keep_graph_order():
    graph = chain(["x", "y", "z"])
    app = ApplicationGraph(graph)
    for actor in "xyz":
        app.set_actor_requirements(actor, (P1, 7, 0))
    assert binding_order(app) == ["x", "y", "z"]
