"""Unit tests for structural analyses (SCCs, liveness, connectivity)."""

import pytest

from repro.sdf.analysis import (
    actors_on_cycles,
    is_connected,
    is_deadlock_free,
    is_strongly_connected,
    strongly_connected_components,
    undirected_components,
)
from repro.sdf.graph import SDFGraph, chain


def build(edges, actors=None, tokens=None):
    graph = SDFGraph()
    names = actors or sorted({n for e in edges for n in e})
    for name in names:
        graph.add_actor(name)
    for index, (src, dst) in enumerate(edges):
        graph.add_channel(
            f"d{index}", src, dst, tokens=(tokens or {}).get((src, dst), 0)
        )
    return graph


class TestStronglyConnectedComponents:
    def test_cycle_is_one_component(self, simple_cycle_graph):
        components = strongly_connected_components(simple_cycle_graph)
        assert len(components) == 1
        assert sorted(components[0]) == ["a", "b"]

    def test_chain_gives_singletons(self):
        graph = chain(["a", "b", "c"])
        components = strongly_connected_components(graph)
        assert sorted(len(c) for c in components) == [1, 1, 1]

    def test_reverse_topological_order(self):
        graph = build([("a", "b"), ("b", "c")])
        components = strongly_connected_components(graph)
        # Tarjan emits sinks first.
        assert components[0] == ["c"]
        assert components[-1] == ["a"]

    def test_two_cycles_bridged(self):
        graph = build(
            [("a", "b"), ("b", "a"), ("b", "c"), ("c", "d"), ("d", "c")]
        )
        components = strongly_connected_components(graph)
        sizes = sorted(len(c) for c in components)
        assert sizes == [2, 2]

    def test_self_loop_is_singleton_component(self):
        graph = build([("a", "a")])
        assert strongly_connected_components(graph) == [["a"]]

    def test_is_strongly_connected(self, simple_cycle_graph):
        assert is_strongly_connected(simple_cycle_graph)
        assert not is_strongly_connected(chain(["a", "b"]))
        assert is_strongly_connected(SDFGraph())

    def test_large_cycle_no_recursion_limit(self):
        names = [f"a{i}" for i in range(5000)]
        graph = chain(names, tokens_on_back_edge=1)
        components = strongly_connected_components(graph)
        assert len(components) == 1
        assert len(components[0]) == 5000


class TestDeadlockFreedom:
    def test_cycle_with_tokens_is_live(self, simple_cycle_graph):
        assert is_deadlock_free(simple_cycle_graph)

    def test_token_free_cycle_deadlocks(self):
        graph = build([("a", "b"), ("b", "a")])
        assert not is_deadlock_free(graph)

    def test_acyclic_graph_is_live(self):
        assert is_deadlock_free(chain(["a", "b", "c"]))

    def test_multirate_needs_enough_tokens(self):
        graph = SDFGraph()
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_channel("ab", "a", "b", 1, 2)
        graph.add_channel("ba", "b", "a", 2, 1, tokens=1)
        # gamma = (2, 1): 'a' needs 2 tokens on ba to fire twice before b
        # can fire; 1 token lets a fire once, then everything stalls.
        assert not is_deadlock_free(graph)
        graph.channel("ba").tokens = 2
        assert is_deadlock_free(graph)

    def test_self_loop_token_required(self):
        graph = build([("a", "a")])
        assert not is_deadlock_free(graph)
        graph.channel("d0").tokens = 1
        assert is_deadlock_free(graph)

    def test_partial_progress_then_deadlock(self):
        # a fires its full iteration, but b and c sit on a token-free
        # cycle and never fire: partial progress is not liveness
        graph = SDFGraph()
        for n in "abc":
            graph.add_actor(n)
        graph.add_channel("aa", "a", "a", tokens=1)
        graph.add_channel("ab", "a", "b")
        graph.add_channel("bc", "b", "c")
        graph.add_channel("cb", "c", "b")
        assert not is_deadlock_free(graph)


class TestConnectivity:
    def test_connected_chain(self):
        assert is_connected(chain(["a", "b", "c"]))

    def test_disconnected_graph(self):
        graph = SDFGraph()
        graph.add_actor("a")
        graph.add_actor("b")
        assert not is_connected(graph)
        assert len(undirected_components(graph)) == 2

    def test_empty_graph_is_connected(self):
        assert is_connected(SDFGraph())

    def test_direction_ignored(self):
        graph = build([("a", "b"), ("c", "b")])
        assert is_connected(graph)


class TestActorsOnCycles:
    def test_mixed_graph(self):
        graph = build([("a", "b"), ("b", "a"), ("b", "c"), ("d", "d")])
        assert actors_on_cycles(graph) == {"a", "b", "d"}

    def test_acyclic_graph_empty(self):
        assert actors_on_cycles(chain(["a", "b", "c"])) == set()
