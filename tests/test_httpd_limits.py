"""Transport self-defence and client backoff plumbing.

The HTTP layer's own robustness obligations, separate from the service
behind it: bounded request bodies (413 before a byte of an oversized
body is read), honest ``Retry-After`` advice on 429, and an
``endpoint.json`` announcement that never outlives the daemon — stale
files are removed at startup, clean shutdowns retract the file, and a
``submit`` against a retracted spool fails fast with advice instead of
dialling a dead port.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading

import pytest

from repro.service import AllocationService, RetryPolicy
from repro.service.httpd import MAX_BODY_BYTES, ServiceHTTPServer

from tests.service_helpers import fast_request, slow_request
from tests.test_service_recovery import (
    _daemon_env,
    _get,
    _start_daemon,
)

pytestmark = pytest.mark.service


@pytest.fixture
def server(tmp_path):
    service = AllocationService(
        str(tmp_path / "spool"),
        workers=1,
        max_queue_depth=1,
        retry=RetryPolicy(max_attempts=1, base_delay=0.05, jitter=0.0),
    ).start()
    httpd = ServiceHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.drain(cancel_running=True)
        thread.join(timeout=10)


def _raw_post(httpd, headers, body=b""):
    """POST /jobs with exact header control; returns (status, payload)."""
    host, port = httpd.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        connection.putrequest("POST", "/jobs")
        for name, value in headers.items():
            connection.putheader(name, value)
        connection.endheaders()
        if body:
            connection.send(body)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def test_missing_content_length_is_rejected_413(server):
    status, payload = _raw_post(server, {})
    assert status == 413
    assert "Content-Length is required" in payload["error"]


def test_oversized_content_length_is_rejected_413_unread(server):
    # the handler must reject on the header alone — no body is sent
    status, payload = _raw_post(
        server, {"Content-Length": str(MAX_BODY_BYTES + 1)}
    )
    assert status == 413
    assert str(MAX_BODY_BYTES) in payload["error"]


def test_malformed_content_length_is_rejected_400(server):
    status, payload = _raw_post(server, {"Content-Length": "a lot"})
    assert status == 400
    assert "Content-Length" in payload["error"]


def test_within_bounds_body_is_accepted(server):
    application, architecture = fast_request()
    body = json.dumps(
        {"application": application, "architecture": architecture}
    ).encode("utf-8")
    status, payload = _raw_post(
        server, {"Content-Length": str(len(body))}, body
    )
    assert status == 202
    assert payload["id"].startswith("job-")


def test_429_carries_retry_after_header_and_field(server):
    service = server.service
    application, architecture = slow_request(macroblocks=160)
    service.submit(application, architecture)  # fills the depth-1 queue
    body = json.dumps(
        {"application": application, "architecture": architecture}
    ).encode("utf-8")
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        connection.request(
            "POST",
            "/jobs",
            body=body,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = json.loads(response.read())
    finally:
        connection.close()
    assert response.status == 429
    advertised = int(response.headers["Retry-After"])
    assert advertised >= 1
    assert payload["retry_after"] == advertised


def test_health_reports_isolation_and_crash_loop(server):
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        connection.request("GET", "/health")
        payload = json.loads(connection.getresponse().read())
    finally:
        connection.close()
    assert payload["health"] == "ok"
    assert payload["isolation"] in ("thread", "process")
    assert payload["crash_loop"]["recent_quarantines"] == 0


# -- endpoint.json lifecycle (real daemon) --------------------------------


def test_stale_endpoint_is_replaced_and_shutdown_retracts(tmp_path):
    spool = str(tmp_path / "spool")
    os.makedirs(spool)
    endpoint_path = os.path.join(spool, "endpoint.json")
    with open(endpoint_path, "w") as handle:
        json.dump(
            {"host": "127.0.0.1", "port": 1, "url": "http://127.0.0.1:1"},
            handle,
        )
    process, url = _start_daemon(spool)
    try:
        # the stale announcement is gone; the new one answers /health
        with open(endpoint_path) as handle:
            announced = json.load(handle)
        assert announced["url"] == url
        assert announced["port"] != 1
        assert _get(f"{url}/health")["accepting"]
    finally:
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0
    # a clean shutdown retracts the announcement entirely
    assert not os.path.exists(endpoint_path)


def test_submit_fails_fast_without_endpoint(tmp_path):
    spool = str(tmp_path / "spool")
    os.makedirs(spool)
    application, architecture = fast_request()
    app_path = tmp_path / "app.json"
    arch_path = tmp_path / "arch.json"
    app_path.write_text(json.dumps(application))
    arch_path.write_text(json.dumps(architecture))
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "submit",
            str(app_path),
            str(arch_path),
            "--spool",
            spool,
        ],
        env=_daemon_env(),
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert completed.returncode == 2
    assert "no endpoint.json" in completed.stderr
    assert "repro-alloc serve" in completed.stderr


@pytest.mark.slow
def test_submit_wait_honours_retry_after_on_429(tmp_path):
    spool = str(tmp_path / "spool")
    application, architecture = slow_request(macroblocks=160)
    app_path = tmp_path / "app.json"
    arch_path = tmp_path / "arch.json"
    app_path.write_text(json.dumps(application))
    arch_path.write_text(json.dumps(architecture))
    process, url = _start_daemon(
        spool,
        extra=("--max-queue", "1", "--isolation", "thread"),
    )
    try:
        first = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "submit",
                str(app_path),
                str(arch_path),
                "--spool",
                spool,
            ],
            env=_daemon_env(),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert first.returncode == 0, first.stderr
        # the queue is now full: a --wait submitter backs off per the
        # advertised Retry-After and eventually gets through
        second = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "submit",
                str(app_path),
                str(arch_path),
                "--spool",
                spool,
                "--wait",
                "--timeout",
                "120",
            ],
            env=_daemon_env(),
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert second.returncode == 0, second.stderr
        assert "retrying in" in second.stderr
        assert "Retry-After" in second.stderr
        record = json.loads(second.stdout)
        assert record["state"] == "certified"
        assert record["source"] == "cache"  # same request, already proved
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60)
