"""Unit tests for application and architecture JSON serialisation."""

import json
from fractions import Fraction

import pytest

from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
)
from repro.appmodel.serialization import (
    application_from_dict,
    application_from_json,
    application_to_dict,
    application_to_json,
)
from repro.arch.serialization import (
    architecture_from_json,
    architecture_to_json,
)
from repro.arch.tile import ProcessorType
from repro.core.strategy import ResourceAllocator


class TestApplicationSerialisation:
    def test_roundtrip_preserves_requirements(self):
        application = paper_example_application()
        restored = application_from_json(application_to_json(application))
        assert restored.name == application.name
        assert restored.output_actor == "a3"
        assert restored.throughput_constraint == Fraction(1, 40)
        p2 = ProcessorType("p2")
        assert restored.requirements("a2").execution_time(p2) == 7
        assert restored.requirements("a2").memory(p2) == 19
        theta = restored.channel("d2")
        assert (theta.token_size, theta.bandwidth) == (100, 10)
        assert theta.buffer_tile == 2

    def test_constraint_is_exact_fraction(self):
        application = paper_example_application(Fraction(355, 113_000))
        restored = application_from_json(application_to_json(application))
        assert restored.throughput_constraint == Fraction(355, 113_000)

    def test_json_is_plain_json(self):
        payload = json.loads(application_to_json(paper_example_application()))
        assert payload["output_actor"] == "a3"
        assert "graph" in payload

    def test_missing_sections_default(self):
        application = paper_example_application()
        data = application_to_dict(application)
        del data["actors"]
        del data["channels"]
        del data["throughput_constraint"]
        restored = application_from_dict(data)
        assert restored.throughput_constraint == 0
        # default buffers stay liveness-safe
        assert restored.channel("d1").buffer_tile >= 1

    def test_roundtrip_allocates_identically(self):
        application = paper_example_application(Fraction(1, 60))
        restored = application_from_json(application_to_json(application))
        first = ResourceAllocator().allocate(
            application, paper_example_architecture()
        )
        second = ResourceAllocator().allocate(
            restored, paper_example_architecture()
        )
        assert first.binding.assignment == second.binding.assignment
        assert first.scheduling.slices == second.scheduling.slices
        assert first.achieved_throughput == second.achieved_throughput


class TestArchitectureSerialisation:
    def test_roundtrip_preserves_capacities(self):
        architecture = paper_example_architecture()
        restored = architecture_from_json(
            architecture_to_json(architecture)
        )
        assert restored.name == architecture.name
        t1 = restored.tile("t1")
        assert (t1.wheel, t1.memory, t1.max_connections) == (10, 700, 5)
        assert t1.processor_type == ProcessorType("p1")
        assert restored.connection("t1", "t2").latency == 1
        assert restored.connection("t2", "t1").latency == 1

    def test_occupancy_checkpointed(self):
        architecture = paper_example_architecture()
        architecture.tile("t1").wheel_occupied = 4
        architecture.tile("t2").memory_occupied = 123
        restored = architecture_from_json(
            architecture_to_json(architecture)
        )
        assert restored.tile("t1").wheel_occupied == 4
        assert restored.tile("t2").memory_occupied == 123

    def test_occupancy_optional_on_input(self):
        architecture = paper_example_architecture()
        data = json.loads(architecture_to_json(architecture))
        for tile in data["tiles"]:
            for key in list(tile):
                if key.endswith("_occupied"):
                    del tile[key]
        restored = architecture_from_json(json.dumps(data))
        assert restored.tile("t1").wheel_occupied == 0


class TestAllocateFileCommand:
    def test_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        application = paper_example_application(Fraction(1, 60))
        architecture = paper_example_architecture()
        app_path = tmp_path / "app.json"
        arch_path = tmp_path / "arch.json"
        app_path.write_text(application_to_json(application))
        arch_path.write_text(architecture_to_json(architecture))

        assert (
            main(
                [
                    "allocate-file",
                    str(app_path),
                    str(arch_path),
                    "--commit",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "guaranteed throughput" in out
        # occupancy was committed back to the file
        recycled = architecture_from_json(arch_path.read_text())
        assert recycled.total_usage()["timewheel"] > 0

        # a second allocation on the checkpointed platform still works
        assert (
            main(["allocate-file", str(app_path), str(arch_path)]) == 0
        )
