"""Unit tests for the bounded trace buffer and its Chrome export."""

import json
import threading

import pytest

from repro.obs.trace import (
    DEFAULT_CAPACITY,
    NULL_TRACE,
    NullTraceBuffer,
    TraceBuffer,
    TraceEvent,
    chrome_trace,
    disable_trace,
    enable_trace,
    get_trace,
    tracing,
    write_chrome_trace,
)


class FakeClock:
    def __init__(self):
        self.value = 0.0

    def __call__(self):
        return self.value

    def advance(self, seconds):
        self.value += seconds


class TestRecording:
    def test_instant_records_at_current_clock(self):
        clock = FakeClock()
        buffer = TraceBuffer(clock=clock)
        clock.advance(1.5)
        buffer.instant("engine", "tick", states=7)
        (event,) = buffer.events()
        assert event.category == "engine"
        assert event.name == "tick"
        assert event.timestamp == 1.5
        assert event.duration is None
        assert event.args == {"states": 7}

    def test_complete_records_duration(self):
        buffer = TraceBuffer(clock=FakeClock())
        buffer.complete("engine", "execute", 1.0, 3.5, graph="g")
        (event,) = buffer.events()
        assert event.duration == 2.5
        assert event.args == {"graph": "g"}

    def test_complete_clamps_negative_durations(self):
        buffer = TraceBuffer(clock=FakeClock())
        buffer.complete("engine", "execute", 5.0, 4.0)
        assert buffer.events()[0].duration == 0.0

    def test_span_records_complete_event_on_exit(self):
        clock = FakeClock()
        buffer = TraceBuffer(clock=clock)
        with buffer.span("flow", "application", application="app") as span:
            clock.advance(2.0)
            span.set("outcome", "allocated")
        (event,) = buffer.events()
        assert event.name == "application"
        assert event.duration == 2.0
        assert event.args == {"application": "app", "outcome": "allocated"}

    def test_default_capacity_is_bounded(self):
        assert TraceBuffer().capacity == DEFAULT_CAPACITY

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)


class TestRingBuffer:
    def test_oldest_events_are_evicted(self):
        buffer = TraceBuffer(capacity=3, clock=FakeClock())
        for i in range(5):
            buffer.instant("engine", f"event-{i}")
        names = [event.name for event in buffer.events()]
        assert names == ["event-2", "event-3", "event-4"]
        assert buffer.dropped == 2

    def test_summary_counts_categories_and_drops(self):
        buffer = TraceBuffer(capacity=2, clock=FakeClock())
        buffer.instant("engine", "a")
        buffer.instant("tdma", "b")
        buffer.instant("tdma", "c")
        assert buffer.summary() == {
            "events": 2,
            "dropped": 1,
            "categories": {"tdma": 2},
        }

    def test_clear_resets_events_and_drop_count(self):
        buffer = TraceBuffer(capacity=1, clock=FakeClock())
        buffer.instant("engine", "a")
        buffer.instant("engine", "b")
        buffer.clear()
        assert buffer.events() == []
        assert buffer.dropped == 0

    def test_concurrent_appends_lose_nothing(self):
        buffer = TraceBuffer(clock=FakeClock())

        def record():
            for _ in range(500):
                buffer.instant("engine", "tick")

        threads = [threading.Thread(target=record) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(buffer.events()) == 2000
        assert buffer.dropped == 0


class TestActiveBuffer:
    def test_default_is_the_null_buffer(self):
        assert get_trace() is NULL_TRACE
        assert get_trace().enabled is False

    def test_null_buffer_is_inert(self):
        null = NullTraceBuffer()
        null.instant("engine", "a")
        null.complete("engine", "b", 0.0, 1.0)
        with null.span("engine", "c") as span:
            span.set("key", "value")
        assert null.events() == []
        assert null.dropped == 0
        assert null.now() == 0.0
        assert null.summary() == {"events": 0, "dropped": 0, "categories": {}}

    def test_enable_disable_swaps_active_buffer(self):
        buffer = enable_trace()
        try:
            assert get_trace() is buffer
        finally:
            assert disable_trace() is buffer
        assert get_trace() is NULL_TRACE

    def test_tracing_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert get_trace() is NULL_TRACE


class TestChromeExport:
    def test_instants_and_completes_map_to_phases(self):
        buffer = TraceBuffer(clock=FakeClock())
        buffer.complete("engine", "execute", 1.0, 1.5, states=3)
        buffer.instant("checkpoint", "write", path="ck.json")
        document = chrome_trace(buffer)
        assert document["displayTimeUnit"] == "ms"
        meta, complete, instant = document["traceEvents"]
        assert meta["ph"] == "M"
        assert meta["args"] == {"name": "repro-alloc"}
        assert complete["ph"] == "X"
        assert complete["cat"] == "engine"
        # rebased to the earliest event: the instant fired at clock 0.0
        assert instant["ts"] == 0.0
        assert complete["ts"] == pytest.approx(1_000_000.0)  # microseconds
        assert complete["dur"] == pytest.approx(500_000.0)
        assert instant["ph"] == "i"
        assert instant["s"] == "t"

    def test_export_accepts_plain_event_lists(self):
        events = [TraceEvent("engine", "tick", 2.0)]
        document = chrome_trace(events, process_name="custom")
        assert document["traceEvents"][0]["args"] == {"name": "custom"}
        assert document["traceEvents"][1]["ts"] == 0.0

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        buffer = TraceBuffer(clock=FakeClock())
        buffer.instant("engine", "tick")
        path = tmp_path / "trace.json"
        assert write_chrome_trace(str(path), buffer) == str(path)
        document = json.loads(path.read_text())
        assert {event["ph"] for event in document["traceEvents"]} == {
            "M",
            "i",
        }

    def test_write_stringifies_non_json_args(self, tmp_path):
        from fractions import Fraction

        buffer = TraceBuffer(clock=FakeClock())
        buffer.instant("engine", "tick", rate=Fraction(1, 3))
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), buffer)
        document = json.loads(path.read_text())
        assert document["traceEvents"][1]["args"]["rate"] == "1/3"


class TestEngineIntegration:
    def test_state_space_emits_engine_events(self, simple_cycle_graph):
        from repro.throughput.state_space import throughput

        with tracing() as buffer:
            throughput(simple_cycle_graph)
        categories = buffer.summary()["categories"]
        assert categories.get("engine", 0) >= 1

    def test_allocation_emits_engine_and_tdma_events(self):
        from repro.appmodel.example import (
            paper_example_application,
            paper_example_architecture,
        )
        from repro.core.strategy import ResourceAllocator

        with tracing() as buffer:
            ResourceAllocator().allocate(
                paper_example_application(), paper_example_architecture()
            )
        categories = buffer.summary()["categories"]
        assert categories.get("engine", 0) >= 1
        assert categories.get("tdma", 0) >= 1

    def test_budget_exhaustion_emits_resilience_event(self):
        from repro.resilience.budget import Budget, BudgetExceededError

        with tracing() as buffer:
            budget = Budget(max_states=1)
            with pytest.raises(BudgetExceededError):
                budget.tick(2)
        (event,) = buffer.events()
        assert event.category == "resilience"
        assert event.name == "budget.exhausted"
        assert event.args["reason"] == "states"

    def test_checkpoint_write_and_read_emit_events(self, tmp_path):
        from repro.resilience.checkpoint import (
            read_checkpoint,
            write_checkpoint,
        )

        path = str(tmp_path / "ck.json")
        payload = {
            "format": "repro-checkpoint",
            "version": 1,
            "kind": "state-space",
        }
        with tracing() as buffer:
            write_checkpoint(path, payload)
            read_checkpoint(path)
        names = [event.name for event in buffer.events()]
        assert names == ["write", "read"]
        assert all(
            event.category == "checkpoint" for event in buffer.events()
        )

    def test_disabled_tracing_records_nothing(self, simple_cycle_graph):
        from repro.throughput.state_space import throughput

        assert get_trace() is NULL_TRACE
        throughput(simple_cycle_graph)
        assert NULL_TRACE.events() == []
