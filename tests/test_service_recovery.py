"""End-to-end crash recovery of the service daemon (acceptance).

The contract of ``docs/SERVICE.md``, exercised against the real
``repro-alloc serve`` process over HTTP: SIGKILL the daemon while a
worker is mid-search, restart it over the same spool, and the job
completes with a result *bit-identical* to an uninterrupted in-process
run.  A follow-up isomorphic submission is then served from the
verified cache, and SIGTERM drains the daemon to a clean exit 0.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.appmodel.serialization import (
    application_from_dict,
    bundle_to_dict,
)
from repro.arch.serialization import architecture_from_dict
from repro.resilience.budget import Budget
from repro.resilience.policy import resilient_allocate

from tests.service_helpers import rename_isomorphic, slow_request

pytestmark = pytest.mark.service

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _daemon_env():
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _start_daemon(spool, extra=()):
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--spool",
            spool,
            "--port",
            "0",
            "--workers",
            "1",
            *extra,
        ],
        env=_daemon_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    endpoint_path = os.path.join(spool, "endpoint.json")
    deadline = time.perf_counter() + 30
    while True:
        if process.poll() is not None:
            raise AssertionError(
                f"daemon died at startup (exit {process.returncode})"
            )
        if os.path.exists(endpoint_path):
            try:
                with open(endpoint_path) as handle:
                    url = json.load(handle)["url"]
                # the endpoint file may predate this daemon (restart on a
                # warm spool): only trust it once /health answers
                _get(f"{url}/health")
                return process, url
            except (json.JSONDecodeError, KeyError, OSError):
                pass
        assert time.perf_counter() < deadline, "endpoint never announced"
        time.sleep(0.05)


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def _wait_terminal(url, job_id, timeout=180.0):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        record = _get(f"{url}/jobs/{job_id}")
        if record["state"] in (
            "certified",
            "degraded",
            "failed",
            "quarantined",
        ):
            return record
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} not terminal after {timeout:g}s")


def _wait_running(url, job_id, timeout=30.0):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if _get(f"{url}/jobs/{job_id}")["state"] == "running":
            return
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never started running")


def test_sigkill_mid_search_restart_completes_bit_identically(tmp_path):
    application, architecture = slow_request()
    # the uninterrupted reference, computed in-process with the same
    # default ladder/allocator the daemon uses
    reference = resilient_allocate(
        application_from_dict(application),
        architecture_from_dict(architecture),
        budget=Budget(),
    )
    reference_bundle = json.loads(
        json.dumps(
            bundle_to_dict(
                architecture_from_dict(architecture),
                [reference.allocation],
                rungs=[reference.rung],
            )
        )
    )

    spool = str(tmp_path / "spool")
    process, url = _start_daemon(spool)
    try:
        job_id = _post(
            f"{url}/jobs",
            {"application": application, "architecture": architecture},
        )["id"]
        _wait_running(url, job_id)
        time.sleep(0.3)  # let the engine get properly into its search
    finally:
        process.kill()  # SIGKILL: no drain, no checkpoint, no goodbye
        process.wait(timeout=30)

    # the journal still says "running"; the next daemon must requeue it
    with open(os.path.join(spool, "jobs", f"{job_id}.json")) as handle:
        assert json.load(handle)["state"] == "running"

    process, url = _start_daemon(spool)
    try:
        record = _wait_terminal(url, job_id)
        assert record["state"] == "certified"
        assert record["attempts"] == 2  # the killed attempt stays charged
        assert record["result"] == reference_bundle  # bit-identical

        # an isomorphic resubmission is served from the verified cache
        renamed = rename_isomorphic(application, seed=11)
        second_id = _post(
            f"{url}/jobs",
            {"application": renamed, "architecture": architecture},
        )["id"]
        second = _wait_terminal(url, second_id)
        assert second["source"] == "cache"
        assert second["state"] == "certified"
        assert second["verdict"] == "certified"  # re-verified before serving
        binding = second["result"]["allocations"][0]["binding"]
        assert set(binding) == {
            actor["name"] for actor in renamed["graph"]["actors"]
        }

        # SIGTERM drains gracefully: exit 0, journal fully terminal
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
    with open(os.path.join(spool, "jobs", f"{job_id}.json")) as handle:
        assert json.load(handle)["state"] == "certified"


def test_submit_cli_round_trip_and_graceful_sigterm(tmp_path):
    """The ``repro-alloc submit`` client against a live daemon."""
    application, architecture = slow_request(macroblocks=4)
    app_path = tmp_path / "app.json"
    arch_path = tmp_path / "arch.json"
    app_path.write_text(json.dumps(application))
    arch_path.write_text(json.dumps(architecture))

    spool = str(tmp_path / "spool")
    process, url = _start_daemon(spool)
    try:
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "submit",
                str(app_path),
                str(arch_path),
                "--spool",
                spool,
                "--wait",
                "--timeout",
                "120",
            ],
            env=_daemon_env(),
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert completed.returncode == 0, completed.stderr
        record = json.loads(completed.stdout)
        assert record["state"] == "certified"
        assert record["result"]["allocations"][0]["binding"]

        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
