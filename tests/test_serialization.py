"""Unit tests for JSON and SDF3-style XML serialisation."""

import json

import pytest

from repro.sdf.graph import SDFGraph
from repro.sdf.serialization import (
    graph_from_dict,
    graph_from_json,
    graph_from_sdf3_xml,
    graph_to_dict,
    graph_to_json,
    graph_to_sdf3_xml,
)


def graphs_equal(left, right):
    if left.name != right.name:
        return False
    if [(a.name, a.execution_time) for a in left.actors] != [
        (a.name, a.execution_time) for a in right.actors
    ]:
        return False
    key = lambda c: (c.name, c.src, c.dst, c.production, c.consumption, c.tokens)
    return [key(c) for c in left.channels] == [key(c) for c in right.channels]


def test_dict_roundtrip(multirate_graph):
    assert graphs_equal(
        multirate_graph, graph_from_dict(graph_to_dict(multirate_graph))
    )


def test_json_roundtrip(chain_graph):
    assert graphs_equal(chain_graph, graph_from_json(graph_to_json(chain_graph)))


def test_json_is_valid_json(chain_graph):
    payload = json.loads(graph_to_json(chain_graph))
    assert payload["name"] == chain_graph.name
    assert len(payload["actors"]) == 3


def test_dict_defaults_fill_missing_fields():
    graph = graph_from_dict(
        {
            "actors": [{"name": "a"}, {"name": "b"}],
            "channels": [{"name": "d", "src": "a", "dst": "b"}],
        }
    )
    assert graph.name == "sdfg"
    assert graph.channel("d").production == 1
    assert graph.actor("a").execution_time == 1


def test_xml_roundtrip(multirate_graph):
    text = graph_to_sdf3_xml(multirate_graph)
    assert graphs_equal(multirate_graph, graph_from_sdf3_xml(text))


def test_xml_roundtrip_preserves_execution_times(chain_graph):
    restored = graph_from_sdf3_xml(graph_to_sdf3_xml(chain_graph))
    assert restored.actor("z").execution_time == 3


def test_xml_contains_sdf3_structure(multirate_graph):
    text = graph_to_sdf3_xml(multirate_graph)
    assert "<sdf3" in text
    assert "applicationGraph" in text
    assert 'initialTokens="1"' in text


def test_xml_missing_application_graph_rejected():
    with pytest.raises(ValueError):
        graph_from_sdf3_xml("<sdf3/>")


def test_xml_missing_sdf_rejected():
    with pytest.raises(ValueError):
        graph_from_sdf3_xml('<sdf3><applicationGraph name="x"/></sdf3>')


def test_hand_written_xml_with_default_rates():
    text = """
    <sdf3 type="sdf">
      <applicationGraph name="hand">
        <sdf name="hand">
          <actor name="a"/>
          <actor name="b"/>
          <channel name="d" srcActor="a" dstActor="b"/>
        </sdf>
      </applicationGraph>
    </sdf3>
    """
    graph = graph_from_sdf3_xml(text)
    assert graph.channel("d").production == 1
    assert graph.channel("d").consumption == 1


def test_self_loop_roundtrip():
    graph = SDFGraph("loop")
    graph.add_actor("a", 4)
    graph.add_channel("s", "a", "a", 2, 2, 2)
    assert graphs_equal(graph, graph_from_json(graph_to_json(graph)))
    assert graphs_equal(graph, graph_from_sdf3_xml(graph_to_sdf3_xml(graph)))


# -- typed SerializationError (docs/ROBUSTNESS.md) ------------------------

from repro.sdf.serialization import SerializationError  # noqa: E402


def test_invalid_json_raises_serialization_error():
    with pytest.raises(SerializationError) as info:
        graph_from_json("{not json", source="broken.json")
    assert "invalid JSON" in str(info.value)
    assert info.value.source == "broken.json"


def test_serialization_error_is_a_value_error():
    assert issubclass(SerializationError, ValueError)


def test_non_object_document_rejected():
    with pytest.raises(SerializationError):
        graph_from_dict([1, 2, 3])


def test_actor_entry_without_name_names_the_field():
    with pytest.raises(SerializationError) as info:
        graph_from_dict({"actors": [{"execution_time": 1}]})
    assert info.value.field == "actors[0]"


def test_channel_entry_missing_key_names_the_field():
    data = {
        "actors": [{"name": "a"}, {"name": "b"}],
        "channels": [{"name": "c", "src": "a"}],  # no dst
    }
    with pytest.raises(SerializationError) as info:
        graph_from_dict(data, source="g.json")
    assert info.value.field == "channels[0]"
    assert "g.json" in str(info.value)


def test_bad_execution_time_reported_with_context():
    with pytest.raises(SerializationError) as info:
        graph_from_dict(
            {"actors": [{"name": "a", "execution_time": "many"}]}
        )
    assert info.value.field == "actors[0]"


def test_unparsable_xml_raises_serialization_error():
    with pytest.raises(SerializationError) as info:
        graph_from_sdf3_xml("<sdf3><unclosed", source="g.xml")
    assert "invalid XML" in str(info.value)


def test_bad_xml_rate_raises_serialization_error():
    text = (
        '<sdf3><applicationGraph name="g"><sdf name="g">'
        '<actor name="a"><port name="p" type="out" rate="lots"/></actor>'
        "</sdf></applicationGraph></sdf3>"
    )
    with pytest.raises(SerializationError) as info:
        graph_from_sdf3_xml(text)
    assert info.value.field == "actor[a]"


def test_architecture_bad_tile_names_the_field():
    from repro.arch.serialization import architecture_from_json

    payload = json.dumps({"tiles": [{"name": "t1"}]})  # missing keys
    with pytest.raises(SerializationError) as info:
        architecture_from_json(payload, source="arch.json")
    assert info.value.field == "tiles[0]"
    assert info.value.source == "arch.json"


def test_application_bad_constraint_names_the_field():
    from repro.appmodel.serialization import application_from_json

    payload = json.dumps(
        {"graph": {"actors": [], "channels": []},
         "throughput_constraint": "fast"}
    )
    with pytest.raises(SerializationError) as info:
        application_from_json(payload)
    assert info.value.field == "throughput_constraint"


def test_application_missing_graph_rejected():
    from repro.appmodel.serialization import application_from_dict

    with pytest.raises(SerializationError) as info:
        application_from_dict({"name": "app"})
    assert info.value.field == "graph"
