"""Unit tests for JSON and SDF3-style XML serialisation."""

import json

import pytest

from repro.sdf.graph import SDFGraph
from repro.sdf.serialization import (
    graph_from_dict,
    graph_from_json,
    graph_from_sdf3_xml,
    graph_to_dict,
    graph_to_json,
    graph_to_sdf3_xml,
)


def graphs_equal(left, right):
    if left.name != right.name:
        return False
    if [(a.name, a.execution_time) for a in left.actors] != [
        (a.name, a.execution_time) for a in right.actors
    ]:
        return False
    key = lambda c: (c.name, c.src, c.dst, c.production, c.consumption, c.tokens)
    return [key(c) for c in left.channels] == [key(c) for c in right.channels]


def test_dict_roundtrip(multirate_graph):
    assert graphs_equal(
        multirate_graph, graph_from_dict(graph_to_dict(multirate_graph))
    )


def test_json_roundtrip(chain_graph):
    assert graphs_equal(chain_graph, graph_from_json(graph_to_json(chain_graph)))


def test_json_is_valid_json(chain_graph):
    payload = json.loads(graph_to_json(chain_graph))
    assert payload["name"] == chain_graph.name
    assert len(payload["actors"]) == 3


def test_dict_defaults_fill_missing_fields():
    graph = graph_from_dict(
        {
            "actors": [{"name": "a"}, {"name": "b"}],
            "channels": [{"name": "d", "src": "a", "dst": "b"}],
        }
    )
    assert graph.name == "sdfg"
    assert graph.channel("d").production == 1
    assert graph.actor("a").execution_time == 1


def test_xml_roundtrip(multirate_graph):
    text = graph_to_sdf3_xml(multirate_graph)
    assert graphs_equal(multirate_graph, graph_from_sdf3_xml(text))


def test_xml_roundtrip_preserves_execution_times(chain_graph):
    restored = graph_from_sdf3_xml(graph_to_sdf3_xml(chain_graph))
    assert restored.actor("z").execution_time == 3


def test_xml_contains_sdf3_structure(multirate_graph):
    text = graph_to_sdf3_xml(multirate_graph)
    assert "<sdf3" in text
    assert "applicationGraph" in text
    assert 'initialTokens="1"' in text


def test_xml_missing_application_graph_rejected():
    with pytest.raises(ValueError):
        graph_from_sdf3_xml("<sdf3/>")


def test_xml_missing_sdf_rejected():
    with pytest.raises(ValueError):
        graph_from_sdf3_xml('<sdf3><applicationGraph name="x"/></sdf3>')


def test_hand_written_xml_with_default_rates():
    text = """
    <sdf3 type="sdf">
      <applicationGraph name="hand">
        <sdf name="hand">
          <actor name="a"/>
          <actor name="b"/>
          <channel name="d" srcActor="a" dstActor="b"/>
        </sdf>
      </applicationGraph>
    </sdf3>
    """
    graph = graph_from_sdf3_xml(text)
    assert graph.channel("d").production == 1
    assert graph.channel("d").consumption == 1


def test_self_loop_roundtrip():
    graph = SDFGraph("loop")
    graph.add_actor("a", 4)
    graph.add_channel("s", "a", "a", 2, 2, 2)
    assert graphs_equal(graph, graph_from_json(graph_to_json(graph)))
    assert graphs_equal(graph, graph_from_sdf3_xml(graph_to_sdf3_xml(graph)))
