"""The ``repro-alloc lint`` command: exit codes, formats, filters.

Covers the acceptance surface of docs/ANALYSIS.md: exit 0 on clean
models, exit 6 on error findings, valid SARIF 2.1.0 and JSON output,
``--select`` / ``--ignore`` rule filters, baseline write + suppression
round-trip, and serializer-threaded file/field locations.
"""

import json

import pytest

from repro.cli import main

CLEAN_GRAPH = {
    "name": "clean",
    "actors": [
        {"name": "a", "execution_time": 1},
        {"name": "b", "execution_time": 1},
    ],
    "channels": [
        {
            "name": "d0",
            "src": "a",
            "dst": "b",
            "production": 1,
            "consumption": 1,
            "tokens": 0,
        },
        {
            "name": "d1",
            "src": "b",
            "dst": "a",
            "production": 1,
            "consumption": 1,
            "tokens": 1,
        },
    ],
}

INCONSISTENT_GRAPH = {
    "name": "broken",
    "actors": [
        {"name": "a", "execution_time": 1},
        {"name": "b", "execution_time": 1},
    ],
    "channels": [
        {
            "name": "d0",
            "src": "a",
            "dst": "b",
            "production": 2,
            "consumption": 3,
            "tokens": 0,
        },
        {
            "name": "d1",
            "src": "a",
            "dst": "b",
            "production": 1,
            "consumption": 1,
            "tokens": 0,
        },
    ],
}


def write(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return str(path)


class TestExitCodes:
    def test_clean_graph_exits_zero(self, tmp_path, capsys):
        path = write(tmp_path, "clean.json", CLEAN_GRAPH)
        assert main(["lint", path]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s), 0 info" in out

    def test_error_findings_exit_six(self, tmp_path, capsys):
        path = write(tmp_path, "broken.json", INCONSISTENT_GRAPH)
        assert main(["lint", path]) == 6
        captured = capsys.readouterr()
        assert "SDF001" in captured.out
        assert "lint found 1 error(s)" in captured.err

    def test_warnings_alone_exit_zero(self, tmp_path, capsys):
        document = {
            "name": "dead",
            "actors": [
                {"name": "a", "execution_time": 1},
                {"name": "b", "execution_time": 1},
                {"name": "lonely", "execution_time": 1},
            ],
            "channels": [
                {
                    "name": "d0",
                    "src": "a",
                    "dst": "b",
                    "production": 1,
                    "consumption": 1,
                    "tokens": 1,
                },
            ],
        }
        path = write(tmp_path, "dead.json", document)
        assert main(["lint", path]) == 0
        assert "SDF003" in capsys.readouterr().out

    def test_unreadable_input_is_a_user_error(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        assert main(["lint", str(path)]) == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_location_carries_file_and_field(self, tmp_path, capsys):
        path = write(tmp_path, "broken.json", INCONSISTENT_GRAPH)
        main(["lint", path])
        out = capsys.readouterr().out
        assert f"{path}:channels[1] (channel 'd1')" in out


class TestFormats:
    def test_json_report_schema(self, tmp_path, capsys):
        path = write(tmp_path, "broken.json", INCONSISTENT_GRAPH)
        assert main(["lint", path, "--format", "json"]) == 6
        report = json.loads(capsys.readouterr().out)
        assert report["format"] == "repro-lint-report"
        assert report["version"] == 1
        assert report["summary"] == {"error": 1, "warning": 0, "info": 0}
        (finding,) = report["findings"]
        assert finding["rule"] == "SDF001"
        assert finding["severity"] == "error"
        assert finding["location"]["source"] == path
        assert finding["location"]["field"] == "channels[1]"
        assert finding["fingerprint"]

    def test_sarif_output_is_valid_2_1_0(self, tmp_path, capsys):
        path = write(tmp_path, "broken.json", INCONSISTENT_GRAPH)
        assert main(["lint", path, "--format", "sarif"]) == 6
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-alloc lint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert "SDF001" in rule_ids and "ALLOC003" in rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "SDF001"
        assert result["level"] == "error"
        assert result["message"]["text"]
        (location,) = result["locations"]
        physical = location["physicalLocation"]["artifactLocation"]["uri"]
        assert physical == path
        assert result["partialFingerprints"]["reproLint/v1"]

    def test_sarif_written_to_file(self, tmp_path, capsys):
        path = write(tmp_path, "broken.json", INCONSISTENT_GRAPH)
        out = tmp_path / "lint.sarif"
        assert (
            main(["lint", path, "--format", "sarif", "--out", str(out)]) == 6
        )
        assert "lint report written to" in capsys.readouterr().out
        log = json.loads(out.read_text())
        assert log["version"] == "2.1.0"


class TestFilters:
    def test_select_keeps_only_matching_rules(self, tmp_path, capsys):
        path = write(tmp_path, "broken.json", INCONSISTENT_GRAPH)
        assert main(["lint", path, "--select", "ARC"]) == 0
        assert "SDF001" not in capsys.readouterr().out

    def test_ignore_drops_matching_rules(self, tmp_path, capsys):
        path = write(tmp_path, "broken.json", INCONSISTENT_GRAPH)
        assert main(["lint", path, "--ignore", "SDF001"]) == 0
        assert "SDF001" not in capsys.readouterr().out

    def test_baseline_round_trip_suppresses_known_findings(
        self, tmp_path, capsys
    ):
        path = write(tmp_path, "broken.json", INCONSISTENT_GRAPH)
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    path,
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                ]
            )
            == 0
        )
        assert "baseline with 1 finding(s)" in capsys.readouterr().out
        stored = json.loads(baseline.read_text())
        assert stored["format"] == "repro-lint-baseline"
        assert len(stored["fingerprints"]) == 1
        # suppressed on the next run ...
        assert main(["lint", path, "--baseline", str(baseline)]) == 0
        assert "SDF001" not in capsys.readouterr().out
        # ... but a NEW defect still fails
        fresh = write(tmp_path, "fresh.json", INCONSISTENT_GRAPH)
        assert main(["lint", fresh, "--baseline", str(baseline)]) == 6

    def test_update_baseline_requires_baseline_path(self, tmp_path, capsys):
        path = write(tmp_path, "clean.json", CLEAN_GRAPH)
        assert main(["lint", path, "--update-baseline"]) == 2
        assert "requires --baseline" in capsys.readouterr().err

    def test_non_baseline_file_rejected(self, tmp_path, capsys):
        path = write(tmp_path, "clean.json", CLEAN_GRAPH)
        bogus = write(tmp_path, "bogus.json", {"hello": 1})
        assert main(["lint", path, "--baseline", bogus]) == 2
        assert "not a repro lint baseline" in capsys.readouterr().err


class TestDocumentSniffing:
    def test_architecture_document(self, tmp_path, capsys):
        document = {
            "name": "arch",
            "tiles": [
                {
                    "name": "t1",
                    "processor_type": "risc",
                    "wheel": 10,
                    "memory": 100,
                    "max_connections": 2,
                    "bandwidth_in": 10,
                    "bandwidth_out": 10,
                    "wheel_occupied": 10,
                },
            ],
            "connections": [],
        }
        path = write(tmp_path, "arch.json", document)
        assert main(["lint", path]) == 0
        assert "ARC003" in capsys.readouterr().out

    def test_csdf_document(self, tmp_path, capsys):
        document = {
            "name": "csdf",
            "actors": [
                {"name": "a", "execution_times": [1, 1]},
                {"name": "b", "execution_times": [1]},
            ],
            "channels": [
                {
                    "name": "d0",
                    "src": "a",
                    "dst": "b",
                    "productions": [1, 2],
                    "consumptions": [3],
                    "tokens": 0,
                },
                {
                    "name": "d1",
                    "src": "a",
                    "dst": "b",
                    "productions": [1, 1],
                    "consumptions": [1],
                    "tokens": 0,
                },
            ],
        }
        path = write(tmp_path, "csdf.json", document)
        assert main(["lint", path]) == 6
        assert "CSD001" in capsys.readouterr().out

    def test_list_document_lints_each_element(self, tmp_path, capsys):
        path = write(tmp_path, "both.json", [CLEAN_GRAPH, INCONSISTENT_GRAPH])
        assert main(["lint", path]) == 6
        assert "SDF001" in capsys.readouterr().out

    def test_bundle_document(self, tmp_path, capsys):
        from repro.appmodel.serialization import BUNDLE_FORMAT

        document = {
            "format": BUNDLE_FORMAT,
            "version": 1,
            "architecture": {
                "name": "arch",
                "tiles": [
                    {
                        "name": "t1",
                        "processor_type": "risc",
                        "wheel": 10,
                        "memory": 100,
                        "max_connections": 2,
                        "bandwidth_in": 10,
                        "bandwidth_out": 10,
                    },
                ],
                "connections": [],
            },
            "allocations": [
                {"reservation": {"t1": {"time_slice": 99}}},
            ],
        }
        path = write(tmp_path, "bundle.json", document)
        assert main(["lint", path]) == 6
        assert "ALLOC001" in capsys.readouterr().out

    def test_multiple_inputs_accumulate(self, tmp_path, capsys):
        clean = write(tmp_path, "clean.json", CLEAN_GRAPH)
        broken = write(tmp_path, "broken.json", INCONSISTENT_GRAPH)
        assert main(["lint", clean, broken]) == 6

    def test_architecture_flag_is_linted_too(self, tmp_path, capsys):
        arch = {
            "name": "arch",
            "tiles": [
                {
                    "name": "t1",
                    "processor_type": "risc",
                    "wheel": 10,
                    "memory": 100,
                    "max_connections": 2,
                    "bandwidth_in": 10,
                    "bandwidth_out": 10,
                    "wheel_occupied": 10,
                },
            ],
            "connections": [],
        }
        arch_path = write(tmp_path, "arch.json", arch)
        clean = write(tmp_path, "clean.json", CLEAN_GRAPH)
        assert main(["lint", clean, "--architecture", arch_path]) == 0
        assert "ARC003" in capsys.readouterr().out


class TestMetrics:
    def test_lint_counters_under_metrics_flag(self, tmp_path):
        path = write(tmp_path, "broken.json", INCONSISTENT_GRAPH)
        metrics_path = tmp_path / "metrics.json"
        assert main(["lint", path, "--metrics", str(metrics_path)]) == 6
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"]["lint.files"] == 1
        assert snapshot["counters"]["lint.findings"] == 1
