"""Unit tests for platform dimensioning (§10.1)."""

from fractions import Fraction

import pytest

from repro.appmodel.example import (
    PROCESSOR_P1,
    PROCESSOR_P2,
    paper_example_application,
)
from repro.extensions.dimensioning import _mesh_shapes, dimension_platform


def test_mesh_shapes_sorted_by_tile_count():
    shapes = _mesh_shapes(6)
    counts = [rows * cols for rows, cols in shapes]
    assert counts == sorted(counts)
    assert shapes[0] == (1, 1)
    assert (2, 3) in shapes
    assert all(rows * cols <= 6 for rows, cols in shapes)


def test_single_loose_app_fits_smallest_platform():
    application = paper_example_application(Fraction(1, 500))
    result = dimension_platform(
        [application],
        [PROCESSOR_P1, PROCESSOR_P2],
        max_tiles=4,
        wheel=10,
        memory=1000,
        bandwidth=200,
    )
    assert result.found
    # a1-a3 all support p1, so one tile can host everything
    assert result.tile_count == 1
    assert result.flow.applications_bound == 1


def _single_actor_app(index: int):
    """One heavy actor whose memory footprint fills most of a tile."""
    from repro.appmodel.application import ApplicationGraph
    from repro.sdf.graph import SDFGraph

    graph = SDFGraph(f"heavy-{index}")
    graph.add_actor("work", 1)
    graph.add_channel("self", "work", "work", tokens=1)
    application = ApplicationGraph(
        graph, throughput_constraint=Fraction(1, 100), output_actor="work"
    )
    application.set_actor_requirements("work", (PROCESSOR_P1, 1, 600))
    application.set_channel_requirements("self", token_size=1, bandwidth=0)
    return application


def test_growth_until_sufficient():
    # each application's actor needs 600 of the 1000 memory bits, so a
    # tile hosts exactly one: three applications need three tiles
    applications = [_single_actor_app(i) for i in range(3)]
    result = dimension_platform(
        applications,
        [PROCESSOR_P1],
        weights=None,
        max_tiles=9,
        wheel=10,
        memory=1000,
        bandwidth=500,
    )
    assert result.found
    assert result.tile_count == 3
    # the attempt log shows the smaller platforms failing first
    assert result.attempts[0][2] < len(applications)
    assert result.attempts[-1][2] == len(applications)
    assert [attempt[2] for attempt in result.attempts] == [1, 2, 3]


def test_unsatisfiable_mix_reports_not_found():
    application = paper_example_application(Fraction(1, 2))  # impossible
    result = dimension_platform(
        [application],
        [PROCESSOR_P1, PROCESSOR_P2],
        max_tiles=2,
        wheel=10,
        memory=1000,
        bandwidth=200,
    )
    assert not result.found
    assert result.architecture is None
    assert all(bound == 0 for _, _, bound in result.attempts)


def test_attempts_record_every_candidate():
    application = paper_example_application(Fraction(1, 500))
    result = dimension_platform(
        [application],
        [PROCESSOR_P1, PROCESSOR_P2],
        max_tiles=4,
        wheel=10,
        memory=1000,
        bandwidth=200,
    )
    assert result.attempts[0][:2] == (1, 1)
    assert len(result.attempts) >= 1
