"""Seeded chaos primitives for the sandbox soak tests.

:class:`ChaosStorm` is the adversary: a background thread that, driven
by one seeded PRNG, SIGKILLs live sandboxed children, SIGSTOPs them
(silencing heartbeats so the watchdog must detect and kill the stall)
and feeds the service jobs sized to blow their own memory cap.  It
counts every act and keeps acting until a minimum number of chaos
events have landed, so a passing soak really did survive a storm and
not a drizzle.

The storm only ever attacks *children* and the job stream — never the
daemon — because that is the contract under test: whatever happens
inside the sandbox, the service keeps its promises.
"""

import os
import random
import shutil
import signal
import threading
import time

from repro.service import DrainingError, OverloadError


class ChaosStorm:
    """Seeded child-killing adversary for one AllocationService.

    ``events`` maps ``kill`` / ``stall`` / ``oom`` to counts;
    ``accepted`` lists the ids of every OOM-bait job the storm itself
    got accepted (the soak must account for them like any other job).
    """

    def __init__(
        self,
        service,
        seed,
        oom_request,
        min_events=20,
        oom_memory_mb=64,
        pause=(0.02, 0.15),
    ):
        self.service = service
        self.rng = random.Random(seed)
        self.oom_request = oom_request
        self.min_events = min_events
        self.oom_memory_mb = oom_memory_mb
        self.pause = pause
        self.events = {"kill": 0, "stall": 0, "oom": 0}
        self.accepted = []
        self._done = threading.Event()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="chaos-storm", daemon=True
        )

    @property
    def total_events(self):
        return sum(self.events.values())

    def start(self):
        self._thread.start()
        return self

    def wait_min_events(self, timeout):
        """True once at least ``min_events`` chaos events landed."""
        return self._done.wait(timeout)

    def stop(self):
        self._stop.set()
        self._thread.join(timeout=30)

    # -- the adversary --------------------------------------------------
    def _loop(self):
        while not self._stop.is_set():
            if self.total_events >= self.min_events:
                self._done.set()
                # keep a light drizzle going until told to stop, so
                # late-finishing jobs still see an adversarial world
                time.sleep(0.2)
                continue
            victims = [
                handle
                for handle in self.service.watchdog.handles()
                if handle.alive()
            ]
            roll = self.rng.random()
            if victims and roll < 0.4:
                self._signal(self.rng.choice(victims), signal.SIGKILL, "kill")
            elif victims and roll < 0.6:
                self._signal(
                    self.rng.choice(victims), signal.SIGSTOP, "stall"
                )
            else:
                self._submit_oom()
            time.sleep(self.rng.uniform(*self.pause))
        self._done.set()

    def _signal(self, handle, signum, event):
        try:
            os.kill(handle.pid, signum)
        except (OSError, ProcessLookupError):
            return  # the child won the race and already exited
        self.events[event] += 1

    def _submit_oom(self):
        application, architecture = self.oom_request
        try:
            job_id = self.service.submit(
                application,
                architecture,
                memory_mb=self.oom_memory_mb,
            )
        except (OverloadError, DrainingError):
            return  # admission control did its job; try again later
        except Exception:
            # an injected journal fault at admission: the submitter got
            # an error, so the job was never accepted — not an event
            return
        self.accepted.append(job_id)
        self.events["oom"] += 1


def submit_with_retry(service, application, architecture, attempts=20):
    """Submit against a service under fault injection; id or None.

    Admission-time journal faults surface to the submitter by design
    (an accepted job is durable or the caller knows it is not); a soak
    client simply retries a few times like a real one would.
    """
    for _ in range(attempts):
        try:
            return service.submit(application, architecture)
        except (OverloadError, DrainingError):
            time.sleep(0.1)
        except Exception:
            time.sleep(0.02)
    return None


def export_artifacts(spool, label):
    """Copy the spool for post-mortem when $REPRO_CHAOS_ARTIFACTS is set."""
    root = os.environ.get("REPRO_CHAOS_ARTIFACTS")
    if not root:
        return None
    target = os.path.join(root, label)
    shutil.rmtree(target, ignore_errors=True)
    shutil.copytree(spool, target, dirs_exist_ok=True)
    return target
