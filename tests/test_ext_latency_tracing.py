"""Unit tests for the latency and tracing extensions."""

from fractions import Fraction

import pytest

from repro.appmodel.example import (
    paper_example,
    paper_example_application,
    paper_example_architecture,
)
from repro.core.strategy import ResourceAllocator
from repro.extensions.latency import output_latency
from repro.extensions.tracing import render_gantt, trace_allocation
from repro.sdf.graph import SDFGraph, chain
from repro.throughput.constrained import TraceEvent


class TestLatency:
    def test_chain_latency_is_serial_sum(self):
        graph = chain(["a", "b", "c"], [2, 3, 4])
        result = output_latency(graph, "c", auto_concurrency=False)
        assert result.latency == 9
        assert not result.deadlocked

    def test_latency_counts_multiple_firings(self):
        graph = chain(["a", "b"], [2, 3], tokens_on_back_edge=1)
        # second b completion: no pipelining (1 token) -> 2+3 + 2+3
        result = output_latency(graph, "b", firings=2)
        assert result.latency == 10

    def test_pipelining_shortens_following_outputs(self):
        deep = chain(["a", "b"], [2, 3], tokens_on_back_edge=3)
        shallow = chain(["a", "b"], [2, 3], tokens_on_back_edge=1)
        deep_result = output_latency(deep, "b", firings=3)
        shallow_result = output_latency(shallow, "b", firings=3)
        assert deep_result.latency <= shallow_result.latency

    def test_default_firings_is_one_iteration(self):
        graph = SDFGraph("mr")
        graph.add_actor("a", 1)
        graph.add_actor("b", 2)
        graph.add_channel("ab", "a", "b", 2, 1)
        result = output_latency(graph, "b", auto_concurrency=False)
        assert result.firings == 2  # gamma(b)
        # a fires at t=1, both b firings serialise: 1+2+2
        assert result.latency == 5

    def test_unbounded_source_burst_reported(self):
        from repro.throughput.state_space import StateSpaceExplosionError

        graph = SDFGraph("src")
        graph.add_actor("a", 1)
        graph.add_actor("b", 2)
        graph.add_channel("ab", "a", "b", 2, 1)
        with pytest.raises(StateSpaceExplosionError, match="auto-concurrency"):
            output_latency(graph, "b")  # source actor, unbounded burst

    def test_deadlocked_graph_reports_none(self):
        graph = SDFGraph("dl")
        graph.add_actor("a", 1)
        graph.add_actor("b", 1)
        graph.add_channel("ab", "a", "b")
        graph.add_channel("ba", "b", "a")
        result = output_latency(graph, "b")
        assert result.deadlocked
        assert result.latency is None

    def test_period_reported(self, simple_cycle_graph):
        result = output_latency(simple_cycle_graph, "b")
        assert result.iteration_period == Fraction(5, 2)

    def test_unknown_actor_rejected(self, chain_graph):
        with pytest.raises(KeyError):
            output_latency(chain_graph, "ghost")

    def test_paper_example_latency(self):
        application = paper_example_application()
        result = output_latency(
            application.graph, "a3", auto_concurrency=False
        )
        # serial a1(1) a2(1) a3(2)
        assert result.latency == 4


class TestTracing:
    @pytest.fixture
    def traced(self):
        application, architecture, _ = paper_example()
        allocation = ResourceAllocator().allocate(application, architecture)
        events = trace_allocation(allocation, architecture)
        return allocation, events

    def test_trace_contains_every_actor(self, traced):
        _, events = traced
        actors = {event.actor for event in events}
        assert {"a1", "a2", "a3"} <= actors
        assert any(actor.startswith("con:") for actor in actors)
        assert any(actor.startswith("syn:") for actor in actors)

    def test_events_well_formed(self, traced):
        _, events = traced
        for event in events:
            assert event.end >= event.start >= 0

    def test_tile_attribution(self, traced):
        allocation, events = traced
        for event in events:
            if event.actor in allocation.binding.assignment:
                assert event.tile == allocation.binding.tile_of(event.actor)
            else:
                assert event.tile is None

    def test_same_tile_events_never_overlap(self, traced):
        _, events = traced
        by_tile = {}
        for event in events:
            if event.tile is not None:
                by_tile.setdefault(event.tile, []).append(event)
        for tile_events in by_tile.values():
            tile_events.sort(key=lambda e: e.start)
            for first, second in zip(tile_events, tile_events[1:]):
                assert second.start >= first.end

    def test_tdma_gating_stretches_firings(self, traced):
        allocation, events = traced
        # slice 1/10: a firing of execution time t occupies >= t wall time
        stretched = [
            event
            for event in events
            if event.tile is not None and event.end - event.start > 2
        ]
        assert stretched  # at least one firing waited for its slice

    def test_gantt_rendering(self, traced):
        _, events = traced
        chart = render_gantt(events, width=40)
        lines = chart.splitlines()
        assert any("a1@t1" in line for line in lines)
        assert all(len(line) > 0 for line in lines)
        assert "#" in chart

    def test_gantt_empty(self):
        assert render_gantt([]) == "(no events)"

    def test_gantt_crop_and_filter(self, traced):
        _, events = traced
        chart = render_gantt(events, width=30, include_unscheduled=False)
        assert "con:" not in chart

    def test_gantt_handles_zero_duration_events(self):
        events = [TraceEvent("x", None, 5, 5)]
        chart = render_gantt(events, width=10)
        assert "#" in chart


class TestVcdExport:
    @pytest.fixture
    def traced_events(self):
        from repro.appmodel.example import paper_example

        application, architecture, _ = paper_example()
        allocation = ResourceAllocator().allocate(application, architecture)
        return trace_allocation(allocation, architecture)

    def test_header_and_structure(self, traced_events):
        from repro.extensions.vcd import trace_to_vcd

        vcd = trace_to_vcd(traced_events)
        assert "$timescale 1 ns $end" in vcd
        assert "$enddefinitions $end" in vcd
        assert "$scope module t1 $end" in vcd
        assert "$scope module network $end" in vcd
        assert "$dumpvars" in vcd

    def test_every_actor_declared_once(self, traced_events):
        from repro.extensions.vcd import trace_to_vcd

        vcd = trace_to_vcd(traced_events)
        declarations = [l for l in vcd.splitlines() if l.startswith("$var")]
        names = [l.split()[4] for l in declarations]
        assert len(names) == len(set(names))
        assert "a1" in names
        assert any(name.startswith("con:") for name in names)

    def test_changes_are_time_ordered(self, traced_events):
        from repro.extensions.vcd import trace_to_vcd

        vcd = trace_to_vcd(traced_events)
        times = [
            int(line[1:])
            for line in vcd.splitlines()
            if line.startswith("#")
        ]
        assert times == sorted(times)

    def test_balanced_rise_fall_per_signal(self, traced_events):
        from repro.extensions.vcd import trace_to_vcd

        vcd = trace_to_vcd(traced_events)
        body = vcd.split("$dumpvars")[1]
        rises = {}
        falls = {}
        for line in body.splitlines():
            if line.startswith("1"):
                rises[line[1:]] = rises.get(line[1:], 0) + 1
            elif line.startswith("0"):
                falls[line[1:]] = falls.get(line[1:], 0) + 1
        for identifier, count in rises.items():
            # +1 initial zero from dumpvars
            assert falls[identifier] == count + 1

    def test_write_vcd_to_file(self, traced_events, tmp_path):
        from repro.extensions.vcd import write_vcd

        path = tmp_path / "trace.vcd"
        write_vcd(traced_events, str(path))
        assert path.read_text().startswith("$comment")

    def test_zero_width_events_become_pulses(self):
        from repro.extensions.vcd import trace_to_vcd
        from repro.throughput.constrained import TraceEvent

        vcd = trace_to_vcd([TraceEvent("x", None, 3, 3)])
        assert "#3" in vcd and "#4" in vcd

    def test_identifier_generation_unique(self):
        from repro.extensions.vcd import _identifier

        codes = {_identifier(i) for i in range(5000)}
        assert len(codes) == 5000
