"""Regression guard for the shared ``CostWeights.default()`` point.

The repository-wide default weight vector ``(0, 1, 2)`` used to be
duplicated as a literal in four entry points (the CLI parsers, the
dimensioning and ordering extensions, the throughput-frontier
baseline and the bench workloads).  It now has a single definition,
:meth:`repro.core.tile_cost.CostWeights.default`; these tests pin its
value, verify every CLI entry point resolves to it, and scan the
source tree so literal copies cannot creep back in.
"""

import re
from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.core.tile_cost import CostWeights

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: any positional CostWeights(...) literal spelling of (0, 1, 2)
_LITERAL = re.compile(
    r"CostWeights\(\s*0(?:\.0)?\s*,\s*1(?:\.0)?\s*,\s*2(?:\.0)?\s*\)"
)


def test_default_is_the_paper_sweep_point():
    assert CostWeights.default() == CostWeights(0.0, 1.0, 2.0)
    assert CostWeights.default().as_tuple() == (0.0, 1.0, 2.0)


def test_no_literal_copies_remain_in_the_package():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name == "tile_cost.py":  # the single definition site
            continue
        if _LITERAL.search(path.read_text()):
            offenders.append(str(path.relative_to(SRC)))
    assert not offenders, (
        "CostWeights(0, 1, 2) literals found (use CostWeights.default()): "
        f"{offenders}"
    )


@pytest.mark.parametrize(
    "argv",
    [
        ["allocate"],
        ["allocate-file", "app.json", "arch.json"],
        ["profile"],
    ],
    ids=["allocate", "allocate-file", "profile"],
)
def test_cli_entry_points_share_the_default(argv):
    args = build_parser().parse_args(argv)
    assert CostWeights(*args.weights) == CostWeights.default()


def test_library_entry_points_share_the_default():
    import inspect

    from repro import bench
    from repro.baselines import max_throughput
    from repro.extensions import dimensioning, ordering

    # each entry point's weights fallback is the shared classmethod,
    # not a re-spelled literal (the scan above catches the latter too)
    for module in (bench, max_throughput, dimensioning, ordering):
        assert "CostWeights.default()" in inspect.getsource(module), (
            f"{module.__name__} no longer uses CostWeights.default()"
        )
