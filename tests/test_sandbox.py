"""Process isolation: sandbox verdicts, the watchdog and crash loops.

The blast-radius contract of ``docs/SERVICE.md``: with
``isolation="process"`` every attempt runs in a dedicated rlimited
child, a dead child is a typed retryable event (never a dead daemon),
and a reproducible death quarantines the job with its
:class:`~repro.service.sandbox.SandboxVerdict` attached.  The cheap
classification plumbing is tested pure (fake processes); the verdict
taxonomy itself is earned against real children that really OOM,
really spin and really get SIGKILLed.
"""

import os
import signal
import time

import pytest

from repro.service import (
    AllocationService,
    CrashLoopDetector,
    RetryPolicy,
    SandboxFailure,
    SandboxVerdict,
    VERDICT_KINDS,
)
from repro.service.sandbox import (
    EXIT_CPU,
    EXIT_OOM,
    SandboxHandle,
    classify_exit,
)
from repro.service.watchdog import HEALTH_DEGRADED, HEALTH_OK, Watchdog

from tests.service_helpers import fast_request, slow_request

pytestmark = pytest.mark.service

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.01, jitter=0.0)
ONE_SHOT = RetryPolicy(max_attempts=1, base_delay=0.01, jitter=0.0)


def _service(tmp_path, **overrides):
    options = {
        "workers": 1,
        "isolation": "process",
        "retry": FAST_RETRY,
        "heartbeat_interval": 0.1,
        "stall_timeout": 3.0,
    }
    options.update(overrides)
    return AllocationService(str(tmp_path / "spool"), **options).start()


def _live_child(service, timeout=30.0):
    """The first live sandboxed child the watchdog is tracking."""
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        for handle in service.watchdog.handles():
            if handle.alive():
                return handle
        time.sleep(0.02)
    raise AssertionError("no sandboxed child appeared")


# -- verdict dataclass ----------------------------------------------------


def test_verdict_round_trips_through_dict():
    verdict = SandboxVerdict(
        "oom", exit_status=40, peak_rss_kb=1234, beats=7, reason="boom"
    )
    assert SandboxVerdict.from_dict(verdict.to_dict()) == verdict


def test_verdict_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown sandbox verdict"):
        SandboxVerdict("exploded")
    assert "exploded" not in VERDICT_KINDS


class _FakeProcess:
    def __init__(self, returncode):
        self.returncode = returncode
        self.pid = 99999

    def poll(self):
        return self.returncode

    def kill(self):
        pass


def _handle(returncode, **overrides):
    handle = SandboxHandle(
        job="job-000001",
        attempt=1,
        process=_FakeProcess(returncode),
        heartbeat_path=os.devnull,
        **overrides,
    )
    return handle


def test_classify_exit_taxonomy():
    assert classify_exit(_handle(0)).kind == "completed"
    assert classify_exit(_handle(EXIT_OOM)).kind == "oom"
    assert classify_exit(_handle(EXIT_CPU)).kind == "cpu-exceeded"
    assert classify_exit(_handle(-int(signal.SIGXCPU))).kind == (
        "cpu-exceeded"
    )
    crashed = classify_exit(_handle(-9))
    assert crashed.kind == "crashed"
    assert "signal 9" in crashed.reason
    assert classify_exit(_handle(1)).kind == "crashed"


def test_classify_exit_prefers_watchdog_kill_reason():
    # a SIGKILLed child exits -9 whatever the cause; the recorded kill
    # reason, not the raw status, names the enforcement that fired
    stalled = _handle(-9)
    stalled.kill("stalled")
    assert classify_exit(stalled).kind == "stalled"
    oom = _handle(-9, memory_mb=128)
    oom.kill("oom")
    oom.kill("stalled")  # second reason must not overwrite the first
    verdict = classify_exit(oom)
    assert verdict.kind == "oom"
    assert "128" in verdict.reason


def test_handle_stall_detection_uses_spawn_grace():
    handle = _handle(None, stall_timeout=0.05, spawn_grace=30.0)
    # no beat yet: covered by the spawn grace, not the stall window
    assert not handle.stalled()
    handle.beats = 1
    handle._last_progress = time.perf_counter() - 1.0
    assert handle.stalled()


def test_watchdog_kill_reason_precedence():
    """A child both over-memory and past-deadline dies exactly once.

    ``Watchdog._inspect`` checks memory before deadline, and
    ``SandboxHandle.kill`` records only the first reason — so the
    eventual verdict must name the OOM, however many enforcement
    conditions were true at the same poll.
    """
    from repro.obs import Metrics

    handle = _handle(None, memory_mb=64, deadline=0.001)
    # over-memory: last beat reports an RSS far above the 64 MB cap
    handle.last_beat = {"rss_kb": 999_999}
    handle.beats = 1
    # past-deadline: pretend the child was spawned long ago, while the
    # recent heartbeat keeps it out of the stall window
    handle.spawned_at = time.perf_counter() - 1000.0
    handle._last_progress = time.perf_counter()
    assert handle.over_memory() and handle.over_deadline()
    assert not handle.stalled()

    kills = []
    handle.process.kill = lambda: kills.append(1)

    watchdog = Watchdog(poll_interval=0.01)
    obs = Metrics()
    watchdog._inspect(handle, obs)

    # one SIGKILL, one verdict source: the memory check fired first
    assert kills == [1]
    assert handle.kill_reason == "oom"
    counters = obs.snapshot()["counters"]
    assert counters.get("sandbox.watchdog.oom_kills") == 1
    assert "sandbox.watchdog.deadline_kills" not in counters

    # a later kill for any other reason must not rewrite history
    handle.kill("deadline")
    assert handle.kill_reason == "oom"

    handle.process.returncode = -int(signal.SIGKILL)
    verdict = classify_exit(handle)
    assert verdict.kind == "oom"
    assert "64" in verdict.reason


# -- crash-loop detector --------------------------------------------------


def test_crash_loop_detector_flips_and_recovers():
    detector = CrashLoopDetector(window=4, threshold=2)
    assert detector.health() == HEALTH_OK
    detector.record(quarantined=True)
    assert not detector.degraded
    detector.record(quarantined=True)
    assert detector.degraded
    assert detector.health() == HEALTH_DEGRADED
    assert detector.snapshot()["recent_quarantines"] == 2
    # enough healthy completions push the quarantines out of the window
    for _ in range(4):
        detector.record(quarantined=False)
    assert detector.health() == HEALTH_OK


def test_crash_loop_detector_validates_shape():
    with pytest.raises(ValueError):
        CrashLoopDetector(window=0)
    with pytest.raises(ValueError):
        CrashLoopDetector(window=4, threshold=0)
    with pytest.raises(ValueError):
        CrashLoopDetector(window=2, threshold=3)


def test_watchdog_register_unregister_idempotent():
    watchdog = Watchdog(poll_interval=0.01)
    handle = _handle(None)
    watchdog.register(handle)
    watchdog.register(handle)
    assert watchdog.handles() == [handle]
    watchdog.unregister(handle)
    watchdog.unregister(handle)
    assert watchdog.handles() == []
    watchdog.stop()


# -- real children --------------------------------------------------------


def test_sandboxed_attempt_completes_with_verdict(tmp_path):
    service = _service(tmp_path)
    try:
        application, architecture = fast_request()
        record = service.wait(
            service.submit(application, architecture), timeout=120
        )
        assert record["state"] == "certified"
        assert record["source"] == "computed"
        verdict = record["sandbox_verdict"]
        assert verdict["kind"] == "completed"
        assert verdict["exit_status"] == 0
        assert verdict["beats"] >= 1
        assert verdict["peak_rss_kb"] > 0
        assert service.stats()["isolation"] == "process"
    finally:
        service.drain(cancel_running=True)


def test_oom_child_quarantines_with_oom_verdict(tmp_path):
    service = _service(tmp_path)
    try:
        application, architecture = fast_request()
        record = service.wait(
            service.submit(application, architecture, memory_mb=64),
            timeout=120,
        )
        assert record["state"] == "quarantined"
        assert record["attempts"] == FAST_RETRY.max_attempts
        assert record["sandbox_verdict"]["kind"] == "oom"
        assert record["sandbox_verdict"]["exit_status"] == EXIT_OOM
        # the daemon survived: a clean job still completes afterwards
        healthy = service.wait(
            service.submit(application, architecture), timeout=120
        )
        assert healthy["state"] == "certified"
    finally:
        service.drain(cancel_running=True)


@pytest.mark.slow
def test_cpu_limit_quarantines_with_cpu_verdict(tmp_path):
    service = _service(tmp_path, retry=ONE_SHOT)
    try:
        application, architecture = slow_request(macroblocks=200)
        record = service.wait(
            service.submit(application, architecture, cpu_seconds=1),
            timeout=180,
        )
        assert record["state"] == "quarantined"
        assert record["sandbox_verdict"]["kind"] == "cpu-exceeded"
    finally:
        service.drain(cancel_running=True)


def test_sigkilled_child_is_retried_and_job_completes(tmp_path):
    service = _service(tmp_path)
    try:
        application, architecture = slow_request(macroblocks=160)
        job_id = service.submit(application, architecture)
        os.kill(_live_child(service).pid, signal.SIGKILL)
        record = service.wait(job_id, timeout=180)
        assert record["state"] == "certified"
        assert record["attempts"] == 2  # the killed attempt stays charged
        assert record["sandbox_verdict"]["kind"] == "completed"
    finally:
        service.drain(cancel_running=True)


@pytest.mark.slow
def test_stalled_child_is_killed_by_watchdog(tmp_path):
    service = _service(tmp_path, retry=ONE_SHOT, stall_timeout=2.0)
    try:
        application, architecture = slow_request(macroblocks=200)
        job_id = service.submit(application, architecture)
        # SIGSTOP freezes the child mid-search: heartbeats cease but the
        # process stays alive — exactly the failure rlimits cannot catch
        os.kill(_live_child(service).pid, signal.SIGSTOP)
        record = service.wait(job_id, timeout=120)
        assert record["state"] == "quarantined"
        assert record["sandbox_verdict"]["kind"] == "stalled"
        assert record["sandbox_verdict"]["exit_status"] == -int(
            signal.SIGKILL
        )
    finally:
        service.drain(cancel_running=True)


def test_quarantine_storm_degrades_health(tmp_path):
    service = _service(
        tmp_path,
        retry=ONE_SHOT,
        crash_loop_window=4,
        crash_loop_threshold=2,
    )
    try:
        application, architecture = fast_request()
        assert service.stats()["health"] == HEALTH_OK
        for _ in range(2):
            record = service.wait(
                service.submit(application, architecture, memory_mb=64),
                timeout=120,
            )
            assert record["state"] == "quarantined"
        assert service.stats()["health"] == HEALTH_DEGRADED
    finally:
        service.drain(cancel_running=True)


def test_drain_parks_sandboxed_job_with_attempt_refunded(tmp_path):
    service = _service(tmp_path)
    application, architecture = slow_request(macroblocks=160)
    job_id = service.submit(application, architecture)
    _live_child(service)
    summary = service.drain(cancel_running=True)
    assert summary["cancelled"] == 1
    record = service.job(job_id)
    assert record["state"] == "queued"
    assert record["attempts"] == 0  # cancellation is the service's fault
    # and no orphaned child lingers past the drain
    assert service.watchdog.handles() == []


def test_sandbox_failure_carries_verdict():
    verdict = SandboxVerdict("crashed", exit_status=-9, reason="killed")
    failure = SandboxFailure(verdict)
    assert failure.verdict is verdict
    assert "crashed" in str(failure)
