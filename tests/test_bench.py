"""Unit tests for the bench harness and its regression comparator."""

import copy

import pytest

from repro.bench import (
    ComparisonResult,
    compare_reports,
    run_bench,
    workload_names,
)
from repro.obs.report import REPORT_FORMAT, read_report, write_report


@pytest.fixture(scope="module")
def bench_report():
    """One fast bench run shared by the module's tests."""
    return run_bench("test", fast=True, seed=0)


class TestRunBench:
    def test_report_is_schema_versioned(self, bench_report):
        assert bench_report["format"] == REPORT_FORMAT
        assert bench_report["label"] == "test"
        assert bench_report["environment"]["seed"] == 0

    def test_all_curated_workloads_present(self, bench_report):
        names = [w["name"] for w in bench_report["workloads"]]
        assert names == workload_names()
        assert "fig5-example" in names
        assert "random-flow" in names

    def test_workloads_carry_measurements_and_facts(self, bench_report):
        for workload in bench_report["workloads"]:
            assert workload["wall_seconds"] >= 0.0
            assert workload["states_explored"] >= 0
            assert workload["throughput_checks"] >= 0
            assert isinstance(workload["facts"], dict)

    def test_deterministic_measures_are_reproducible(self, bench_report):
        again = run_bench("test", fast=True, seed=0)
        for before, after in zip(
            bench_report["workloads"], again["workloads"]
        ):
            assert before["states_explored"] == after["states_explored"]
            assert before["throughput_checks"] == after["throughput_checks"]
            assert before["facts"] == after["facts"]

    def test_report_survives_write_read(self, bench_report, tmp_path):
        path = str(tmp_path / "BENCH_test.json")
        write_report(path, bench_report)
        assert read_report(path) == bench_report


class TestCompareReports:
    def test_identical_reports_pass(self, bench_report):
        outcome = compare_reports(bench_report, bench_report)
        assert outcome.ok
        assert outcome.regressions == []
        assert outcome.warnings == []

    def test_more_states_is_a_hard_regression(self, bench_report):
        worse = copy.deepcopy(bench_report)
        worse["workloads"][0]["states_explored"] += 1
        outcome = compare_reports(bench_report, worse)
        assert not outcome.ok
        assert "states_explored" in outcome.regressions[0]

    def test_more_throughput_checks_is_a_hard_regression(self, bench_report):
        worse = copy.deepcopy(bench_report)
        worse["workloads"][0]["throughput_checks"] += 5
        assert not compare_reports(bench_report, worse).ok

    def test_fewer_states_is_an_improvement_not_a_regression(
        self, bench_report
    ):
        better = copy.deepcopy(bench_report)
        better["workloads"][0]["states_explored"] = 0
        assert compare_reports(bench_report, better).ok

    def test_changed_facts_are_a_hard_regression(self, bench_report):
        worse = copy.deepcopy(bench_report)
        worse["workloads"][0]["facts"]["achieved_throughput"] = "0"
        outcome = compare_reports(bench_report, worse)
        assert not outcome.ok
        assert "facts" in outcome.regressions[0]

    def test_missing_workload_is_a_hard_regression(self, bench_report):
        worse = copy.deepcopy(bench_report)
        worse["workloads"].pop()
        outcome = compare_reports(bench_report, worse)
        assert not outcome.ok
        assert "missing" in outcome.regressions[0]

    def test_new_workload_only_warns(self, bench_report):
        extended = copy.deepcopy(bench_report)
        extended["workloads"].append(
            {
                "name": "extra",
                "wall_seconds": 0.1,
                "states_explored": 1,
                "throughput_checks": 0,
                "facts": {},
            }
        )
        outcome = compare_reports(bench_report, extended)
        assert outcome.ok
        assert "extra" in outcome.warnings[0]

    def test_wall_time_drift_warns_by_default(self, bench_report):
        old = copy.deepcopy(bench_report)
        old["workloads"][0]["wall_seconds"] = 1.0
        slow = copy.deepcopy(bench_report)
        slow["workloads"][0]["wall_seconds"] = 10.0
        outcome = compare_reports(old, slow)
        assert outcome.ok
        assert "wall time" in outcome.warnings[0]

    def test_wall_time_drift_fails_under_strict_time(self, bench_report):
        old = copy.deepcopy(bench_report)
        old["workloads"][0]["wall_seconds"] = 1.0
        slow = copy.deepcopy(bench_report)
        slow["workloads"][0]["wall_seconds"] = 10.0
        assert not compare_reports(old, slow, strict_time=True).ok

    def test_wall_time_within_ratio_is_silent(self, bench_report):
        old = copy.deepcopy(bench_report)
        old["workloads"][0]["wall_seconds"] = 1.0
        near = copy.deepcopy(bench_report)
        near["workloads"][0]["wall_seconds"] = 1.5
        outcome = compare_reports(old, near)
        assert outcome.ok and outcome.warnings == []

    def test_time_ratio_must_be_positive(self, bench_report):
        with pytest.raises(ValueError):
            compare_reports(bench_report, bench_report, max_time_ratio=0)

    def test_empty_result_is_ok(self):
        assert ComparisonResult().ok
