"""Unit tests for the full strategy facade and the multi-application flow."""

from fractions import Fraction

import pytest

from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
)
from repro.core.flow import allocate_until_failure
from repro.core.strategy import AllocationError, ResourceAllocator
from repro.core.tile_cost import CostWeights


class TestResourceAllocator:
    def test_successful_allocation(self):
        app = paper_example_application()
        arch = paper_example_architecture()
        allocation = ResourceAllocator().allocate(app, arch)
        assert allocation.satisfied
        assert set(allocation.binding.assignment) == {"a1", "a2", "a3"}
        assert allocation.throughput_checks > 0
        for tile in allocation.binding.used_tiles():
            assert allocation.scheduling.slice_of(tile) >= 1
            assert allocation.scheduling.schedule_of(tile).periodic

    def test_allocation_not_committed_automatically(self):
        app = paper_example_application()
        arch = paper_example_architecture()
        ResourceAllocator().allocate(app, arch)
        assert arch.total_usage()["timewheel"] == 0

    def test_reservation_commit(self):
        app = paper_example_application()
        arch = paper_example_architecture()
        allocation = ResourceAllocator().allocate(app, arch)
        allocation.reservation.commit(arch)
        usage = arch.total_usage()
        assert usage["timewheel"] > 0
        assert usage["memory"] > 0

    def test_infeasible_constraint_raises_allocation_error(self):
        app = paper_example_application(throughput_constraint=Fraction(1, 2))
        arch = paper_example_architecture()
        with pytest.raises(AllocationError):
            ResourceAllocator().allocate(app, arch)

    def test_precomputed_binding_honoured(self):
        from repro.appmodel.example import paper_example_binding

        app = paper_example_application()
        arch = paper_example_architecture()
        binding = paper_example_binding()
        allocation = ResourceAllocator().allocate(app, arch, binding=binding)
        assert allocation.binding.assignment == binding.assignment

    def test_weights_influence_binding(self):
        app = paper_example_application()
        arch = paper_example_architecture()
        clustered = ResourceAllocator(weights=CostWeights(0, 0, 1)).allocate(
            app, arch
        )
        assert len(clustered.binding.used_tiles()) == 1

    def test_achieved_throughput_is_fraction(self):
        app = paper_example_application()
        arch = paper_example_architecture()
        allocation = ResourceAllocator().allocate(app, arch)
        assert isinstance(allocation.achieved_throughput, Fraction)


class TestFlow:
    def apps(self, count):
        return [
            paper_example_application(throughput_constraint=Fraction(1, 200))
            for _ in range(count)
        ]

    def test_allocates_until_wheel_runs_out(self):
        arch = paper_example_architecture()
        result = allocate_until_failure(arch, self.apps(30))
        assert 1 <= result.applications_bound < 30
        assert result.failed_application is not None
        assert result.resource_usage["timewheel"] > 0

    def test_committed_resources_accumulate(self):
        arch = paper_example_architecture()
        result = allocate_until_failure(arch, self.apps(2))
        assert result.applications_bound == 2
        assert arch.total_usage()["memory"] == sum(
            claim.memory
            for allocation in result.allocations
            for claim in allocation.reservation.tiles.values()
        )

    def test_stops_at_first_failure_by_default(self):
        arch = paper_example_architecture()
        # one impossible app in the middle stops the flow
        apps = self.apps(1)
        apps.append(
            paper_example_application(throughput_constraint=Fraction(1, 2))
        )
        apps.extend(self.apps(1))
        result = allocate_until_failure(arch, apps)
        assert result.applications_bound == 1
        assert result.failed_application == apps[1].name

    def test_continue_after_failure(self):
        arch = paper_example_architecture()
        apps = self.apps(1)
        apps.append(
            paper_example_application(throughput_constraint=Fraction(1, 2))
        )
        apps.extend(self.apps(1))
        result = allocate_until_failure(arch, apps, continue_after_failure=True)
        assert result.applications_bound == 2
        assert result.failed_application == apps[1].name

    def test_utilisation_fractions(self):
        arch = paper_example_architecture()
        result = allocate_until_failure(arch, self.apps(30))
        utilisation = result.utilisation()
        assert 0 < utilisation["timewheel"] <= 1

    def test_allocator_and_weights_mutually_exclusive(self):
        arch = paper_example_architecture()
        with pytest.raises(ValueError):
            allocate_until_failure(
                arch,
                [],
                allocator=ResourceAllocator(),
                weights=CostWeights(),
            )

    def test_total_throughput_checks_aggregated(self):
        arch = paper_example_architecture()
        result = allocate_until_failure(arch, self.apps(2))
        assert result.total_throughput_checks == sum(
            a.throughput_checks for a in result.allocations
        )


class TestBufferTrimming:
    def test_trimming_reduces_committed_memory(self):
        from repro.core.tile_cost import CostWeights

        plain_app = paper_example_application(Fraction(1, 60))
        plain_arch = paper_example_architecture()
        plain = ResourceAllocator().allocate(plain_app, plain_arch)

        trimmed_app = paper_example_application(Fraction(1, 60))
        trimmed_arch = paper_example_architecture()
        trimmed = ResourceAllocator(trim_buffers=True).allocate(
            trimmed_app, trimmed_arch
        )

        def total_memory(allocation):
            return sum(
                claim.memory
                for claim in allocation.reservation.tiles.values()
            )

        assert total_memory(trimmed) <= total_memory(plain)
        assert trimmed.satisfied

    def test_trimming_preserves_flow_correctness(self):
        arch = paper_example_architecture()
        apps = [
            paper_example_application(Fraction(1, 200)) for _ in range(3)
        ]
        result = allocate_until_failure(
            arch, apps, allocator=ResourceAllocator(trim_buffers=True)
        )
        assert result.applications_bound >= 1
        assert all(a.satisfied for a in result.allocations)


class TestFlowCheckpoints:
    """Crash-safety plumbing of ``allocate_until_failure``.

    The flow checkpoint at ``checkpoint_path`` is the durable record;
    per-application engine checkpoints (``{path}.{app}.json``) are
    scratch state and must never outlive their application's commit.
    """

    def apps(self, count):
        from repro.appmodel.example import paper_example_application

        apps = [
            paper_example_application(throughput_constraint=Fraction(1, 200))
            for _ in range(count)
        ]
        for index, app in enumerate(apps):
            app.name = app.graph.name = f"ck-app-{index}"
        return apps

    def test_successful_flow_leaves_only_the_flow_checkpoint(self, tmp_path):
        path = tmp_path / "flow.json"
        result = allocate_until_failure(
            paper_example_architecture(), self.apps(3), checkpoint_path=str(path)
        )
        assert result.applications_bound == 3
        assert [p.name for p in tmp_path.iterdir()] == ["flow.json"]

    def test_interrupted_application_leaves_scoped_engine_checkpoint(
        self, tmp_path
    ):
        from repro.resilience.budget import Budget

        path = tmp_path / "flow.json"
        result = allocate_until_failure(
            paper_example_architecture(),
            self.apps(3),
            budget=Budget(max_states=250),
            checkpoint_path=str(path),
        )
        exhausted = [
            record["application"]
            for record in result.application_stats
            if record["outcome"] == "budget-exhausted"
        ]
        assert exhausted, "budget was expected to interrupt an application"
        stray = sorted(p.name for p in tmp_path.iterdir())
        assert f"flow.json.{exhausted[0]}.json" in stray
        assert not any(name.endswith(".tmp") for name in stray)

    def test_resume_skips_committed_applications_and_cleans_up(
        self, tmp_path
    ):
        from repro.resilience.budget import Budget

        path = tmp_path / "flow.json"
        interrupted = allocate_until_failure(
            paper_example_architecture(),
            self.apps(3),
            budget=Budget(max_states=250),
            checkpoint_path=str(path),
        )
        committed = interrupted.applications_bound
        assert 0 < committed < 3
        resumed = allocate_until_failure(
            paper_example_architecture(),
            self.apps(3),
            checkpoint_path=str(path),
            resume=str(path),
        )
        assert resumed.applications_bound == 3
        # committed applications were re-applied, not re-searched: their
        # resumed stats are the recorded ones, check for free
        for record in resumed.application_stats[:committed]:
            assert record["outcome"] == "allocated"
        # the resumed flow matches a fresh uninterrupted run exactly
        fresh = allocate_until_failure(paper_example_architecture(), self.apps(3))
        assert [
            dict(a.binding.assignment) for a in resumed.allocations
        ] == [dict(a.binding.assignment) for a in fresh.allocations]
        assert [
            a.achieved_throughput for a in resumed.allocations
        ] == [a.achieved_throughput for a in fresh.allocations]
        # scratch engine checkpoints are gone after the commits
        assert [p.name for p in tmp_path.iterdir()] == ["flow.json"]
