"""Unit tests for the CSDF subsystem."""

import random
from fractions import Fraction

import pytest

from repro.csdf.analysis import (
    InconsistentCSDFError,
    csdf_repetition_vector,
    is_csdf_consistent,
    is_csdf_deadlock_free,
)
from repro.csdf.convert import csdf_to_sdf, sdf_to_csdf
from repro.csdf.graph import CSDFGraph
from repro.csdf.throughput import csdf_throughput
from repro.generate.random_sdf import random_sdfg
from repro.throughput.state_space import throughput


@pytest.fixture
def two_phase_cycle():
    """a (phases 1,2) <-> b (phase 3) with cyclo-static rates."""
    graph = CSDFGraph("cs")
    graph.add_actor("a", [1, 2])
    graph.add_actor("b", [3])
    graph.add_channel("ab", "a", "b", [1, 1], [2])
    graph.add_channel("ba", "b", "a", [2], [1, 1], tokens=2)
    return graph


class TestModel:
    def test_phase_count_and_times(self, two_phase_cycle):
        actor = two_phase_cycle.actor("a")
        assert actor.phase_count == 2
        assert actor.execution_time(0) == 1
        assert actor.execution_time(1) == 2
        assert actor.execution_time(2) == 1  # wraps

    def test_rate_sequence_length_checked(self):
        graph = CSDFGraph()
        graph.add_actor("a", [1, 2])
        graph.add_actor("b", [1])
        with pytest.raises(ValueError, match="sequence length"):
            graph.add_channel("d", "a", "b", [1], [1])

    def test_zero_phase_rates_allowed_but_not_all_zero(self):
        graph = CSDFGraph()
        graph.add_actor("a", [1, 1])
        graph.add_actor("b", [1])
        graph.add_channel("d", "a", "b", [0, 2], [2])
        with pytest.raises(ValueError, match="at least one token"):
            graph.add_channel("z", "a", "b", [0, 0], [1])

    def test_negative_rates_rejected(self):
        graph = CSDFGraph()
        graph.add_actor("a", [1])
        graph.add_actor("b", [1])
        with pytest.raises(ValueError):
            graph.add_channel("d", "a", "b", [-1], [1])


class TestAnalysis:
    def test_repetition_vector_counts_firings(self, two_phase_cycle):
        gamma = csdf_repetition_vector(two_phase_cycle)
        # one phase cycle of a (2 firings, 2 tokens) = 1 firing of b
        assert gamma == {"a": 2, "b": 1}
        cycles = csdf_repetition_vector(two_phase_cycle, firings=False)
        assert cycles == {"a": 1, "b": 1}

    def test_inconsistent_detected(self):
        graph = CSDFGraph()
        graph.add_actor("a", [1])
        graph.add_actor("b", [1])
        graph.add_channel("d1", "a", "b", [1], [1])
        graph.add_channel("d2", "a", "b", [2], [1])
        assert not is_csdf_consistent(graph)
        with pytest.raises(InconsistentCSDFError):
            csdf_repetition_vector(graph)

    def test_liveness(self, two_phase_cycle):
        assert is_csdf_deadlock_free(two_phase_cycle)

    def test_deadlock_detected(self):
        graph = CSDFGraph()
        graph.add_actor("a", [1])
        graph.add_actor("b", [1])
        graph.add_channel("ab", "a", "b", [1], [1])
        graph.add_channel("ba", "b", "a", [1], [1])  # no tokens
        assert not is_csdf_deadlock_free(graph)

    def test_phase_order_matters_for_liveness(self):
        # consuming phase first deadlocks; producing phase first lives
        graph = CSDFGraph()
        graph.add_actor("a", [1, 1])
        graph.add_actor("b", [1])
        graph.add_channel("ab", "a", "b", [1, 0], [1])
        graph.add_channel("ba", "b", "a", [1], [0, 1])
        assert is_csdf_deadlock_free(graph)
        flipped = CSDFGraph()
        flipped.add_actor("a", [1, 1])
        flipped.add_actor("b", [1])
        flipped.add_channel("ab", "a", "b", [0, 1], [1])
        flipped.add_channel("ba", "b", "a", [1], [1, 0])
        assert not is_csdf_deadlock_free(flipped)


class TestThroughput:
    def test_single_phase_matches_sdf_engine(self):
        # both concurrency modes over many graphs: this sweep is what
        # caught a lost-decrement bug in the CSDF engine's completion
        # handling, so keep it broad
        rng = random.Random(17)
        for _ in range(30):
            sdf = random_sdfg(rng=rng)
            for actor in sdf.actors:
                actor.execution_time = rng.randint(1, 7)
            lifted = sdf_to_csdf(sdf)
            for auto_concurrency in (True, False):
                assert (
                    csdf_throughput(
                        lifted, auto_concurrency=auto_concurrency
                    ).iteration_rate
                    == throughput(
                        sdf, auto_concurrency=auto_concurrency
                    ).iteration_rate
                )

    def test_two_phase_cycle_rate(self, two_phase_cycle):
        result = csdf_throughput(two_phase_cycle, auto_concurrency=False)
        # serial: a0(1) a1(2) b(3) = 6 per iteration
        assert result.iteration_rate == Fraction(1, 6)
        assert result.of("a") == Fraction(2, 6)

    def test_phases_enable_finer_pipelining(self):
        """Splitting an actor into phases that release tokens early can
        only help throughput — the CSDF advantage over SDF."""
        sdf_like = CSDFGraph("coarse")
        sdf_like.add_actor("p", [4])
        sdf_like.add_actor("c", [4])
        sdf_like.add_channel("pc", "p", "c", [2], [2])
        sdf_like.add_channel("cp", "c", "p", [2], [2], tokens=2)
        phased = CSDFGraph("fine")
        phased.add_actor("p", [2, 2])  # same total work
        phased.add_actor("c", [4])
        phased.add_channel("pc", "p", "c", [1, 1], [2])
        phased.add_channel("cp", "c", "p", [2], [1, 1], tokens=2)
        coarse = csdf_throughput(sdf_like, auto_concurrency=False)
        fine = csdf_throughput(phased, auto_concurrency=False)
        assert fine.iteration_rate >= coarse.iteration_rate

    def test_deadlocked_graph_rate_zero(self):
        graph = CSDFGraph()
        graph.add_actor("a", [1])
        graph.add_actor("b", [1])
        graph.add_channel("ab", "a", "b", [1], [1])
        graph.add_channel("ba", "b", "a", [1], [1])
        result = csdf_throughput(graph)
        assert result.deadlocked

    def test_acyclic_unbounded_with_auto_concurrency(self):
        graph = CSDFGraph()
        graph.add_actor("a", [1, 2])
        graph.add_actor("b", [1])
        graph.add_channel("ab", "a", "b", [1, 1], [1])
        assert csdf_throughput(graph).iteration_rate == float("inf")

    def test_acyclic_bounded_without_auto_concurrency(self):
        graph = CSDFGraph()
        graph.add_actor("a", [1, 2])
        graph.add_actor("b", [1])
        graph.add_channel("ab", "a", "b", [1, 1], [1])
        result = csdf_throughput(graph, auto_concurrency=False)
        # a's phase cycle takes 3 time units and yields one iteration
        assert result.iteration_rate == Fraction(1, 3)

    def test_zero_time_phases(self):
        graph = CSDFGraph("z")
        graph.add_actor("a", [0, 2])
        graph.add_channel("s", "a", "a", [1, 1], [1, 1], tokens=1)
        result = csdf_throughput(graph)
        # two firings (one phase cycle) per 2 time units
        assert result.of("a") == Fraction(2, 2)


class TestConvert:
    def test_roundtrip_single_phase(self, chain_graph):
        lifted = sdf_to_csdf(chain_graph)
        lowered = csdf_to_sdf(lifted)
        assert lowered.actor_names == chain_graph.actor_names
        assert [
            (c.src, c.dst, c.production, c.consumption, c.tokens)
            for c in lowered.channels
        ] == [
            (c.src, c.dst, c.production, c.consumption, c.tokens)
            for c in chain_graph.channels
        ]

    def test_multi_phase_cannot_lower(self, two_phase_cycle):
        with pytest.raises(ValueError, match="no SDF equivalent"):
            csdf_to_sdf(two_phase_cycle)


class TestAggregation:
    def test_aggregate_collapses_phases(self, two_phase_cycle):
        from repro.csdf.convert import aggregate_csdf_to_sdf

        sdf = aggregate_csdf_to_sdf(two_phase_cycle)
        assert sdf.actor("a").execution_time == 3  # 1 + 2
        assert sdf.channel("ab").production == 2  # 1 + 1
        assert sdf.channel("ab").consumption == 2

    def test_aggregate_is_conservative(self, two_phase_cycle):
        from repro.csdf.convert import aggregate_csdf_to_sdf

        phased = csdf_throughput(
            two_phase_cycle, auto_concurrency=False
        ).iteration_rate
        aggregated = throughput(
            aggregate_csdf_to_sdf(two_phase_cycle), auto_concurrency=False
        ).iteration_rate
        assert aggregated <= phased

    def test_aggregate_of_split_recovers_original(self, chain_graph):
        from repro.csdf.convert import aggregate_csdf_to_sdf
        from repro.csdf.random_csdf import split_phases

        phased = split_phases(
            chain_graph, {"x": 1, "y": 2, "z": 3}, random.Random(1)
        )
        recovered = aggregate_csdf_to_sdf(phased)
        for actor in chain_graph.actors:
            assert (
                recovered.actor(actor.name).execution_time
                == actor.execution_time
            )
        for channel in chain_graph.channels:
            rebuilt = recovered.channel(channel.name)
            assert rebuilt.production == channel.production
            assert rebuilt.consumption == channel.consumption
            assert rebuilt.tokens == channel.tokens


class TestRandomCSDF:
    def test_generated_graphs_wellformed(self):
        from repro.csdf.analysis import (
            is_csdf_consistent,
            is_csdf_deadlock_free,
        )
        from repro.csdf.random_csdf import random_csdf

        for seed in range(15):
            graph = random_csdf(random.Random(seed))
            assert is_csdf_consistent(graph)
            assert is_csdf_deadlock_free(graph)

    def test_phase_durations_strictly_positive(self):
        from repro.csdf.random_csdf import random_csdf

        for seed in range(15):
            graph = random_csdf(random.Random(seed))
            for actor in graph.actors:
                assert all(t >= 1 for t in actor.execution_times)

    def test_deterministic(self):
        from repro.csdf.random_csdf import random_csdf

        first = random_csdf(random.Random(5))
        second = random_csdf(random.Random(5))
        assert [a.execution_times for a in first.actors] == [
            a.execution_times for a in second.actors
        ]

    def test_split_positive_validation(self):
        from repro.csdf.random_csdf import _split_positive

        with pytest.raises(ValueError):
            _split_positive(2, 3, random.Random(0))
        parts = _split_positive(10, 4, random.Random(0))
        assert sum(parts) == 10
        assert all(p >= 1 for p in parts)


class TestSerialisation:
    def test_roundtrip(self, two_phase_cycle):
        from repro.csdf.serialization import csdf_from_json, csdf_to_json

        restored = csdf_from_json(csdf_to_json(two_phase_cycle))
        assert restored.name == two_phase_cycle.name
        assert [a.execution_times for a in restored.actors] == [
            a.execution_times for a in two_phase_cycle.actors
        ]
        assert [
            (c.src, c.dst, c.productions, c.consumptions, c.tokens)
            for c in restored.channels
        ] == [
            (c.src, c.dst, c.productions, c.consumptions, c.tokens)
            for c in two_phase_cycle.channels
        ]

    def test_roundtrip_preserves_throughput(self, two_phase_cycle):
        from repro.csdf.serialization import csdf_from_json, csdf_to_json

        restored = csdf_from_json(csdf_to_json(two_phase_cycle))
        assert (
            csdf_throughput(restored).iteration_rate
            == csdf_throughput(two_phase_cycle).iteration_rate
        )

    def test_tokens_default_to_zero(self):
        from repro.csdf.serialization import csdf_from_dict

        graph = csdf_from_dict(
            {
                "actors": [
                    {"name": "a", "execution_times": [1, 2]},
                    {"name": "b", "execution_times": [1]},
                ],
                "channels": [
                    {
                        "name": "d",
                        "src": "a",
                        "dst": "b",
                        "productions": [1, 1],
                        "consumptions": [2],
                    }
                ],
            }
        )
        assert graph.channel("d").tokens == 0
