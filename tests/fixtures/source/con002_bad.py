"""Seeded CON002 violation: guarded mutable state escapes by reference."""

import threading


class Registry:
    def __init__(self) -> None:
        self._lock = threading.Lock()  # guards: _items
        self._items = {}  # guarded-by: _lock

    def put(self, key, value) -> None:
        with self._lock:
            self._items[key] = value

    def items(self):
        with self._lock:
            return self._items  # the caller iterates it unsynchronised
