"""Seeded CON003 violation: blocking call while holding a lock."""

import threading
import time


class Throttle:
    def __init__(self) -> None:
        self._lock = threading.Lock()  # guards: pacing of emit()
        self.interval = 0.01

    def emit(self) -> None:
        with self._lock:
            time.sleep(self.interval)  # every other thread now waits too
