"""A module obeying every concurrency rule — must lint clean."""

import threading


class Gauge:
    def __init__(self) -> None:
        self._lock = threading.Lock()  # guards: _value, _samples
        self._value = 0.0  # guarded-by: _lock
        self._samples = []  # guarded-by: _lock

    def record(self, value: float) -> None:
        with self._lock:
            self._value = value
            self._samples.append(value)

    def snapshot(self) -> list:
        with self._lock:
            return list(self._samples)  # a copy, taken under the lock

    def _trim(self) -> None:  # requires-lock: _lock
        del self._samples[:-10]

    def trim(self) -> None:
        with self._lock:
            self._trim()
