"""Seeded CON004 violation: two locks taken in opposite orders."""

import threading


class Left:
    def __init__(self) -> None:
        self._lock = threading.Lock()  # guards: hand-off to Right
        self.right = Right()

    def poke(self) -> None:
        with self._lock:  # Left._lock -> Right._lock
            self.right.touch()

    def grab(self) -> None:
        with self._lock:
            pass


class Right:
    def __init__(self) -> None:
        self._lock = threading.Lock()  # guards: hand-off to Left
        self.left = Left()

    def touch(self) -> None:
        with self._lock:
            pass

    def poke_back(self) -> None:
        with self._lock:  # Right._lock -> Left._lock: the cycle
            self.left.grab()
