"""Seeded CON001 violation: guarded attribute touched without its lock."""

import threading


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()  # guards: _value
        self._value = 0  # guarded-by: _lock

    def bump(self) -> None:
        self._value += 1  # racy read-modify-write, no lock held

    def read(self) -> int:
        with self._lock:
            return self._value
