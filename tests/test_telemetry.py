"""Cross-process telemetry: sidecars, clock rebasing, merge, post-mortem.

Pure unit coverage of :mod:`repro.obs.telemetry` — the e2e path (a real
sandbox child spooling a sidecar that a real daemon harvests) lives in
``tests/test_telemetry_e2e.py`` and ``tools/telemetry_smoke.py``.
"""

import json
import os

import pytest

from repro.obs import Metrics
from repro.obs.telemetry import (
    MAX_FLIGHT_DUMPS,
    PARENT_PID,
    TELEMETRY_FORMAT,
    TELEMETRY_VERSION,
    FlightRecorder,
    JobTelemetry,
    TelemetryError,
    capture_clock,
    events_from_dicts,
    merged_chrome_trace,
    read_telemetry,
    rebase_events,
    write_telemetry,
)
from repro.obs.trace import TraceBuffer, TraceEvent

pytestmark = pytest.mark.telemetry


def _buffer_with_events():
    trace = TraceBuffer(capacity=16)
    trace.instant("engine", "state_space.execute", detail="x")
    started = trace.now()
    trace.complete("engine", "state_space.throughput", started, started + 0.5)
    return trace


# -- sidecar round trip ---------------------------------------------------


def test_write_read_round_trip(tmp_path):
    metrics = Metrics()
    metrics.counter("state_space.states", 7)
    path = str(tmp_path / "job.a1.telemetry.json")
    assert write_telemetry(path, metrics, _buffer_with_events()) == path
    payload = read_telemetry(path)
    assert payload["format"] == TELEMETRY_FORMAT
    assert payload["version"] == TELEMETRY_VERSION
    assert payload["metrics"]["counters"]["state_space.states"] == 7
    assert len(payload["trace"]["events"]) == 2
    assert {"pid", "wall", "perf"} <= set(payload["clock"])


def test_rewrite_replaces_wholesale(tmp_path):
    path = str(tmp_path / "sidecar.json")
    first = Metrics()
    first.counter("a", 1)
    write_telemetry(path, first, TraceBuffer(capacity=4))
    second = Metrics()
    second.counter("b", 2)
    write_telemetry(path, second, TraceBuffer(capacity=4))
    counters = read_telemetry(path)["metrics"]["counters"]
    assert counters == {"b": 2}
    # the atomic-write temp never lingers
    assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []


def test_read_rejects_missing_and_torn_files(tmp_path):
    with pytest.raises(TelemetryError, match="no telemetry sidecar"):
        read_telemetry(str(tmp_path / "absent.json"))
    torn = tmp_path / "torn.json"
    torn.write_text('{"format": "repro-telem')
    with pytest.raises(TelemetryError, match="unreadable"):
        read_telemetry(str(torn))


def test_read_rejects_wrong_envelope(tmp_path):
    path = tmp_path / "sidecar.json"
    path.write_text(json.dumps({"format": "something-else", "version": 1}))
    with pytest.raises(TelemetryError, match="format"):
        read_telemetry(str(path))
    path.write_text(
        json.dumps({"format": TELEMETRY_FORMAT, "version": 999})
    )
    with pytest.raises(TelemetryError, match="version"):
        read_telemetry(str(path))
    path.write_text(
        json.dumps({"format": TELEMETRY_FORMAT, "version": TELEMETRY_VERSION})
    )
    with pytest.raises(TelemetryError, match="missing"):
        read_telemetry(str(path))


def test_events_from_dicts_skips_malformed_records():
    good = TraceEvent("engine", "execute", 1.0, 0.5, {"states": 3})
    events = events_from_dicts(
        [good.to_dict(), {"category": "x"}, "junk", 42]
    )
    assert len(events) == 1
    assert events[0].category == "engine"
    assert events[0].duration == 0.5
    assert events[0].args == {"states": 3}


# -- clock rebasing -------------------------------------------------------


def test_rebase_maps_child_perf_domain_onto_parent():
    # the child booted when the parent's perf clock read 100.0 and both
    # agree on the wall clock; a child event at child-perf 5.0 must land
    # at parent-perf 105.0
    child = {"pid": 123.0, "wall": 1000.0, "perf": 0.0}
    parent = {"pid": 1.0, "wall": 900.0, "perf": 0.0}
    event = TraceEvent("engine", "execute", 5.0, 0.25, {})
    (rebased,) = rebase_events([event], child, parent)
    assert rebased.timestamp == pytest.approx(105.0)
    assert rebased.duration == 0.25  # durations are clock-free


def test_rebase_preserves_relative_spacing():
    child = capture_clock()
    events = [
        TraceEvent("engine", "a", child["perf"] + 0.1, None, {}),
        TraceEvent("engine", "b", child["perf"] + 0.4, None, {}),
    ]
    first, second = rebase_events(events, child)
    assert second.timestamp - first.timestamp == pytest.approx(0.3)


# -- merged Chrome traces -------------------------------------------------


def test_merged_trace_rebases_to_zero_and_labels_lanes():
    parent_events = [TraceEvent("service", "job", 10.0, 1.0, {})]
    child_events = [TraceEvent("engine", "execute", 10.5, 0.2, {})]
    document = merged_chrome_trace(
        [
            {"name": "service", "pid": PARENT_PID, "events": parent_events},
            {"name": "child", "pid": 4242, "events": child_events},
        ]
    )
    events = document["traceEvents"]
    names = {
        record["args"]["name"]
        for record in events
        if record["ph"] == "M" and record["name"] == "process_name"
    }
    assert names == {"service", "child"}
    timestamps = [r["ts"] for r in events if r["ph"] != "M"]
    assert min(timestamps) == 0.0  # earliest event sits at t=0
    child_record = next(r for r in events if r["pid"] == 4242 and r["ph"] == "X")
    assert child_record["ts"] == pytest.approx(500_000.0)  # 0.5s in µs
    assert child_record["dur"] == pytest.approx(200_000.0)


def test_merged_trace_distinguishes_instants_from_slices():
    document = merged_chrome_trace(
        [
            {
                "name": "lane",
                "pid": 7,
                "events": [
                    TraceEvent("c", "mark", 1.0, None, {}),
                    TraceEvent("c", "slice", 1.0, 0.1, {"k": "v"}),
                ],
            }
        ]
    )
    instant = next(r for r in document["traceEvents"] if r["name"] == "mark")
    assert instant["ph"] == "i"
    sliced = next(r for r in document["traceEvents"] if r["name"] == "slice")
    assert sliced["ph"] == "X"
    assert sliced["args"] == {"k": "v"}


# -- JobTelemetry ---------------------------------------------------------


def _segment_events(ts):
    return [TraceEvent("engine", "execute", ts, 0.1, {})]


def test_job_telemetry_records_and_evicts_oldest():
    telemetry = JobTelemetry(max_jobs=2)
    for index in range(3):
        telemetry.record(
            f"job-{index}", 1, 100 + index, _segment_events(1.0), {}
        )
    assert telemetry.jobs() == ["job-1", "job-2"]
    assert telemetry.segments("job-0") == []
    # re-recording an already-tracked job never evicts
    telemetry.record("job-2", 2, 200, _segment_events(2.0), {})
    assert len(telemetry.segments("job-2")) == 2


def test_timeline_merges_and_sorts_by_timestamp():
    telemetry = JobTelemetry()
    telemetry.record("job-1", 1, 555, _segment_events(2.0), {})
    parent_events = [
        TraceEvent("service", "submit", 1.0, None, {"job": "job-1"}),
        TraceEvent("service", "job", 3.0, 1.0, {"job": "job-1"}),
        TraceEvent("service", "submit", 1.5, None, {"job": "other"}),
    ]
    timeline = telemetry.timeline("job-1", parent_events)
    assert [entry["source"] for entry in timeline] == [
        "service",
        "sandbox-a1",
        "service",
    ]
    assert [entry["timestamp"] for entry in timeline] == [1.0, 2.0, 3.0]


def test_chrome_trace_puts_child_on_its_own_pid_lane():
    telemetry = JobTelemetry()
    telemetry.record("job-1", 1, 4242, _segment_events(2.0), {})
    parent_events = [TraceEvent("service", "job", 1.0, 2.0, {"job": "job-1"})]
    document = telemetry.chrome_trace("job-1", parent_events)
    pids = {
        record["pid"]
        for record in document["traceEvents"]
        if record["ph"] != "M"
    }
    assert pids == {PARENT_PID, 4242}


def test_chrome_trace_remaps_degenerate_child_pids():
    telemetry = JobTelemetry()
    telemetry.record("job-1", 3, 0, _segment_events(1.0), {})
    document = telemetry.chrome_trace("job-1", [])
    pids = {
        record["pid"]
        for record in document["traceEvents"]
        if record["ph"] != "M"
    }
    # pid 0 would collide with nothing but carries no information; the
    # lane moves past the parent's, keyed by the attempt number
    assert pids == {PARENT_PID + 1 + 3}


# -- flight recorder ------------------------------------------------------


def test_flight_recorder_dumps_a_readable_bundle(tmp_path):
    recorder = FlightRecorder(str(tmp_path / "flightrec"))
    path = recorder.dump(
        "job-000001",
        "quarantine",
        metrics={"counters": {"service.quarantined_total": 1}},
        events=[TraceEvent("service", "quarantine", 1.0, None, {})],
        extra={"reason": "boom"},
    )
    assert path is not None and os.path.exists(path)
    with open(path) as handle:
        payload = json.load(handle)
    assert payload["format"] == "repro-flightrec"
    assert payload["job"] == "job-000001"
    assert payload["tag"] == "quarantine"
    assert payload["extra"]["reason"] == "boom"
    assert len(payload["trace"]) == 1


def test_flight_recorder_sanitises_names_and_caps_dumps(tmp_path):
    recorder = FlightRecorder(str(tmp_path / "fr"), max_dumps=2)
    first = recorder.dump("job/../../evil", "tag with spaces", {}, [])
    assert first is not None
    assert os.path.dirname(first) == str(tmp_path / "fr")
    assert "/.." not in os.path.basename(first)
    assert recorder.dump("job", "tag", {}, []) is not None
    assert recorder.dump("job", "tag", {}, []) is None  # capped
    assert MAX_FLIGHT_DUMPS >= 2


def test_flight_recorder_never_raises_on_bad_root(tmp_path):
    blocked = tmp_path / "file-not-a-dir"
    blocked.write_text("occupied")
    recorder = FlightRecorder(str(blocked))
    assert recorder.dump("job", "tag", {}, []) is None
