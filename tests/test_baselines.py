"""Unit tests for the baselines (HSDF path, TDMA inflation model)."""

from fractions import Fraction

import pytest

from repro.appmodel.binding_aware import build_binding_aware_graph
from repro.baselines.hsdf_path import (
    hsdf_throughput_check,
    timed_throughput_comparison,
)
from repro.baselines.tdma_inflation import tdma_inflated_throughput
from repro.throughput.constrained import constrained_throughput
from repro.throughput.state_space import throughput


class TestHsdfPath:
    def test_matches_direct_throughput(self, multirate_graph):
        direct = throughput(multirate_graph).iteration_rate
        assert hsdf_throughput_check(multirate_graph) == direct
        assert hsdf_throughput_check(multirate_graph, method="enumerate") == direct

    def test_timed_comparison_fields(self, multirate_graph):
        comparison = timed_throughput_comparison(multirate_graph)
        assert comparison.sdf_actors == 2
        assert comparison.hsdf_actors == 5
        assert comparison.direct_rate == comparison.hsdf_rate
        assert comparison.direct_seconds >= 0
        assert comparison.hsdf_seconds >= 0
        assert comparison.speedup > 0

    def test_multirate_blowup_reported(self):
        from repro.generate.multimedia import h263_decoder

        app = h263_decoder(macroblocks=50)
        comparison = timed_throughput_comparison(app.graph)
        assert comparison.sdf_actors == 4
        assert comparison.hsdf_actors == 102


class TestTdmaInflation:
    @pytest.fixture
    def bag(self, example_application, example_architecture, example_binding):
        return build_binding_aware_graph(
            example_application,
            example_architecture,
            example_binding,
            slices={"t1": 5, "t2": 5},
        )

    def test_inflated_is_no_faster_than_constrained(self, bag):
        slices = {"t1": 5, "t2": 5}
        inflated = tdma_inflated_throughput(bag, slices).of("a3")
        schedules = None
        from repro.core.scheduling import build_static_order_schedules

        schedules = build_static_order_schedules(bag, slices=slices)
        from repro.appmodel.binding import SchedulingFunction

        scheduling = SchedulingFunction()
        for tile, schedule in schedules.items():
            scheduling.set_schedule(tile, schedule)
            scheduling.set_slice(tile, slices[tile])
        constrained = constrained_throughput(
            bag.graph, bag.tile_constraints(scheduling)
        ).of("a3")
        # the paper's claim: [4]'s model is conservative (never better)
        assert inflated <= constrained

    def test_full_slice_means_no_inflation(self, bag):
        slices = {"t1": 10, "t2": 10}
        inflated = tdma_inflated_throughput(bag, slices)
        plain = throughput(bag.graph)
        assert inflated.of("a3") == plain.of("a3")

    def test_smaller_slices_inflate_more(self, bag):
        fat = tdma_inflated_throughput(bag, {"t1": 8, "t2": 8}).of("a3")
        thin = tdma_inflated_throughput(bag, {"t1": 2, "t2": 2}).of("a3")
        assert thin < fat

    def test_connection_actors_not_inflated(self, bag):
        tdma_inflated_throughput(bag, {"t1": 5, "t2": 5})
        # the original graph object keeps its connection actor timing
        assert bag.graph.actor("con:d2").execution_time == 11


class TestMaxThroughput:
    def test_max_equals_full_wheel_capability(self):
        """The [6]-style objective coincides with the largest lambda the
        standard strategy can satisfy for the same binding."""
        from fractions import Fraction

        from repro.appmodel.example import (
            paper_example_application,
            paper_example_architecture,
        )
        from repro.baselines.max_throughput import maximize_throughput
        from repro.core.strategy import AllocationError, ResourceAllocator

        architecture = paper_example_architecture()
        best = maximize_throughput(
            paper_example_application(), architecture
        )
        assert best.max_throughput > 0

        # the standard strategy satisfies exactly constraints <= best
        satisfiable = paper_example_application(
            throughput_constraint=best.max_throughput
        )
        allocation = ResourceAllocator(
            weights=best_weights()
        ).allocate(satisfiable, architecture, binding=best.binding)
        assert allocation.achieved_throughput >= best.max_throughput

        impossible = paper_example_application(
            throughput_constraint=best.max_throughput * Fraction(101, 100)
        )
        with pytest.raises(AllocationError):
            ResourceAllocator(weights=best_weights()).allocate(
                impossible, architecture, binding=best.binding
            )

    def test_occupied_platform_lowers_the_maximum(self):
        from repro.appmodel.example import (
            paper_example_application,
            paper_example_architecture,
        )
        from repro.baselines.max_throughput import maximize_throughput

        free = paper_example_architecture()
        crowded = paper_example_architecture()
        for tile in crowded.tiles:
            tile.wheel_occupied = 5
        best_free = maximize_throughput(paper_example_application(), free)
        best_crowded = maximize_throughput(
            paper_example_application(), crowded
        )
        assert best_crowded.max_throughput <= best_free.max_throughput


def best_weights():
    from repro.core.tile_cost import CostWeights

    return CostWeights(0, 1, 2)
