"""Unit tests for repetition vectors and consistency."""

import pytest

from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import (
    InconsistentGraphError,
    is_consistent,
    iteration_length,
    repetition_vector,
)


def test_single_rate_graph_has_unit_vector(chain_graph):
    assert repetition_vector(chain_graph) == {"x": 1, "y": 1, "z": 1}


def test_multirate_vector(multirate_graph):
    assert repetition_vector(multirate_graph) == {"a": 3, "b": 2}


def test_vector_is_minimal():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_channel("d", "a", "b", 4, 6)
    # 4 * gamma(a) = 6 * gamma(b)  =>  smallest is (3, 2)
    assert repetition_vector(graph) == {"a": 3, "b": 2}


def test_vector_satisfies_balance_equations(multirate_graph):
    gamma = repetition_vector(multirate_graph)
    for channel in multirate_graph.channels:
        assert (
            channel.production * gamma[channel.src]
            == channel.consumption * gamma[channel.dst]
        )


def test_inconsistent_graph_raises():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_channel("d1", "a", "b", 1, 1)
    graph.add_channel("d2", "a", "b", 2, 1)
    with pytest.raises(InconsistentGraphError):
        repetition_vector(graph)


def test_inconsistent_cycle_detected_via_incoming_edge():
    # inconsistency discovered while walking an in-channel
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_actor("c")
    graph.add_channel("d1", "a", "b", 1, 1)
    graph.add_channel("d2", "c", "b", 1, 1)
    graph.add_channel("d3", "c", "a", 3, 1)
    with pytest.raises(InconsistentGraphError):
        repetition_vector(graph)


def test_is_consistent_false_instead_of_raise():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_channel("d1", "a", "b", 1, 2)
    graph.add_channel("d2", "b", "a", 1, 2)
    assert not is_consistent(graph)


def test_is_consistent_true(multirate_graph):
    assert is_consistent(multirate_graph)


def test_empty_graph_has_empty_vector():
    assert repetition_vector(SDFGraph()) == {}


def test_disconnected_components_scaled_independently():
    graph = SDFGraph()
    for name in ("a", "b", "c", "d"):
        graph.add_actor(name)
    graph.add_channel("d1", "a", "b", 2, 1)
    graph.add_channel("d2", "c", "d", 1, 3)
    gamma = repetition_vector(graph)
    # Both components reduced jointly to the overall smallest vector.
    assert gamma["b"] == 2 * gamma["a"]
    assert gamma["c"] == 3 * gamma["d"]
    values = sorted(gamma.values())
    assert values[0] == 1


def test_self_loop_with_equal_rates_is_consistent():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_channel("s", "a", "a", 2, 2, 2)
    assert repetition_vector(graph) == {"a": 1}


def test_self_loop_with_unequal_rates_is_inconsistent():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_channel("s", "a", "a", 2, 3)
    with pytest.raises(InconsistentGraphError):
        repetition_vector(graph)


def test_iteration_length_matches_hsdf_size_claim():
    # the paper's H.263 figure: 1 + 2376 + 2376 + 1 = 4754
    graph = SDFGraph()
    for name in ("vld", "iq", "idct", "mc"):
        graph.add_actor(name)
    graph.add_channel("d1", "vld", "iq", 2376, 1)
    graph.add_channel("d2", "iq", "idct", 1, 1)
    graph.add_channel("d3", "idct", "mc", 1, 2376)
    assert iteration_length(graph) == 4754


def test_iteration_length_accepts_precomputed_gamma(multirate_graph):
    gamma = repetition_vector(multirate_graph)
    assert iteration_length(multirate_graph, gamma) == 5
