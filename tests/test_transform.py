"""Unit tests for SDF -> HSDF conversion."""

import pytest

from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector
from repro.sdf.transform import (
    hsdf_actor_name,
    hsdf_size,
    precedence_edges,
    sdf_to_hsdf,
)
from repro.sdf.validate import validate_graph


def test_single_rate_graph_is_isomorphic(chain_graph):
    hsdf = sdf_to_hsdf(chain_graph)
    assert len(hsdf) == len(chain_graph)
    assert len(hsdf.channels) == len(chain_graph.channels)


def test_copy_count_follows_repetition_vector(multirate_graph):
    hsdf = sdf_to_hsdf(multirate_graph)
    gamma = repetition_vector(multirate_graph)
    assert len(hsdf) == sum(gamma.values())
    for actor, count in gamma.items():
        for copy in range(count):
            assert hsdf.has_actor(hsdf_actor_name(actor, copy))


def test_execution_times_preserved(multirate_graph):
    hsdf = sdf_to_hsdf(multirate_graph)
    assert hsdf.actor("a#0").execution_time == 2
    assert hsdf.actor("b#1").execution_time == 3


def test_all_rates_one(multirate_graph):
    hsdf = sdf_to_hsdf(multirate_graph)
    for channel in hsdf.channels:
        assert channel.production == 1
        assert channel.consumption == 1


def test_hsdf_is_consistent_and_validates(multirate_graph):
    validate_graph(sdf_to_hsdf(multirate_graph))


def test_token_count_preserved_per_channel():
    # total initial tokens of an SDF channel must equal the total delay
    # of its HSDF expansion counted per consumed token group
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_channel("d", "a", "b", 2, 3, 4)
    hsdf = sdf_to_hsdf(graph)
    gamma = repetition_vector(graph)
    assert gamma == {"a": 3, "b": 2}
    # every b copy consumes from producers; delays are >= 0
    assert all(c.tokens >= 0 for c in hsdf.channels)


def test_simple_pipeline_dependencies():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_channel("d", "a", "b", 2, 1)
    hsdf = sdf_to_hsdf(graph)
    # gamma = (1, 2): b#0 and b#1 both depend on a#0 in the same iteration
    names = {(c.src, c.dst, c.tokens) for c in hsdf.channels}
    assert ("a#0", "b#0", 0) in names
    assert ("a#0", "b#1", 0) in names


def test_initial_tokens_create_iteration_delay():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_channel("d", "a", "b", 1, 1, 1)
    hsdf = sdf_to_hsdf(graph)
    (channel,) = hsdf.channels
    assert channel.src == "a#0"
    assert channel.dst == "b#0"
    assert channel.tokens == 1


def test_self_loop_expansion():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_channel("s", "a", "a", 1, 1, 1)
    hsdf = sdf_to_hsdf(graph)
    (channel,) = hsdf.channels
    assert channel.src == channel.dst == "a#0"
    assert channel.tokens == 1


def test_h263_explosion_size():
    graph = SDFGraph()
    for name in ("vld", "iq", "idct", "mc"):
        graph.add_actor(name)
    graph.add_channel("d1", "vld", "iq", 99, 1)
    graph.add_channel("d2", "iq", "idct", 1, 1)
    graph.add_channel("d3", "idct", "mc", 1, 99)
    assert hsdf_size(graph) == 200
    hsdf = sdf_to_hsdf(graph)
    assert len(hsdf) == 200


def test_hsdf_size_without_materialising(multirate_graph):
    assert hsdf_size(multirate_graph) == 5


def test_precedence_edges_match_converted_graph(multirate_graph):
    hsdf = sdf_to_hsdf(multirate_graph)
    pairs = {(c.src, c.dst) for c in hsdf.channels}
    assert precedence_edges(multirate_graph) == pairs


def test_multirate_delay_distribution():
    # a -(3,2)-> b with 1 initial token; gamma = (2, 3)
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_channel("d", "a", "b", 3, 2, 1)
    hsdf = sdf_to_hsdf(graph)
    # b#0 consumes tokens 0,1: token 0 is initial; token 1 comes from a#0.
    edges = {(c.src, c.dst): c.tokens for c in hsdf.channels}
    assert edges[("a#0", "b#0")] == 0
    # b#2 consumes tokens 4,5 -> produced by a#1 (tokens 3..5 shifted by 1)
    assert edges[("a#1", "b#2")] == 0
    # the initial token shifts one dependency across the iteration edge
    assert any(tokens >= 1 for tokens in edges.values())
