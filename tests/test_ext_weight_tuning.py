"""Unit tests for the cost-weight tuning extension."""

from fractions import Fraction

import pytest

from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
)
from repro.core.tile_cost import CostWeights
from repro.extensions.weight_tuning import (
    TuningResult,
    tune_weights,
    weight_grid,
)


class TestWeightGrid:
    def test_excludes_all_zero(self):
        grid = weight_grid()
        assert all(any(w.as_tuple()) for w in grid)

    def test_deduplicates_scalar_multiples(self):
        grid = weight_grid(levels=(0, 1, 2))
        directions = set()
        for weights in grid:
            scale = max(weights.as_tuple())
            directions.add(tuple(v / scale for v in weights.as_tuple()))
        assert len(directions) == len(grid)
        # (1,1,1) and (2,2,2) collapse to one candidate
        tuples = [w.as_tuple() for w in grid]
        assert ((1, 1, 1) in tuples) != ((2, 2, 2) in tuples)

    def test_contains_paper_settings(self):
        tuples = {w.as_tuple() for w in weight_grid()}
        assert (1, 0, 0) in tuples
        assert (0, 1, 2) in tuples

    def test_custom_levels(self):
        grid = weight_grid(levels=(0, 1))
        assert len(grid) == 7  # 2^3 - 1 directions


class TestTuneWeights:
    def workload(self, count=5):
        return [
            paper_example_application(Fraction(1, 120)) for _ in range(count)
        ]

    def test_finds_a_winner(self):
        architecture = paper_example_architecture()
        result = tune_weights(
            architecture,
            self.workload(),
            candidates=[CostWeights(1, 0, 0), CostWeights(0, 1, 2)],
        )
        assert isinstance(result, TuningResult)
        assert result.best.as_tuple() in {(1, 0, 0), (0, 1, 2)}
        assert result.best_flow.applications_bound == max(
            result.scores.values()
        )

    def test_architecture_not_mutated(self):
        architecture = paper_example_architecture()
        tune_weights(
            architecture,
            self.workload(2),
            candidates=[CostWeights(1, 1, 1)],
        )
        assert architecture.total_usage()["timewheel"] == 0

    def test_scores_cover_all_candidates(self):
        architecture = paper_example_architecture()
        candidates = [CostWeights(1, 0, 0), CostWeights(0, 0, 1)]
        result = tune_weights(
            architecture, self.workload(3), candidates=candidates
        )
        assert set(result.scores) == {(1, 0, 0), (0, 0, 1)}

    def test_tie_broken_towards_lean_wheel_usage(self):
        # clustering (0,0,1) avoids connection actors, so the same
        # number of applications needs smaller slices
        architecture = paper_example_architecture()
        result = tune_weights(
            architecture,
            self.workload(2),
            candidates=[CostWeights(1, 0, 0), CostWeights(0, 0, 1)],
        )
        scores = result.scores
        if scores[(1, 0, 0)] == scores[(0, 0, 1)]:
            assert result.best.as_tuple() == (0, 0, 1)

    def test_ranking_sorted(self):
        architecture = paper_example_architecture()
        result = tune_weights(
            architecture,
            self.workload(3),
            candidates=[CostWeights(1, 0, 0), CostWeights(0, 1, 2)],
        )
        ranking = result.ranking()
        bounds = [bound for _, bound in ranking]
        assert bounds == sorted(bounds, reverse=True)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            tune_weights(
                paper_example_architecture(), self.workload(1), candidates=[]
            )
