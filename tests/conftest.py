"""Shared fixtures: the paper's running example and small canonical graphs."""

from __future__ import annotations

import pytest

from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
    paper_example_binding,
)
from repro.sdf.graph import SDFGraph, chain


@pytest.fixture
def example_application():
    return paper_example_application()


@pytest.fixture
def example_architecture():
    return paper_example_architecture()


@pytest.fixture
def example_binding():
    return paper_example_binding()


@pytest.fixture
def simple_cycle_graph():
    """a -> b -> a with execution times 2/3 and 2 tokens on the cycle."""
    graph = SDFGraph("cycle")
    graph.add_actor("a", 2)
    graph.add_actor("b", 3)
    graph.add_channel("ab", "a", "b")
    graph.add_channel("ba", "b", "a", tokens=2)
    return graph


@pytest.fixture
def multirate_graph():
    """a -(2,3)-> b -(3,2)-> a; gamma = (3, 2); MCR = 5."""
    graph = SDFGraph("multirate")
    graph.add_actor("a", 2)
    graph.add_actor("b", 3)
    graph.add_channel("ab", "a", "b", 2, 3, 1)
    graph.add_channel("ba", "b", "a", 3, 2, 6)
    return graph


@pytest.fixture
def chain_graph():
    """Homogeneous 3-chain closed by a 2-token back edge."""
    return chain(["x", "y", "z"], [1, 2, 3], tokens_on_back_edge=2)
