"""Shared fixtures: the paper's running example and small canonical graphs."""

from __future__ import annotations

import pytest

from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
    paper_example_binding,
)
from repro.sdf.graph import SDFGraph, chain


@pytest.fixture
def example_application():
    return paper_example_application()


@pytest.fixture
def example_architecture():
    return paper_example_architecture()


@pytest.fixture
def example_binding():
    return paper_example_binding()


@pytest.fixture
def simple_cycle_graph():
    """a -> b -> a with execution times 2/3 and 2 tokens on the cycle."""
    graph = SDFGraph("cycle")
    graph.add_actor("a", 2)
    graph.add_actor("b", 3)
    graph.add_channel("ab", "a", "b")
    graph.add_channel("ba", "b", "a", tokens=2)
    return graph


@pytest.fixture
def multirate_graph():
    """a -(2,3)-> b -(3,2)-> a; gamma = (3, 2); MCR = 5."""
    graph = SDFGraph("multirate")
    graph.add_actor("a", 2)
    graph.add_actor("b", 3)
    graph.add_channel("ab", "a", "b", 2, 3, 1)
    graph.add_channel("ba", "b", "a", 3, 2, 6)
    return graph


@pytest.fixture
def chain_graph():
    """Homogeneous 3-chain closed by a 2-token back edge."""
    return chain(["x", "y", "z"], [1, 2, 3], tokens_on_back_edge=2)


# -- runtime lock sanitizer (REPRO_LOCKCHECK=1, `make test-sanitizer`) -----
#
# With REPRO_LOCKCHECK=1 every test runs with instrumented locks: all
# locks allocated during the test go through a CheckedLock feeding a
# LockMonitor, and at teardown the observed acquisition orders are
# cross-checked against the static lock-order graph of
# repro.analysis.source (docs/ANALYSIS.md, "Concurrency rules").  Tests
# that drive the sanitizer explicitly (pytest -m sanitizer) manage
# their own monitor and are left alone.

_static_lock_graph = None


def _static_graph():
    global _static_lock_graph
    if _static_lock_graph is None:
        from repro.analysis.source import lock_order_graph

        _static_lock_graph = lock_order_graph()
    return _static_lock_graph


@pytest.fixture(autouse=True)
def _lockcheck_everywhere(request):
    import os

    if not os.environ.get("REPRO_LOCKCHECK") or request.node.get_closest_marker(
        "sanitizer"
    ):
        yield
        return
    from repro.obs.lockcheck import lockchecking

    static = _static_graph()
    with lockchecking() as monitor:
        yield
    inversions = monitor.inversions(static)
    assert not inversions, (
        f"lock-order inversions against the static graph: {inversions}"
    )
