"""Tests pinning the paper's qualitative claims (Sections 1, 8 and 10).

These are the assertions EXPERIMENTS.md reports on; they encode the
*shape* of the paper's results (orderings and structure), not absolute
numbers.
"""

from fractions import Fraction

import pytest

from repro.appmodel.binding import SchedulingFunction
from repro.appmodel.binding_aware import build_binding_aware_graph
from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
    paper_example_binding,
)
from repro.baselines.tdma_inflation import tdma_inflated_throughput
from repro.core.scheduling import build_static_order_schedules
from repro.core.strategy import ResourceAllocator
from repro.core.tile_cost import CostWeights
from repro.throughput.constrained import constrained_throughput
from repro.throughput.state_space import throughput


@pytest.fixture
def fig5_setup():
    app = paper_example_application()
    arch = paper_example_architecture()
    binding = paper_example_binding()
    bag = build_binding_aware_graph(
        app, arch, binding, slices={"t1": 5, "t2": 5}
    )
    return app, arch, binding, bag


class TestFig5Ordering:
    """Fig. 5: ideal > binding-aware > TDMA-constrained >= [4]-model."""

    def test_ideal_rate_is_half(self, fig5_setup):
        app, *_ = fig5_setup
        ideal = throughput(app.graph, auto_concurrency=False).of("a3")
        assert ideal == Fraction(1, 2)  # the paper's Fig. 5(a)

    def test_binding_degrades_throughput(self, fig5_setup):
        app, _, _, bag = fig5_setup
        ideal = throughput(app.graph, auto_concurrency=False).of("a3")
        bound = throughput(bag.graph).of("a3")
        assert bound < ideal

    def test_tdma_constraints_degrade_further(self, fig5_setup):
        app, _, _, bag = fig5_setup
        bound = throughput(bag.graph).of("a3")
        schedules = build_static_order_schedules(bag)
        scheduling = SchedulingFunction()
        for tile, schedule in schedules.items():
            scheduling.set_schedule(tile, schedule)
            scheduling.set_slice(tile, 5)
        constrained = constrained_throughput(
            bag.graph, bag.tile_constraints(scheduling)
        ).of("a3")
        assert constrained < bound

    def test_state_space_beats_reference_4_model(self, fig5_setup):
        """§8.2: the constrained analysis is more accurate than [4]."""
        app, _, _, bag = fig5_setup
        schedules = build_static_order_schedules(bag)
        scheduling = SchedulingFunction()
        for tile, schedule in schedules.items():
            scheduling.set_schedule(tile, schedule)
            scheduling.set_slice(tile, 5)
        constrained = constrained_throughput(
            bag.graph, bag.tile_constraints(scheduling)
        ).of("a3")
        inflated = tdma_inflated_throughput(bag, {"t1": 5, "t2": 5}).of("a3")
        assert inflated <= constrained


class TestStrategyStructure:
    def test_three_steps_run_once_each(self):
        """§9: binding, then scheduling, then slices; no iteration."""
        app = paper_example_application()
        arch = paper_example_architecture()
        allocation = ResourceAllocator().allocate(app, arch)
        # binding covers all actors
        assert len(allocation.binding) == 3
        # every used tile got a schedule and a slice
        for tile in allocation.binding.used_tiles():
            assert tile in allocation.scheduling.schedules
            assert tile in allocation.scheduling.slices

    def test_throughput_check_counts_are_moderate(self):
        """§10.2: the strategy needs tens, not thousands, of checks."""
        app = paper_example_application()
        arch = paper_example_architecture()
        allocation = ResourceAllocator().allocate(app, arch)
        assert 1 <= allocation.throughput_checks <= 60

    def test_guarantee_is_conservative(self):
        """The reported throughput is a guarantee: the verification
        engine itself confirms the constraint at the final slices."""
        app = paper_example_application(throughput_constraint=Fraction(1, 30))
        arch = paper_example_architecture()
        allocation = ResourceAllocator().allocate(app, arch)
        bag = build_binding_aware_graph(
            app, arch, allocation.binding, slices=allocation.scheduling.slices
        )
        verified = constrained_throughput(
            bag.graph, bag.tile_constraints(allocation.scheduling)
        ).of("a3")
        assert verified == allocation.achieved_throughput
        assert verified >= Fraction(1, 30)


class TestProblemSizeClaim:
    """§1: HSDF conversion blows up, direct analysis does not."""

    def test_h263_sizes(self):
        from repro.generate.multimedia import h263_decoder
        from repro.sdf.transform import hsdf_size

        app = h263_decoder()
        assert len(app.graph) == 4
        assert hsdf_size(app.graph) == 4754

    def test_direct_analysis_explores_linearly_many_states(self):
        from repro.generate.multimedia import h263_decoder

        app = h263_decoder(macroblocks=100)
        result = throughput(app.graph)
        # states scale with firings per iteration, not with the
        # exponential worst case
        assert result.states_explored < 10_000
        assert result.iteration_rate > 0
