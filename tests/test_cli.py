"""Unit tests for the repro-alloc command-line interface."""

import json

import pytest

from repro.cli import main
from repro.sdf.graph import chain
from repro.sdf.serialization import graph_to_json


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "graph.json"
    path.write_text(graph_to_json(chain(["a", "b"], [2, 3], tokens_on_back_edge=1)))
    return str(path)


def test_analyse_prints_throughput(graph_file, capsys):
    assert main(["analyse", graph_file]) == 0
    out = capsys.readouterr().out
    assert "iteration rate: 1/5" in out
    assert "throughput(a) = 1/5" in out


def test_analyse_auto_concurrency_flag(graph_file, capsys):
    assert main(["analyse", graph_file, "--no-auto-concurrency"]) == 0
    assert "1/5" in capsys.readouterr().out


def test_generate_emits_json(capsys):
    assert main(["generate", "--set", "processing", "-n", "2", "--seed", "1"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 2
    assert all("actors" in graph for graph in payload)


def test_example_runs_paper_flow(capsys):
    assert main(["example"]) == 0
    out = capsys.readouterr().out
    assert "binding:" in out
    assert "a1 -> t1" in out
    assert "throughput checks:" in out


def test_example_with_weights(capsys):
    assert main(["example", "--weights", "0", "0", "1"]) == 0
    out = capsys.readouterr().out
    # pure communication weight clusters everything on one tile
    assert "a3 -> t1" in out


def test_allocate_small_run(capsys):
    assert (
        main(
            [
                "allocate",
                "--set",
                "processing",
                "-n",
                "2",
                "--seed",
                "4",
                "--architecture",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "applications bound: 2" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


def test_missing_graph_file_exits_2(tmp_path, capsys):
    assert main(["analyse", str(tmp_path / "missing.json")]) == 2
    err = capsys.readouterr().err
    assert err.startswith("repro-alloc: error:")
    assert err.count("\n") == 1  # one-line diagnostic, no traceback


def test_missing_graph_file_reraises_with_debug(tmp_path):
    with pytest.raises(FileNotFoundError):
        main(["analyse", str(tmp_path / "missing.json"), "--debug"])


def test_malformed_json_exits_2(tmp_path, capsys):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    assert main(["analyse", str(path)]) == 2
    err = capsys.readouterr().err
    assert "invalid JSON" in err
    assert str(path) in err


def test_deadline_zero_exits_3(graph_file, capsys):
    assert main(["analyse", graph_file, "--deadline", "0"]) == 3
    assert "budget exhausted" in capsys.readouterr().err


def test_max_states_budget_exits_3(graph_file, capsys):
    assert main(["analyse", graph_file, "--max-states", "1"]) == 3
    assert "budget exhausted" in capsys.readouterr().err


def test_allocate_degrade_completes_under_tiny_deadline(capsys):
    assert (
        main(
            [
                "allocate",
                "--set",
                "processing",
                "-n",
                "2",
                "--seed",
                "4",
                "--architecture",
                "2",
                "--deadline",
                "0",
                "--degrade",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "applications bound: 2" in out
    assert "degraded allocations: 2" in out


def test_allocate_without_degrade_exits_3_on_deadline(capsys):
    assert (
        main(
            [
                "allocate",
                "--set",
                "processing",
                "-n",
                "2",
                "--seed",
                "4",
                "--architecture",
                "2",
                "--deadline",
                "0",
            ]
        )
        == 3
    )
    assert "budget exhausted" in capsys.readouterr().err


def test_dot_command(graph_file, capsys):
    assert main(["dot", graph_file]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph")
    assert '"a" -> "b"' in out


def test_trace_command(capsys):
    assert main(["trace", "--width", "40"]) == 0
    out = capsys.readouterr().out
    assert "a1@t1" in out
    assert "#" in out


def test_dimension_command(capsys):
    assert (
        main(
            [
                "dimension",
                "--set",
                "processing",
                "-n",
                "1",
                "--seed",
                "4",
                "--max-tiles",
                "9",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "bound" in out


def test_trace_vcd_option(tmp_path, capsys):
    vcd_path = tmp_path / "trace.vcd"
    assert main(["trace", "--vcd", str(vcd_path)]) == 0
    assert vcd_path.read_text().startswith("$comment")
    assert "VCD waveform" in capsys.readouterr().out


def test_profile_graph_reports_states_and_timings(graph_file, capsys):
    assert main(["profile", graph_file]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["result"]["mode"] == "analyse"
    assert report["result"]["iteration_rate"] == "1/5"
    assert report["result"]["states_explored"] > 0
    metrics = report["metrics"]
    assert (
        metrics["counters"]["state_space.states"]
        == report["result"]["states_explored"]
    )
    assert metrics["timers"]["state_space.execute"]["count"] >= 1
    assert any(
        span["name"] == "state_space.throughput" for span in metrics["spans"]
    )


def test_profile_example_records_allocation_phases(capsys):
    assert main(["profile"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["result"]["mode"] == "example"
    assert report["result"]["achieved_throughput"] == "1/20"
    assert report["result"]["throughput_checks"] > 0
    timers = report["metrics"]["timers"]
    for phase in ("allocate.binding", "allocate.scheduling", "allocate.slices"):
        assert timers[phase]["count"] >= 1
    assert report["metrics"]["counters"]["slices.throughput_checks"] > 0


def test_profile_flow_reports_per_application_stats(capsys):
    assert main(["profile", "--flow", "-n", "2", "--seed", "4"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["result"]["mode"] == "flow"
    applications = report["result"]["applications"]
    assert len(applications) == 2
    for stats in applications:
        assert stats["outcome"] in ("allocated", "failed")
        assert stats["seconds"] >= 0
    allocated = [s for s in applications if s["outcome"] == "allocated"]
    assert allocated, "expected at least one allocated application"
    assert all("throughput_checks" in s for s in allocated)
    assert all("tiles_used" in s for s in allocated)


def test_profile_out_and_summary(graph_file, tmp_path, capsys):
    out_path = tmp_path / "report.json"
    assert main(["profile", graph_file, "--out", str(out_path)]) == 0
    report = json.loads(out_path.read_text())
    assert "metrics" in report
    assert main(["profile", graph_file, "--summary"]) == 0
    summary = capsys.readouterr().out
    assert "state_space.states" in summary
    assert "state_space.throughput" in summary


def test_metrics_flag_writes_snapshot(graph_file, tmp_path, capsys):
    metrics_path = tmp_path / "metrics.json"
    assert main(["analyse", graph_file, "--metrics", str(metrics_path)]) == 0
    assert "1/5" in capsys.readouterr().out  # normal output is untouched
    snapshot = json.loads(metrics_path.read_text())
    assert snapshot["counters"]["state_space.throughput_calls"] == 1
    assert snapshot["counters"]["state_space.states"] > 0
    assert "state_space.execute" in snapshot["timers"]


def test_metrics_flag_on_allocation_command(tmp_path, capsys):
    metrics_path = tmp_path / "metrics.json"
    assert main(["example", "--metrics", str(metrics_path)]) == 0
    assert "binding:" in capsys.readouterr().out
    snapshot = json.loads(metrics_path.read_text())
    assert snapshot["counters"]["allocate.successes"] == 1
    assert any(span["name"] == "allocate" for span in snapshot["spans"])


def test_metrics_collection_is_scoped_to_the_command(graph_file, tmp_path):
    from repro.obs import NULL_METRICS, get_metrics

    metrics_path = tmp_path / "metrics.json"
    assert main(["analyse", graph_file, "--metrics", str(metrics_path)]) == 0
    assert get_metrics() is NULL_METRICS  # collection disabled again


def test_trace_flag_writes_chrome_trace(graph_file, tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    assert main(["analyse", graph_file, "--trace", str(trace_path)]) == 0
    assert "1/5" in capsys.readouterr().out  # normal output is untouched
    document = json.loads(trace_path.read_text())
    events = document["traceEvents"]
    assert events[0]["ph"] == "M"  # process-name metadata
    assert any(event.get("cat") == "engine" for event in events)


def test_trace_flag_on_allocate_covers_the_event_categories(tmp_path, capsys):
    """One traced allocate run must hit >=4 of the documented categories."""
    trace_path = tmp_path / "trace.json"
    checkpoint = tmp_path / "flow.ck.json"
    assert (
        main(
            [
                "allocate",
                "-n",
                "3",
                "--degrade",
                "--max-states",
                "30000",
                "--checkpoint",
                str(checkpoint),
                "--trace",
                str(trace_path),
            ]
        )
        == 0
    )
    capsys.readouterr()
    document = json.loads(trace_path.read_text())
    categories = {
        event["cat"]
        for event in document["traceEvents"]
        if "cat" in event
    }
    assert {"engine", "tdma", "checkpoint", "resilience"} <= categories


def test_trace_is_written_even_when_the_budget_fires(graph_file, tmp_path):
    trace_path = tmp_path / "trace.json"
    status = main(
        ["analyse", graph_file, "--deadline", "0", "--trace", str(trace_path)]
    )
    assert status == 3
    document = json.loads(trace_path.read_text())  # evidence survives
    assert document["traceEvents"][0]["ph"] == "M"


def test_tracing_is_scoped_to_the_command(graph_file, tmp_path):
    from repro.obs.trace import NULL_TRACE, get_trace

    trace_path = tmp_path / "trace.json"
    assert main(["analyse", graph_file, "--trace", str(trace_path)]) == 0
    assert get_trace() is NULL_TRACE  # tracing disabled again


def test_bench_writes_schema_versioned_report(tmp_path, capsys):
    from repro.obs.report import read_report

    out = tmp_path / "BENCH_ci.json"
    assert main(["bench", "--label", "ci", "--out", str(out)]) == 0
    assert "bench report written" in capsys.readouterr().out
    report = read_report(str(out))
    assert report["label"] == "ci"
    assert [w["name"] for w in report["workloads"]] == [
        "fig5-example",
        "classic-models",
        "h263-analysis",
        "random-flow",
        "infeasible",
        "exact-small",
    ]


def test_bench_compare_accepts_its_own_baseline(tmp_path, capsys):
    baseline = tmp_path / "old.json"
    fresh = tmp_path / "new.json"
    assert main(["bench", "--out", str(baseline)]) == 0
    assert (
        main(["bench", "--out", str(fresh), "--compare", str(baseline)]) == 0
    )
    assert "no regressions" in capsys.readouterr().out


def test_bench_compare_exits_5_on_regression(tmp_path, capsys):
    import json as json_module

    from repro.obs.report import read_report, write_report

    baseline = tmp_path / "old.json"
    assert main(["bench", "--out", str(baseline)]) == 0
    doctored = read_report(str(baseline))
    doctored["workloads"][0]["states_explored"] = -1  # any growth regresses
    write_report(str(baseline), doctored)
    fresh = tmp_path / "new.json"
    status = main(["bench", "--out", str(fresh), "--compare", str(baseline)])
    assert status == 5
    assert "bench regression" in capsys.readouterr().err


def test_bench_compare_missing_baseline_exits_2(tmp_path, capsys):
    status = main(
        ["bench", "--out", str(tmp_path / "n.json"), "--compare", "/absent"]
    )
    assert status == 2
    assert "error" in capsys.readouterr().err
