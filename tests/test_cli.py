"""Unit tests for the repro-alloc command-line interface."""

import json

import pytest

from repro.cli import main
from repro.sdf.graph import chain
from repro.sdf.serialization import graph_to_json


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "graph.json"
    path.write_text(graph_to_json(chain(["a", "b"], [2, 3], tokens_on_back_edge=1)))
    return str(path)


def test_analyse_prints_throughput(graph_file, capsys):
    assert main(["analyse", graph_file]) == 0
    out = capsys.readouterr().out
    assert "iteration rate: 1/5" in out
    assert "throughput(a) = 1/5" in out


def test_analyse_auto_concurrency_flag(graph_file, capsys):
    assert main(["analyse", graph_file, "--no-auto-concurrency"]) == 0
    assert "1/5" in capsys.readouterr().out


def test_generate_emits_json(capsys):
    assert main(["generate", "--set", "processing", "-n", "2", "--seed", "1"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 2
    assert all("actors" in graph for graph in payload)


def test_example_runs_paper_flow(capsys):
    assert main(["example"]) == 0
    out = capsys.readouterr().out
    assert "binding:" in out
    assert "a1 -> t1" in out
    assert "throughput checks:" in out


def test_example_with_weights(capsys):
    assert main(["example", "--weights", "0", "0", "1"]) == 0
    out = capsys.readouterr().out
    # pure communication weight clusters everything on one tile
    assert "a3 -> t1" in out


def test_allocate_small_run(capsys):
    assert (
        main(
            [
                "allocate",
                "--set",
                "processing",
                "-n",
                "2",
                "--seed",
                "4",
                "--architecture",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "applications bound: 2" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


def test_missing_graph_file_errors(tmp_path):
    with pytest.raises(FileNotFoundError):
        main(["analyse", str(tmp_path / "missing.json")])


def test_dot_command(graph_file, capsys):
    assert main(["dot", graph_file]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph")
    assert '"a" -> "b"' in out


def test_trace_command(capsys):
    assert main(["trace", "--width", "40"]) == 0
    out = capsys.readouterr().out
    assert "a1@t1" in out
    assert "#" in out


def test_dimension_command(capsys):
    assert (
        main(
            [
                "dimension",
                "--set",
                "processing",
                "-n",
                "1",
                "--seed",
                "4",
                "--max-tiles",
                "9",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "bound" in out


def test_trace_vcd_option(tmp_path, capsys):
    vcd_path = tmp_path / "trace.vcd"
    assert main(["trace", "--vcd", str(vcd_path)]) == 0
    assert vcd_path.read_text().startswith("$comment")
    assert "VCD waveform" in capsys.readouterr().out
