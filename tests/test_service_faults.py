"""Seeded soak of the allocation service (``pytest -m faults``).

One property, stated in ``docs/SERVICE.md`` and hammered here under
probabilistic fault injection across the full service lifecycle —
submit, crash, retry, drain, restart, drain again: **no accepted job is
ever lost**.  Every job whose id was returned by ``submit`` ends in
exactly one terminal state (``certified``, ``degraded``, ``failed`` or
``quarantined``), in memory and in the durable journal alike; every
submission the injector made fail was rejected loudly, never admitted
and dropped.
"""

import json
import os

import pytest

from repro.resilience.faults import (
    FaultInjector,
    FaultSpec,
    InjectedFaultError,
)
from repro.service import AllocationService, JournalError, RetryPolicy
from repro.service.journal import TERMINAL_STATES

from tests.service_helpers import fast_request, rename_isomorphic

pytestmark = [pytest.mark.faults, pytest.mark.service]

SOAK_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.01, max_delay=0.05, jitter=0.1
)

SOAK_SPECS = (
    FaultSpec(
        point="service.worker.run", error="runtime", probability=0.3
    ),
    FaultSpec(
        point="service.journal.write", error="runtime", probability=0.15
    ),
    FaultSpec(
        point="service.cache.read", error="runtime", probability=0.3
    ),
)


def _submissions(count):
    """``count`` distinct-but-isomorphic requests (cache-heavy mix)."""
    application, architecture = fast_request()
    yield application, architecture
    for index in range(1, count):
        yield rename_isomorphic(
            application, seed=index, prefix=f"soak{index}"
        ), architecture


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_soak_no_job_is_ever_lost(tmp_path, seed):
    spool = str(tmp_path / "spool")
    accepted = []
    rejected = 0

    # -- phase 1: submit and run under fire, then drain mid-flight -----
    with FaultInjector(specs=SOAK_SPECS, seed=seed):
        service = AllocationService(
            spool, workers=2, retry=SOAK_RETRY
        ).start()
        for application, architecture in _submissions(8):
            try:
                accepted.append(service.submit(application, architecture))
            except (InjectedFaultError, JournalError):
                rejected += 1  # loud rejection, nothing half-admitted
        try:
            service.wait_idle(timeout=20)
        except TimeoutError:
            pass  # a drain mid-flight is the point of this phase
        service.drain(cancel_running=True)

        # rejected submissions must not have been admitted anywhere
        assert sum(service.stats()["jobs"].values()) == len(accepted)

        # -- phase 2: restart over the same spool, still under fire ----
        service = AllocationService(
            spool, workers=2, retry=SOAK_RETRY
        ).start()
        try:
            service.wait_idle(timeout=20)
        except TimeoutError:
            pass
        service.drain(cancel_running=True)

    # -- phase 3: a calm daemon finishes whatever survived -------------
    service = AllocationService(spool, workers=2, retry=SOAK_RETRY).start()
    try:
        service.wait_idle(timeout=60)
    finally:
        outcome = service.drain(cancel_running=True)
    assert outcome == {"parked": 0, "cancelled": 0}

    # -- the property: every accepted job is accounted for -------------
    assert len(accepted) + rejected == 8
    assert len(set(accepted)) == len(accepted)
    for job_id in accepted:
        record = service.job(job_id)
        assert record is not None, f"{job_id} vanished from the service"
        assert record["state"] in TERMINAL_STATES, (
            f"{job_id} stuck in {record['state']!r}"
        )
        assert 1 <= record["attempts"] <= record["max_attempts"]
        # the journal agrees, durably
        on_disk = service.journal.load(job_id)
        assert on_disk["state"] == record["state"]
        if record["state"] in ("certified", "degraded"):
            assert record["result"]["allocations"][0]["binding"]
        else:
            assert record["reason"]

    # nothing beyond the accepted jobs ever reached the journal
    journaled = {
        name[: -len(".json")]
        for name in os.listdir(os.path.join(spool, "jobs"))
        if name.endswith(".json")
    }
    assert journaled == set(accepted)


def test_journal_write_fault_at_admission_is_loud_and_clean(tmp_path):
    """A submission whose durable write fails must raise — and leave no
    trace: no in-memory record, no queue entry, no journal file."""
    spool = str(tmp_path / "spool")
    service = AllocationService(spool, workers=1, retry=SOAK_RETRY).start()
    application, architecture = fast_request()
    try:
        with FaultInjector(
            specs=(
                FaultSpec(
                    point="service.journal.write",
                    error="runtime",
                    times=1,
                ),
            )
        ) as injector:
            with pytest.raises(InjectedFaultError):
                service.submit(application, architecture)
        assert len(injector.injected) == 1
        assert service.stats()["jobs"] == {}
        assert service.stats()["queue_depth"] == 0
        jobs_dir = os.path.join(spool, "jobs")
        assert [
            name
            for name in os.listdir(jobs_dir)
            if name.endswith(".json")
        ] == []
        # the service remains healthy: the next submission goes through
        job_id = service.submit(application, architecture)
        assert service.wait(job_id, timeout=60)["state"] == "certified"
    finally:
        service.drain(cancel_running=True)


def test_cache_read_fault_degrades_to_recompute(tmp_path):
    """An unreadable cache entry costs a recompute, never the job."""
    spool = str(tmp_path / "spool")
    service = AllocationService(spool, workers=1, retry=SOAK_RETRY).start()
    application, architecture = fast_request()
    try:
        first = service.wait(
            service.submit(application, architecture), 60
        )
        assert first["source"] == "computed"
        with FaultInjector(
            specs=(
                FaultSpec(
                    point="service.cache.read",
                    error="runtime",
                    times=None,
                ),
            )
        ):
            second = service.wait(
                service.submit(application, architecture), 60
            )
        assert second["state"] == "certified"
        assert second["source"] == "computed"  # the hit was unreachable
        assert json.loads(json.dumps(second["result"])) == first["result"]
    finally:
        service.drain(cancel_running=True)
