"""Prometheus exposition: renderer, validator and reader.

The renderer is self-checking by construction — everything
``render_prometheus`` emits must pass ``validate_exposition``, and the
validator must in turn reject the classic exposition mistakes (dup
families, interleaved samples, malformed values) so the CI smoke step
actually guards something.
"""

import math

import pytest

from repro.obs import Metrics
from repro.obs.prom import (
    CONTENT_TYPE,
    parse_exposition,
    render_prometheus,
    sanitize_metric_name,
    validate_exposition,
)

pytestmark = pytest.mark.telemetry


# -- names ----------------------------------------------------------------


def test_sanitize_maps_dots_and_prefix():
    assert sanitize_metric_name("service.cache.hit", "repro") == (
        "repro_service_cache_hit"
    )
    assert sanitize_metric_name("plain") == "plain"


def test_sanitize_rewrites_illegal_characters():
    assert sanitize_metric_name("a-b c%d") == "a_b_c_d"
    # a leading digit is illegal in Prometheus names
    assert sanitize_metric_name("9lives").startswith("_")


def test_content_type_pins_the_text_format_version():
    assert "version=0.0.4" in CONTENT_TYPE
    assert CONTENT_TYPE.startswith("text/plain")


# -- rendering ------------------------------------------------------------


def _snapshot(**overrides):
    snapshot = {"counters": {}, "gauges": {}, "timers": {}, "histograms": {}}
    snapshot.update(overrides)
    return snapshot


def test_counters_render_as_total_families():
    text = render_prometheus(
        _snapshot(counters={"service.submitted": 3, "flow.allocated": 1})
    )
    samples = parse_exposition(text)
    assert samples["repro_service_submitted_total"] == 3
    assert samples["repro_flow_allocated_total"] == 1
    assert "# TYPE repro_service_submitted_total counter" in text


def test_colliding_sanitized_counters_are_summed():
    # "a.b" and "a_b" sanitize to the same family; the renderer must
    # not emit two samples with one name (that would be invalid)
    text = render_prometheus(_snapshot(counters={"a.b": 2, "a_b": 5}))
    assert validate_exposition(text) == []
    assert parse_exposition(text)["repro_a_b_total"] == 7


def test_non_numeric_gauges_are_skipped():
    text = render_prometheus(
        _snapshot(gauges={"service.queue_depth": 4, "service.label": "1/3"})
    )
    samples = parse_exposition(text)
    assert samples["repro_service_queue_depth"] == 4
    assert "repro_service_label" not in text


def test_timers_render_as_summaries_with_quantiles():
    metrics = Metrics()
    for value in (0.010, 0.020, 0.030, 0.040):
        metrics.observe("allocate.binding", value)
    text = render_prometheus(metrics.snapshot())
    samples = parse_exposition(text)
    family = "repro_allocate_binding_seconds"
    assert samples[f"{family}_count"] == 4
    assert samples[f"{family}_sum"] == pytest.approx(0.1)
    assert f'{family}{{quantile="0.5"}}' in samples
    assert f'{family}{{quantile="0.99"}}' in samples
    assert validate_exposition(text) == []


def test_histograms_render_cumulative_buckets():
    metrics = Metrics()
    for value in (0.5, 1.5, 1.5, 99.0):
        metrics.histogram("service.wait", value, buckets=(1.0, 2.0, 4.0))
    text = render_prometheus(metrics.snapshot())
    samples = parse_exposition(text)
    family = "repro_service_wait"
    assert samples[f'{family}_bucket{{le="1.0"}}'] == 1
    assert samples[f'{family}_bucket{{le="2.0"}}'] == 3  # cumulative
    assert samples[f'{family}_bucket{{le="4.0"}}'] == 3
    assert samples[f'{family}_bucket{{le="+Inf"}}'] == 4
    assert samples[f"{family}_count"] == 4
    assert samples[f"{family}_sum"] == pytest.approx(102.5)
    assert validate_exposition(text) == []


def test_special_float_values_render_legibly():
    text = render_prometheus(
        _snapshot(gauges={"inf": math.inf, "ninf": -math.inf})
    )
    assert "repro_inf +Inf" in text
    assert "repro_ninf -Inf" in text
    assert validate_exposition(text) == []


def test_empty_snapshot_renders_empty():
    assert render_prometheus(_snapshot()) == ""
    assert validate_exposition("") == []


def test_full_registry_round_trip_is_valid():
    metrics = Metrics()
    metrics.counter("state_space.states", 42)
    metrics.gauge("slices.shared_slice", 5)
    metrics.observe("mcr.howard", 0.002)
    metrics.histogram("service.attempt_seconds", 0.25)
    text = render_prometheus(metrics.snapshot())
    assert validate_exposition(text) == []
    assert parse_exposition(text)["repro_state_space_states_total"] == 42


# -- validation -----------------------------------------------------------


def test_validate_flags_duplicate_type_lines():
    text = "# TYPE a counter\na 1\n# TYPE a counter\n"
    assert any("duplicate TYPE" in p for p in validate_exposition(text))


def test_validate_flags_malformed_samples():
    assert any(
        "malformed sample" in p
        for p in validate_exposition("not a metric line at all {\n")
    )
    assert any(
        "malformed sample" in p for p in validate_exposition("name 1 extra\n")
    )


def test_validate_flags_duplicate_samples():
    text = 'a{x="1"} 1\na{x="1"} 2\n'
    assert any("duplicate sample" in p for p in validate_exposition(text))


def test_validate_flags_interleaved_families():
    text = "a 1\nb 2\na_sum 3\n"
    assert any("non-consecutive" in p for p in validate_exposition(text))


def test_validate_accepts_suffixed_family_runs():
    # _bucket/_sum/_count belong to one histogram family — consecutive
    text = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 1\nh_bucket{le="+Inf"} 2\nh_sum 3.0\nh_count 2\n'
    )
    assert validate_exposition(text) == []


# -- parsing --------------------------------------------------------------


def test_parse_skips_comments_and_junk():
    samples = parse_exposition(
        "# HELP x whatever\n# TYPE x counter\nx 4\n?!garbage\n\n"
    )
    assert samples == {"x": 4.0}


def test_parse_keeps_label_sets_distinct():
    samples = parse_exposition('s{quantile="0.5"} 1\ns{quantile="0.95"} 2\n')
    assert samples['s{quantile="0.5"}'] == 1.0
    assert samples['s{quantile="0.95"}'] == 2.0
