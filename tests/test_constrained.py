"""Unit tests for schedule/TDMA-constrained throughput (paper §8.2)."""

from fractions import Fraction

import pytest

from repro.sdf.graph import SDFGraph
from repro.throughput.constrained import (
    StaticOrderSchedule,
    TileConstraints,
    busy_time,
    constrained_throughput,
    gated_finish,
)


class TestBusyTime:
    def test_full_slice_wheel(self):
        assert busy_time(0, 10, 10, 10) == 10

    def test_inside_slice(self):
        assert busy_time(1, 4, 10, 5) == 3

    def test_spanning_gap(self):
        # slice [0,5): busy in [3,12) = [3,5) + [10,12)
        assert busy_time(3, 12, 10, 5) == 4

    def test_entirely_outside_slice(self):
        assert busy_time(5, 10, 10, 5) == 0

    def test_multiple_rotations(self):
        assert busy_time(0, 30, 10, 5) == 15

    def test_zero_slice(self):
        assert busy_time(0, 100, 10, 0) == 0


class TestGatedFinish:
    def test_zero_work_finishes_immediately(self):
        assert gated_finish(7, 0, 10, 5) == 7

    def test_full_wheel_is_plain_addition(self):
        assert gated_finish(3, 12, 10, 10) == 15

    def test_zero_slice_never_finishes(self):
        assert gated_finish(0, 1, 10, 0) is None

    def test_fits_in_current_slice(self):
        assert gated_finish(1, 3, 10, 5) == 4

    def test_spills_into_next_rotation(self):
        # at t=3 with slice [0,5): 2 units now, 2 more from t=10
        assert gated_finish(3, 4, 10, 5) == 12

    def test_starts_outside_slice(self):
        assert gated_finish(7, 2, 10, 5) == 12

    def test_exactly_fills_slices(self):
        # 10 units of work in 5-unit slices starting at 0: ends at t=15
        assert gated_finish(0, 10, 10, 5) == 15

    def test_consistency_with_busy_time(self):
        for start in range(0, 20):
            for work in range(1, 15):
                finish = gated_finish(start, work, 7, 3)
                assert busy_time(start, finish, 7, 3) == work
                assert busy_time(start, finish - 1, 7, 3) < work


class TestStaticOrderSchedule:
    def test_empty_periodic_rejected(self):
        with pytest.raises(ValueError):
            StaticOrderSchedule(periodic=())

    def test_entry_walks_transient_then_period(self):
        schedule = StaticOrderSchedule(periodic=("b", "c"), transient=("a",))
        assert [schedule.entry(i) for i in range(5)] == ["a", "b", "c", "b", "c"]

    def test_canonical_position_folds_period(self):
        schedule = StaticOrderSchedule(periodic=("b", "c"), transient=("a",))
        assert schedule.canonical_position(0) == 0
        assert schedule.canonical_position(1) == 1
        assert schedule.canonical_position(3) == 1
        assert schedule.canonical_position(4) == 2

    def test_actors_deduplicated(self):
        schedule = StaticOrderSchedule(periodic=("a", "b", "a"))
        assert schedule.actors == ("a", "b")


@pytest.fixture
def two_actor_pipeline():
    """a -> b with a buffer back edge; both bound to one tile."""
    graph = SDFGraph("pipe")
    graph.add_actor("a", 2)
    graph.add_actor("b", 3)
    graph.add_channel("self:a", "a", "a", tokens=1)
    graph.add_channel("self:b", "b", "b", tokens=1)
    graph.add_channel("ab", "a", "b")
    graph.add_channel("ba", "b", "a", tokens=1)
    return graph


class TestConstrainedThroughput:
    def test_full_slice_matches_serial_execution(self, two_actor_pipeline):
        tiles = [
            TileConstraints(
                "t", 10, 10, StaticOrderSchedule(periodic=("a", "b"))
            )
        ]
        result = constrained_throughput(two_actor_pipeline, tiles)
        # strict alternation: one firing of each per 5 time units
        assert result.of("a") == Fraction(1, 5)
        assert result.of("b") == Fraction(1, 5)

    def test_half_slice_halves_throughput_at_most(self, two_actor_pipeline):
        tiles = [
            TileConstraints(
                "t", 10, 5, StaticOrderSchedule(periodic=("a", "b"))
            )
        ]
        result = constrained_throughput(two_actor_pipeline, tiles)
        assert Fraction(1, 10) <= result.of("a") <= Fraction(1, 5)

    def test_zero_slice_deadlocks(self, two_actor_pipeline):
        tiles = [
            TileConstraints(
                "t", 10, 0, StaticOrderSchedule(periodic=("a", "b"))
            )
        ]
        result = constrained_throughput(two_actor_pipeline, tiles)
        assert result.deadlocked
        assert result.of("a") == 0

    def test_bad_schedule_order_deadlocks(self, two_actor_pipeline):
        # b first but ab carries no tokens: nothing can ever fire
        tiles = [
            TileConstraints(
                "t", 10, 10, StaticOrderSchedule(periodic=("b", "a"))
            )
        ]
        result = constrained_throughput(two_actor_pipeline, tiles)
        assert result.deadlocked

    def test_unscheduled_actors_run_free(self):
        graph = SDFGraph("mixed")
        graph.add_actor("a", 2)
        graph.add_actor("c", 7)  # models a connection actor
        graph.add_channel("self:a", "a", "a", tokens=1)
        graph.add_channel("self:c", "c", "c", tokens=1)
        graph.add_channel("ac", "a", "c")
        graph.add_channel("ca", "c", "a", tokens=1)
        tiles = [
            TileConstraints("t", 10, 10, StaticOrderSchedule(periodic=("a",)))
        ]
        result = constrained_throughput(graph, tiles)
        assert result.of("c") == Fraction(1, 9)

    def test_schedule_with_unknown_actor_rejected(self, two_actor_pipeline):
        tiles = [
            TileConstraints(
                "t", 10, 5, StaticOrderSchedule(periodic=("ghost",))
            )
        ]
        with pytest.raises(KeyError):
            constrained_throughput(two_actor_pipeline, tiles)

    def test_actor_on_two_tiles_rejected(self, two_actor_pipeline):
        tiles = [
            TileConstraints("t1", 10, 5, StaticOrderSchedule(periodic=("a",))),
            TileConstraints("t2", 10, 5, StaticOrderSchedule(periodic=("a",))),
        ]
        with pytest.raises(ValueError):
            constrained_throughput(two_actor_pipeline, tiles)

    def test_transient_schedule_prefix_respected(self):
        # schedule a (a b)*: the transient extra 'a' needs 2 slots of
        # buffer space on the back edge
        graph = SDFGraph("pipe2")
        graph.add_actor("a", 2)
        graph.add_actor("b", 3)
        graph.add_channel("self:a", "a", "a", tokens=1)
        graph.add_channel("self:b", "b", "b", tokens=1)
        graph.add_channel("ab", "a", "b")
        graph.add_channel("ba", "b", "a", tokens=2)
        tiles = [
            TileConstraints(
                "t",
                10,
                10,
                StaticOrderSchedule(periodic=("a", "b"), transient=("a",)),
            )
        ]
        result = constrained_throughput(graph, tiles)
        assert not result.deadlocked
        # steady state is still strict alternation: 1 firing per 5 units
        assert result.of("b") == Fraction(1, 5)

    def test_insufficient_buffer_for_transient_deadlocks(self, two_actor_pipeline):
        tiles = [
            TileConstraints(
                "t",
                10,
                10,
                StaticOrderSchedule(periodic=("a", "b"), transient=("a",)),
            )
        ]
        result = constrained_throughput(two_actor_pipeline, tiles)
        assert result.deadlocked

    def test_tile_constraint_validation(self):
        with pytest.raises(ValueError):
            TileConstraints("t", 0, 0, StaticOrderSchedule(periodic=("a",)))
        with pytest.raises(ValueError):
            TileConstraints("t", 10, 11, StaticOrderSchedule(periodic=("a",)))

    def test_two_tiles_interleave(self):
        graph = SDFGraph("two-tiles")
        graph.add_actor("a", 1)
        graph.add_actor("b", 1)
        graph.add_channel("self:a", "a", "a", tokens=1)
        graph.add_channel("self:b", "b", "b", tokens=1)
        graph.add_channel("ab", "a", "b")
        graph.add_channel("ba", "b", "a", tokens=1)
        tiles = [
            TileConstraints("t1", 4, 2, StaticOrderSchedule(periodic=("a",))),
            TileConstraints("t2", 4, 2, StaticOrderSchedule(periodic=("b",))),
        ]
        result = constrained_throughput(graph, tiles)
        assert not result.deadlocked
        # serial dependency + 50% wheels: between 1/8 and 1/2
        assert Fraction(1, 8) <= result.of("b") <= Fraction(1, 2)
