"""Shared fixtures for the allocation-service test files.

Requests come in two sizes: the paper's running example (fast — the
engine finishes in milliseconds) and an H.263 decoder scaled up via its
macroblock count (slow — a second or more of real search, wide enough
to drain or SIGKILL mid-exploration deterministically).
"""

import copy
import random

from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
)
from repro.appmodel.serialization import application_to_dict
from repro.arch.architecture import ArchitectureGraph
from repro.arch.serialization import architecture_to_dict
from repro.arch.tile import ProcessorType, Tile
from repro.generate.multimedia import h263_decoder


def fast_request():
    """(application, architecture) dicts that allocate in milliseconds."""
    return (
        application_to_dict(paper_example_application()),
        architecture_to_dict(paper_example_architecture()),
    )


def h263_architecture(memory=800_000):
    architecture = ArchitectureGraph("svc-arch")
    generic = ProcessorType("generic")
    accelerator = ProcessorType("accelerator")
    architecture.add_tile(
        Tile("t1", generic, 100, memory, 8, 100_000, 100_000)
    )
    architecture.add_tile(
        Tile("t2", accelerator, 100, memory, 8, 100_000, 100_000)
    )
    architecture.add_connection("t1", "t2")
    architecture.add_connection("t2", "t1")
    return architecture


def slow_request(macroblocks=320):
    """A request whose exact-rung search takes on the order of seconds."""
    return (
        application_to_dict(h263_decoder(macroblocks=macroblocks)),
        architecture_to_dict(h263_architecture()),
    )


def rename_isomorphic(application, seed=0, prefix="iso"):
    """A consistently renamed application dict (same canonical form)."""
    rng = random.Random(seed)
    actors = [a["name"] for a in application["graph"]["actors"]]
    channels = [c["name"] for c in application["graph"]["channels"]]
    rng.shuffle(actors)
    rng.shuffle(channels)
    actor_map = {name: f"{prefix}_a{i}" for i, name in enumerate(actors)}
    channel_map = {
        name: f"{prefix}_c{i}" for i, name in enumerate(channels)
    }
    renamed = copy.deepcopy(application)
    renamed["name"] = f"{prefix}-{application['name']}"
    renamed["graph"]["actors"] = [
        {**a, "name": actor_map[a["name"]]}
        for a in application["graph"]["actors"]
    ]
    renamed["graph"]["channels"] = [
        {
            **c,
            "name": channel_map[c["name"]],
            "src": actor_map[c["src"]],
            "dst": actor_map[c["dst"]],
        }
        for c in application["graph"]["channels"]
    ]
    renamed["actors"] = {
        actor_map[k]: v for k, v in application["actors"].items()
    }
    renamed["channels"] = {
        channel_map[k]: v
        for k, v in application.get("channels", {}).items()
    }
    renamed["output_actor"] = actor_map[application["output_actor"]]
    return renamed
