"""Unit tests for maximum-cycle-ratio analysis and the reference path."""

from fractions import Fraction

import pytest

from repro.sdf.graph import SDFGraph, chain
from repro.sdf.transform import sdf_to_hsdf
from repro.throughput.mcr import (
    hsdf_iteration_rate,
    max_cycle_ratio_exact,
    max_cycle_ratio_numeric,
)
from repro.throughput.reference import reference_throughput
from repro.throughput.state_space import throughput


class TestExactMCR:
    def test_simple_cycle(self, simple_cycle_graph):
        assert max_cycle_ratio_exact(simple_cycle_graph) == Fraction(5, 2)

    def test_acyclic_none(self):
        assert max_cycle_ratio_exact(chain(["a", "b"])) is None

    def test_token_free_cycle_infinite(self):
        graph = SDFGraph()
        graph.add_actor("a", 1)
        graph.add_actor("b", 1)
        graph.add_channel("ab", "a", "b")
        graph.add_channel("ba", "b", "a")
        assert max_cycle_ratio_exact(graph) == float("inf")


class TestNumericMCR:
    def test_agrees_with_exact_on_cycle(self, simple_cycle_graph):
        assert max_cycle_ratio_numeric(simple_cycle_graph) == Fraction(5, 2)

    def test_acyclic_none(self):
        assert max_cycle_ratio_numeric(chain(["a", "b", "c"])) is None

    def test_token_free_cycle_infinite(self):
        graph = SDFGraph()
        graph.add_actor("a", 1)
        graph.add_actor("b", 1)
        graph.add_channel("ab", "a", "b")
        graph.add_channel("ba", "b", "a")
        assert max_cycle_ratio_numeric(graph) == float("inf")

    def test_picks_dominant_cycle(self):
        graph = SDFGraph()
        graph.add_actor("a", 1)
        graph.add_actor("b", 2)
        graph.add_actor("c", 30)
        graph.add_channel("ab", "a", "b")
        graph.add_channel("ba", "b", "a", tokens=1)
        graph.add_channel("ac", "a", "c")
        graph.add_channel("ca", "c", "a", tokens=4)
        exact = max_cycle_ratio_exact(graph)
        numeric = max_cycle_ratio_numeric(graph)
        assert exact == numeric == Fraction(31, 4)

    def test_agrees_with_exact_on_hsdf_expansions(self, multirate_graph):
        hsdf = sdf_to_hsdf(multirate_graph)
        assert max_cycle_ratio_exact(hsdf) == max_cycle_ratio_numeric(hsdf)

    def test_moderate_hsdf_scale(self):
        graph = SDFGraph()
        graph.add_actor("src", 3)
        graph.add_actor("mid", 2)
        graph.add_actor("dst", 5)
        graph.add_channel("d1", "src", "mid", 40, 1)
        graph.add_channel("d2", "mid", "dst", 1, 40)
        graph.add_channel("fb", "dst", "src", 1, 1, 1)
        hsdf = sdf_to_hsdf(graph)
        assert len(hsdf) == 42
        ratio = max_cycle_ratio_numeric(hsdf)
        # the 40 'mid' copies run concurrently, so the critical cycle is
        # src + one mid + dst over the single feedback token
        assert ratio == Fraction(10)
        # and the state-space engine agrees
        assert throughput(graph).iteration_rate == Fraction(1, 10)


class TestHsdfIterationRate:
    def test_reciprocal_of_mcr(self, simple_cycle_graph):
        assert hsdf_iteration_rate(simple_cycle_graph) == Fraction(2, 5)

    def test_acyclic_unbounded(self):
        assert hsdf_iteration_rate(chain(["a", "b"])) == float("inf")

    def test_deadlock_zero(self):
        graph = SDFGraph()
        graph.add_actor("a", 1)
        graph.add_actor("b", 1)
        graph.add_channel("ab", "a", "b")
        graph.add_channel("ba", "b", "a")
        assert hsdf_iteration_rate(graph) == 0


class TestReferencePath:
    def test_matches_state_space_multirate(self, multirate_graph):
        direct = throughput(multirate_graph).iteration_rate
        assert reference_throughput(multirate_graph) == direct

    def test_matches_state_space_chain(self, chain_graph):
        direct = throughput(chain_graph).iteration_rate
        assert reference_throughput(chain_graph) == direct

    def test_numeric_backend(self, multirate_graph):
        assert reference_throughput(multirate_graph, exact=False) == Fraction(
            1, 5
        )

    def test_execution_time_override_does_not_mutate(self, multirate_graph):
        reference_throughput(multirate_graph, execution_times={"a": 9, "b": 9})
        assert multirate_graph.actor("a").execution_time == 2

    def test_override_changes_result(self, simple_cycle_graph):
        slow = reference_throughput(
            simple_cycle_graph, execution_times={"a": 20, "b": 30}
        )
        assert slow == Fraction(2, 50)


class TestResultObjects:
    def test_execution_result_deadlocked_throughput_zero(self):
        from repro.throughput.state_space import ExecutionResult

        result = ExecutionResult(
            transient_time=5,
            period=None,
            period_firings={},
            states_explored=3,
            deadlocked=True,
        )
        assert result.actor_throughput("x") == 0

    def test_execution_result_throughput(self):
        from repro.throughput.state_space import ExecutionResult

        result = ExecutionResult(
            transient_time=0,
            period=10,
            period_firings={"a": 4},
            states_explored=7,
        )
        assert result.actor_throughput("a") == Fraction(4, 10)
        assert result.actor_throughput("missing") == 0

    def test_throughput_result_of_unbounded(self):
        from repro.throughput.state_space import ThroughputResult

        result = ThroughputResult(
            iteration_rate=float("inf"), gamma={"a": 3}
        )
        assert result.of("a") == float("inf")
        assert not result.deadlocked


class TestNumericEdgeCases:
    def test_empty_graph_none(self):
        graph = SDFGraph("empty-ish")
        graph.add_actor("a", 1)
        assert max_cycle_ratio_numeric(graph) is None

    def test_zero_execution_time_cycle(self):
        # cycle with total time 0: ratio 0 -> unbounded rate
        graph = SDFGraph("zt")
        graph.add_actor("a", 0)
        graph.add_channel("s", "a", "a", tokens=1)
        assert max_cycle_ratio_numeric(graph) == 0
        assert hsdf_iteration_rate(graph, exact=False) == float("inf")

    def test_large_denominator_snapped_exactly(self):
        # ratio 97/89 with coprime large-ish numbers survives the float
        # search and the rational snap
        graph = SDFGraph("frac")
        graph.add_actor("a", 97)
        graph.add_channel("s", "a", "a", tokens=89)
        assert max_cycle_ratio_numeric(graph) == Fraction(97, 89)
