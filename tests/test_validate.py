"""Unit tests for graph validation."""

import pytest

from repro.sdf.graph import SDFGraph, chain
from repro.sdf.validate import ValidationError, validate_graph, validation_problems


def test_valid_graph_passes(chain_graph):
    validate_graph(chain_graph)  # must not raise
    assert validation_problems(chain_graph) == []


def test_empty_graph_rejected():
    problems = validation_problems(SDFGraph())
    assert problems == ["graph has no actors"]
    with pytest.raises(ValidationError):
        validate_graph(SDFGraph())


def test_inconsistent_graph_reported():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_channel("d1", "a", "b", 1, 1)
    graph.add_channel("d2", "b", "a", 2, 1)
    problems = validation_problems(graph)
    assert any("inconsistent" in p for p in problems)


def test_deadlock_reported():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_channel("d1", "a", "b")
    graph.add_channel("d2", "b", "a")
    problems = validation_problems(graph)
    assert any("deadlock" in p for p in problems)


def test_deadlock_check_optional():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_channel("d1", "a", "b")
    graph.add_channel("d2", "b", "a")
    assert validation_problems(graph, require_deadlock_free=False) == []


def test_disconnected_graph_reported():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    problems = validation_problems(graph)
    assert any("connected" in p for p in problems)


def test_connectivity_check_optional():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    assert validation_problems(graph, require_connected=False) == []


def test_multiple_problems_collected():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_actor("c")
    graph.add_channel("d1", "a", "b")
    graph.add_channel("d2", "b", "a")
    problems = validation_problems(graph)
    assert len(problems) >= 2  # deadlock + disconnected 'c'


def test_error_carries_problem_list():
    try:
        validate_graph(SDFGraph())
    except ValidationError as error:
        assert error.problems == ["graph has no actors"]
    else:
        pytest.fail("expected ValidationError")


def test_valid_multirate_graph(multirate_graph):
    validate_graph(multirate_graph)
