"""Unit tests for cycle enumeration and cycle ratios."""

from fractions import Fraction

import pytest

from repro.sdf.cycles import (
    cycle_ratio,
    max_cycle_ratio,
    per_actor_max_cycle_ratio,
    simple_cycles,
)
from repro.sdf.graph import SDFGraph, chain


@pytest.fixture
def two_cycle_graph():
    """Two nested cycles: a-b (2 tokens) and a-b-c (1 token)."""
    graph = SDFGraph()
    graph.add_actor("a", 1)
    graph.add_actor("b", 2)
    graph.add_actor("c", 3)
    graph.add_channel("ab", "a", "b")
    graph.add_channel("ba", "b", "a", tokens=2)
    graph.add_channel("bc", "b", "c")
    graph.add_channel("ca", "c", "a", tokens=1)
    return graph


def test_simple_cycles_found(two_cycle_graph):
    cycles = {frozenset(c) for c in simple_cycles(two_cycle_graph)}
    assert frozenset({"a", "b"}) in cycles
    assert frozenset({"a", "b", "c"}) in cycles
    assert len(cycles) == 2


def test_self_loop_is_a_cycle():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_channel("s", "a", "a", tokens=1)
    assert simple_cycles(graph) == [["a"]]


def test_acyclic_graph_has_no_cycles():
    assert simple_cycles(chain(["a", "b", "c"])) == []


def test_limit_caps_enumeration(two_cycle_graph):
    assert len(simple_cycles(two_cycle_graph, limit=1)) == 1


def test_cycle_ratio_exact_fraction(two_cycle_graph):
    weights = {"a": 1, "b": 2, "c": 3}
    short = next(
        c for c in simple_cycles(two_cycle_graph) if len(c) == 2
    )
    assert cycle_ratio(two_cycle_graph, short, weights) == Fraction(3, 2)
    long = next(c for c in simple_cycles(two_cycle_graph) if len(c) == 3)
    assert cycle_ratio(two_cycle_graph, long, weights) == Fraction(6, 1)


def test_token_free_cycle_is_infinite():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_channel("ab", "a", "b")
    graph.add_channel("ba", "b", "a")
    (cycle,) = simple_cycles(graph)
    assert cycle_ratio(graph, cycle, {"a": 1, "b": 1}) == float("inf")


def test_parallel_channels_pick_min_denominator():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_channel("ab", "a", "b")
    graph.add_channel("ba1", "b", "a", tokens=5)
    graph.add_channel("ba2", "b", "a", tokens=2)
    (cycle,) = simple_cycles(graph)
    # the tighter back channel (2 tokens) is the binding constraint
    assert cycle_ratio(graph, cycle, {"a": 1, "b": 1}) == Fraction(2, 2)


def test_consumption_rate_scales_denominator():
    graph = SDFGraph()
    graph.add_actor("a")
    graph.add_channel("s", "a", "a", 2, 2, 4)
    (cycle,) = simple_cycles(graph)
    # Tok/q = 4/2 = 2
    assert cycle_ratio(graph, cycle, {"a": 6}) == Fraction(3)


def test_per_actor_max_cycle_ratio(two_cycle_graph):
    weights = {"a": 1, "b": 2, "c": 3}
    ratios = per_actor_max_cycle_ratio(two_cycle_graph, weights)
    assert ratios["c"] == Fraction(6)
    assert ratios["a"] == Fraction(6)  # on both cycles, max wins
    assert ratios["b"] == Fraction(6)


def test_per_actor_skips_acyclic_actors():
    graph = chain(["a", "b"])
    graph.add_channel("s", "a", "a", tokens=1)
    ratios = per_actor_max_cycle_ratio(graph, {"a": 5, "b": 7})
    assert "b" not in ratios
    assert ratios["a"] == Fraction(5)


def test_max_cycle_ratio_default_weights(simple_cycle_graph):
    # execution times 2 + 3 over 2 tokens
    assert max_cycle_ratio(simple_cycle_graph) == Fraction(5, 2)


def test_max_cycle_ratio_none_when_acyclic():
    assert max_cycle_ratio(chain(["a", "b"])) is None
