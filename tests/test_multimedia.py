"""Unit tests for the H.263 and MP3 application models (paper §10.3)."""

import pytest

from repro.generate.multimedia import h263_decoder, mp3_decoder
from repro.sdf.repetition import iteration_length, repetition_vector
from repro.sdf.validate import validate_graph


class TestH263:
    def test_hsdf_size_matches_paper(self):
        app = h263_decoder()
        assert iteration_length(app.graph) == 4754

    def test_repetition_vector(self):
        app = h263_decoder()
        gamma = repetition_vector(app.graph)
        assert gamma == {"vld": 1, "iq": 2376, "idct": 2376, "mc": 1}

    def test_graph_is_valid(self):
        validate_graph(h263_decoder().graph)

    def test_scalable_macroblocks(self):
        app = h263_decoder(macroblocks=10)
        assert iteration_length(app.graph) == 22

    def test_requirements_complete(self):
        h263_decoder().check_complete()

    def test_kernels_support_accelerator(self):
        from repro.arch.tile import ProcessorType

        accelerator = ProcessorType("accelerator")
        app = h263_decoder()
        assert app.requirements("iq").supports(accelerator)
        assert app.requirements("idct").supports(accelerator)
        assert not app.requirements("vld").supports(accelerator)

    def test_constraint_feasible_standalone(self):
        from repro.throughput.state_space import throughput

        app = h263_decoder(macroblocks=20)
        worst = {
            name: requirements.worst_case_execution_time
            for name, requirements in app.actor_requirements.items()
        }
        ideal = throughput(
            app.graph, execution_times=worst, auto_concurrency=False
        ).of(app.output_actor)
        assert app.throughput_constraint <= ideal

    def test_output_actor_is_mc(self):
        assert h263_decoder().output_actor == "mc"


class TestMP3:
    def test_thirteen_single_rate_actors(self):
        app = mp3_decoder()
        assert len(app.graph) == 13
        gamma = repetition_vector(app.graph)
        assert set(gamma.values()) == {1}

    def test_paper_system_hsdf_total(self):
        total = 3 * iteration_length(h263_decoder().graph) + iteration_length(
            mp3_decoder().graph
        )
        assert total == 14275

    def test_graph_is_valid(self):
        validate_graph(mp3_decoder().graph)

    def test_requirements_complete(self):
        mp3_decoder().check_complete()

    def test_feedback_allows_pipelining(self):
        app = mp3_decoder()
        feedback = app.graph.channel("synth-huffman")
        assert feedback.tokens == 2

    def test_stereo_join_structure(self):
        app = mp3_decoder()
        assert set(app.graph.predecessors("stereo")) == {
            "reorder_l",
            "reorder_r",
        }
        assert set(app.graph.predecessors("synth")) == {
            "freqinv_l",
            "freqinv_r",
        }
