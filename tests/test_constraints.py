"""Unit tests for the Section 7 constraint checks and reservations."""

import pytest

from repro.appmodel.binding import Binding
from repro.core.constraints import (
    binding_violations,
    check_binding_constraints,
    reservation_for,
)


def test_section8_binding_is_feasible(
    example_application, example_architecture, example_binding
):
    assert check_binding_constraints(
        example_application, example_architecture, example_binding
    )
    assert (
        binding_violations(
            example_application, example_architecture, example_binding
        )
        == []
    )


def test_memory_violation_detected(
    example_application, example_architecture, example_binding
):
    example_architecture.tile("t1").memory_occupied = 600  # 100 left < 225
    violations = binding_violations(
        example_application, example_architecture, example_binding
    )
    assert any(v.constraint == "memory" for v in violations)


def test_connection_violation_detected(
    example_application, example_architecture, example_binding
):
    example_architecture.tile("t1").connections_occupied = 5
    violations = binding_violations(
        example_application, example_architecture, example_binding
    )
    assert any(v.constraint == "connections" for v in violations)


def test_bandwidth_violations_detected(
    example_application, example_architecture, example_binding
):
    example_architecture.tile("t1").bandwidth_out_occupied = 95  # 5 < 10
    example_architecture.tile("t2").bandwidth_in_occupied = 95
    violations = binding_violations(
        example_application, example_architecture, example_binding
    )
    kinds = {v.constraint for v in violations}
    assert "output-bandwidth" in kinds
    assert "input-bandwidth" in kinds


def test_full_wheel_violation_detected(
    example_application, example_architecture, example_binding
):
    example_architecture.tile("t2").wheel_occupied = 10
    violations = binding_violations(
        example_application, example_architecture, example_binding
    )
    assert any(v.constraint == "time-slice" for v in violations)


def test_missing_connection_reported(
    example_application, example_architecture
):
    binding = Binding()
    binding.bind("a1", "t2")
    binding.bind("a2", "t1")  # d1 crosses t2 -> t1 (link exists)
    binding.bind("a3", "t2")  # d2 crosses t1 -> t2 (link exists)
    assert check_binding_constraints(
        example_application, example_architecture, binding
    )
    # now make d1 uncrossable
    example_application.set_channel_requirements(
        "d1", token_size=7, bandwidth=0
    )
    violations = binding_violations(
        example_application, example_architecture, binding
    )
    assert any(v.constraint == "connection-missing" for v in violations)


def test_violation_str_mentions_tile():
    from repro.core.constraints import ConstraintViolation

    text = str(ConstraintViolation("t1", "memory", 10, 5))
    assert "t1" in text and "memory" in text


def test_reservation_matches_section7_accounting(
    example_application, example_architecture, example_binding
):
    reservation = reservation_for(
        example_application,
        example_architecture,
        example_binding,
        slices={"t1": 4, "t2": 6},
    )
    t1 = reservation.tiles["t1"]
    assert t1.memory == 225
    assert t1.connections == 1
    assert t1.bandwidth_out == 10
    assert t1.bandwidth_in == 0
    assert t1.time_slice == 4
    t2 = reservation.tiles["t2"]
    assert t2.memory == 210
    assert t2.bandwidth_in == 10
    assert t2.time_slice == 6


def test_reservation_without_slices(
    example_application, example_architecture, example_binding
):
    reservation = reservation_for(
        example_application, example_architecture, example_binding
    )
    assert reservation.tiles["t1"].time_slice == 0


def test_reservation_commit_roundtrip(
    example_application, example_architecture, example_binding
):
    reservation = reservation_for(
        example_application,
        example_architecture,
        example_binding,
        slices={"t1": 4, "t2": 6},
    )
    reservation.commit(example_architecture)
    assert example_architecture.tile("t1").memory_occupied == 225
    reservation.rollback(example_architecture)
    assert example_architecture.tile("t1").memory_occupied == 0
