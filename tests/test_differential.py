"""Differential test harness: state-space engine vs. the HSDF MCR oracles.

For seeded random consistent, live SDFGs the self-timed state-space
iteration rate must equal the reciprocal maximum cycle ratio of the
SDF→HSDF unfolding, computed by all three independent oracles: simple
cycle enumeration, the parametric Lawler search and Howard policy
iteration.  Everything is compared in exact ``Fraction`` arithmetic.

The heavy configuration (more actors, larger repetition vectors, denser
extra channels) drives cycle enumeration into its exponential regime —
those cases carry ``@pytest.mark.slow`` and are excluded from
``make test-fast``.
"""

from fractions import Fraction
from random import Random

import pytest

from repro.generate.random_sdf import RandomSDFParameters, random_sdfg
from repro.sdf.transform import sdf_to_hsdf
from repro.throughput.howard import howard_max_cycle_ratio
from repro.throughput.mcr import (
    max_cycle_ratio_exact,
    max_cycle_ratio_numeric,
)
from repro.throughput.state_space import throughput

#: small graphs: exhaustively comparable in milliseconds
FAST_PARAMETERS = RandomSDFParameters(
    actors_min=3, actors_max=6, repetition_max=3
)
#: the heavy regime: HSDF unfoldings of 30-60 actors whose cycle count
#: can explode (the paper's argument against the SDF→HSDF+MCM path)
HEAVY_PARAMETERS = RandomSDFParameters(
    actors_min=12,
    actors_max=16,
    repetition_max=6,
    extra_channel_fraction=1.0,
)

FAST_SEEDS = list(range(40))
HEAVY_SEEDS = list(range(40, 50))


def _rate_from_ratio(ratio):
    """Iteration rate from a maximum cycle ratio (engine conventions)."""
    if ratio is None:  # acyclic: nothing constrains the rate
        return float("inf")
    if ratio == float("inf"):  # token-free cycle: deadlock
        return Fraction(0)
    if ratio == 0:
        return float("inf")
    return 1 / ratio


def _assert_oracles_agree(graph, enumeration_limit):
    state_space_rate = throughput(graph).iteration_rate
    hsdf = sdf_to_hsdf(graph)

    enumerated = _rate_from_ratio(
        max_cycle_ratio_exact(hsdf, limit=enumeration_limit)
    )
    lawler = _rate_from_ratio(max_cycle_ratio_numeric(hsdf))
    howard = _rate_from_ratio(howard_max_cycle_ratio(hsdf))

    assert state_space_rate == enumerated, (
        f"state space {state_space_rate} != cycle enumeration {enumerated}"
    )
    assert state_space_rate == howard, (
        f"state space {state_space_rate} != Howard {howard}"
    )
    assert state_space_rate == lawler, (
        f"state space {state_space_rate} != Lawler {lawler}"
    )
    # rates are exact rationals (or the inf/0 sentinels), never floats
    # from an unsnapped numeric search
    if state_space_rate != float("inf"):
        assert isinstance(state_space_rate, Fraction)
        assert isinstance(lawler, Fraction)


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_state_space_matches_hsdf_oracles(seed):
    graph = random_sdfg(FAST_PARAMETERS, Random(seed), name=f"diff-{seed}")
    _assert_oracles_agree(graph, enumeration_limit=100_000)


@pytest.mark.slow
@pytest.mark.parametrize("seed", HEAVY_SEEDS)
def test_state_space_matches_hsdf_oracles_heavy(seed):
    graph = random_sdfg(
        HEAVY_PARAMETERS, Random(seed), name=f"diff-heavy-{seed}"
    )
    _assert_oracles_agree(graph, enumeration_limit=500_000)


def test_differential_graphs_are_deterministic():
    """The harness re-draws identical graphs for identical seeds."""
    first = random_sdfg(FAST_PARAMETERS, Random(7), name="a")
    second = random_sdfg(FAST_PARAMETERS, Random(7), name="a")
    assert [a.name for a in first.actors] == [a.name for a in second.actors]
    assert [
        (c.name, c.src, c.dst, c.production, c.consumption, c.tokens)
        for c in first.channels
    ] == [
        (c.name, c.src, c.dst, c.production, c.consumption, c.tokens)
        for c in second.channels
    ]
