"""Unit tests for benchmark set generation."""

from fractions import Fraction

import pytest

from repro.arch.presets import benchmark_architectures
from repro.arch.tile import ProcessorType
from repro.generate.benchmark import (
    SET_PROFILES,
    generate_application,
    generate_benchmark_set,
)
from repro.throughput.state_space import throughput

TYPES = benchmark_architectures()[0].processor_types()


def test_profiles_cover_three_pure_sets():
    assert set(SET_PROFILES) == {"processing", "memory", "communication"}


@pytest.mark.parametrize("set_name", ["processing", "memory", "communication", "mixed"])
def test_generated_sets_are_wellformed(set_name):
    apps = generate_benchmark_set(set_name, 5, TYPES, seed=3)
    assert len(apps) == 5
    for app in apps:
        app.check_complete()  # every actor supports some processor
        assert app.throughput_constraint > 0
        for channel in app.graph.channels:
            theta = app.channel(channel.name)
            assert theta.buffer_tile >= channel.tokens
            if channel.is_self_loop:
                assert theta.bandwidth == 0


def test_sequences_reproducible():
    first = generate_benchmark_set("mixed", 4, TYPES, seed=9)
    second = generate_benchmark_set("mixed", 4, TYPES, seed=9)
    for left, right in zip(first, second):
        assert left.graph.actor_names == right.graph.actor_names
        assert left.throughput_constraint == right.throughput_constraint


def test_sequences_differ_across_seeds():
    first = generate_benchmark_set("mixed", 4, TYPES, seed=1)
    second = generate_benchmark_set("mixed", 4, TYPES, seed=2)
    assert any(
        l.throughput_constraint != r.throughput_constraint
        for l, r in zip(first, second)
    )


def test_unknown_set_rejected():
    with pytest.raises(KeyError, match="unknown benchmark set"):
        generate_benchmark_set("bogus", 1, TYPES)


def test_profile_pressure_differs():
    processing = generate_benchmark_set("processing", 5, TYPES, seed=0)
    memory = generate_benchmark_set("memory", 5, TYPES, seed=0)

    def average_memory(apps):
        total = 0
        count = 0
        for app in apps:
            for requirements in app.actor_requirements.values():
                for _, mu in requirements.options.values():
                    total += mu
                    count += 1
        return total / count

    assert average_memory(memory) > 50 * average_memory(processing)


def test_constraint_is_fraction_of_ideal():
    apps = generate_benchmark_set("processing", 3, TYPES, seed=5)
    for app in apps:
        worst = {
            name: requirements.worst_case_execution_time
            for name, requirements in app.actor_requirements.items()
        }
        ideal = throughput(
            app.graph, execution_times=worst, auto_concurrency=False
        ).of(app.output_actor)
        assert 0 < app.throughput_constraint <= ideal


def test_applications_are_allocatable():
    from repro.core.strategy import ResourceAllocator
    from repro.core.tile_cost import CostWeights

    arch = benchmark_architectures()[2]  # largest variant
    apps = generate_benchmark_set("processing", 2, arch.processor_types(), seed=4)
    allocator = ResourceAllocator(weights=CostWeights(0, 1, 2))
    for app in apps:
        allocation = allocator.allocate(app, arch)
        assert allocation.satisfied
        allocation.reservation.commit(arch)
