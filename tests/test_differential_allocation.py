"""Differential harness: greedy allocation vs. the exact backend.

The allocation-level counterpart of ``tests/test_differential.py``:
for seeded small applications (<= 5 actors on <= 3 tiles) the greedy
three-step strategy and the :mod:`repro.exact` branch-and-bound search
must agree on *feasibility*, and whenever both allocate, the exact
cost must lower-bound the greedy cost under the shared objective
(:func:`repro.exact.cost.allocation_cost`, same weights, same
architecture state).  Every exact allocation's certificate must replay
as ``certified`` by :mod:`repro.verify` after a JSON round trip — the
exact backend earns no trust the greedy path does not.

The sound invariant is one-directional.  Exact's slice grid with
``slice_step=1`` dominates everything the greedy search can return, so

* greedy feasible but exact infeasible is a soundness bug (the search
  pruned a feasible region, or its leaf evaluation diverges from the
  strategy's) and fails the suite everywhere;
* exact cost above greedy is a missed optimum and fails everywhere;
* exact feasible but greedy infeasible is the greedy heuristic's
  *incompleteness*: it commits to one binding and gives up when that
  binding cannot reach the constraint, even though another binding
  could.  On the main corpus this never happens (asserted — verdicts
  are identical on all 40 seeds); the ``tight`` group, whose
  constraints sit near the static bound, deliberately contains such
  cases and pins them as evidence of the gap the exact backend closes.

The heavy group (more actors and repetitions, larger wheels) carries
``@slow``.
"""

from fractions import Fraction
from random import Random

import json
import pytest

from repro.appmodel.serialization import bundle_to_dict
from repro.arch.presets import mesh_architecture
from repro.arch.tile import ProcessorType
from repro.core.strategy import AllocationError, ResourceAllocator
from repro.core.tile_cost import CostWeights
from repro.exact import allocation_cost, exact_search
from repro.generate.benchmark import BenchmarkSetProfile, generate_application
from repro.generate.random_sdf import RandomSDFParameters
from repro.verify import VERDICT_CERTIFIED, certify_allocation

pytestmark = pytest.mark.exact

WEIGHTS = CostWeights.default()

SMALL_PROFILE = BenchmarkSetProfile(
    name="alloc-diff",
    structure=RandomSDFParameters(
        actors_min=2,
        actors_max=5,
        repetition_max=2,
        extra_channel_fraction=0.3,
    ),
    execution_time=(1, 3),
    actor_memory=(5, 20),
    token_size=(1, 3),
    buffer_tokens=(1, 2),
    bandwidth=(8, 40),
    constraint_percent=(5, 25),
)

#: constraints close to the ideal rate: a share of these cases is
#: infeasible on the small platform, exercising verdict agreement
TIGHT_PROFILE = BenchmarkSetProfile(
    name="alloc-diff-tight",
    structure=SMALL_PROFILE.structure,
    execution_time=(1, 3),
    actor_memory=(5, 20),
    token_size=(1, 3),
    buffer_tokens=(1, 2),
    bandwidth=(8, 40),
    constraint_percent=(60, 95),
)

HEAVY_PROFILE = BenchmarkSetProfile(
    name="alloc-diff-heavy",
    structure=RandomSDFParameters(
        actors_min=4,
        actors_max=5,
        repetition_max=3,
        extra_channel_fraction=0.5,
    ),
    execution_time=(1, 4),
    actor_memory=(5, 20),
    token_size=(1, 3),
    buffer_tokens=(1, 2),
    bandwidth=(8, 40),
    constraint_percent=(5, 25),
)

TYPES = [ProcessorType("p1"), ProcessorType("p2")]

FAST_SEEDS = list(range(40))
TIGHT_SEEDS = list(range(100, 112))
HEAVY_SEEDS = list(range(200, 210))


def _architecture(seed, wheel=8):
    """A 1x2 or 1x3 mesh; small wheels keep the slice grid tractable."""
    return mesh_architecture(
        1,
        2 + seed % 2,
        TYPES,
        wheel=wheel,
        memory=4_000,
        max_connections=16,
        bandwidth_in=2_000,
        bandwidth_out=2_000,
    )


def _application(profile, seed):
    return generate_application(
        profile, TYPES, Random(seed), name=f"{profile.name}-{seed}"
    )


def _greedy(application, architecture):
    try:
        return ResourceAllocator(weights=WEIGHTS).allocate(
            application, architecture
        )
    except AllocationError:
        return None


def _assert_certified(architecture, allocation):
    """The certificate must replay as certified after a JSON round trip."""
    bundle = json.loads(
        json.dumps(bundle_to_dict(architecture, [allocation]))
    )
    report = certify_allocation(bundle)
    assert report.certified, report.summary()
    assert report.verdicts[0].verdict == VERDICT_CERTIFIED


def _compare(profile, seed, wheel=8, strict_verdicts=True):
    """Run both backends; return (greedy_feasible, exact_feasible)."""
    application = _application(profile, seed)
    greedy = _greedy(application, _architecture(seed, wheel))

    architecture = _architecture(seed, wheel)
    exact = exact_search(application, architecture, weights=WEIGHTS)

    if greedy is not None:
        # the soundness direction: exact may never reject what greedy
        # allocates (its search space is a superset)
        assert exact.feasible, (
            f"soundness bug on {application.name}: greedy allocated "
            "but the exact search claims infeasibility"
        )
    if strict_verdicts:
        assert (greedy is not None) == exact.feasible, (
            f"feasibility disagreement on {application.name}: "
            f"greedy={'feasible' if greedy else 'infeasible'}, "
            f"exact={'feasible' if exact.feasible else 'infeasible'}"
        )
    if not exact.feasible:
        return (greedy is not None, False)

    assert exact.allocation.satisfied
    _assert_certified(architecture, exact.allocation)
    if greedy is None:
        return (False, True)
    exact_cost = exact.cost
    greedy_cost = allocation_cost(
        application,
        architecture,
        greedy.binding,
        greedy.scheduling.slices,
        WEIGHTS,
    )
    assert exact_cost <= greedy_cost, (
        f"exact cost {exact_cost} exceeds greedy cost {greedy_cost} "
        f"on {application.name}"
    )
    assert isinstance(exact_cost, Fraction)
    return (True, True)


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_exact_lower_bounds_greedy(seed):
    _compare(SMALL_PROFILE, seed)


@pytest.mark.parametrize("seed", TIGHT_SEEDS)
def test_soundness_under_tight_constraints(seed):
    _compare(TIGHT_PROFILE, seed, strict_verdicts=False)


def test_tight_corpus_exercises_both_directions():
    """The tight group must contain genuinely infeasible cases *and*
    cases where the exact backend allocates what greedy gives up on
    (the incompleteness gap) — otherwise the group tests nothing."""
    verdicts = [
        _compare(TIGHT_PROFILE, seed, strict_verdicts=False)
        for seed in TIGHT_SEEDS
    ]
    assert any(not exact for _, exact in verdicts), (
        "no infeasible case in the tight corpus"
    )
    assert any(
        exact and not greedy for greedy, exact in verdicts
    ), "no greedy-incompleteness case in the tight corpus"


@pytest.mark.slow
@pytest.mark.parametrize("seed", HEAVY_SEEDS)
def test_exact_lower_bounds_greedy_heavy(seed):
    _compare(HEAVY_PROFILE, seed, wheel=10)


def test_differential_corpus_is_deterministic():
    """Identical seeds re-draw identical applications."""
    first = _application(SMALL_PROFILE, 7)
    second = _application(SMALL_PROFILE, 7)
    assert [a.name for a in first.graph.actors] == [
        a.name for a in second.graph.actors
    ]
    assert first.throughput_constraint == second.throughput_constraint
