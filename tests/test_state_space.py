"""Unit tests for the self-timed state-space throughput engine."""

from fractions import Fraction

import pytest

from repro.sdf.graph import SDFGraph, chain
from repro.throughput.state_space import (
    SelfTimedExecution,
    StateSpaceExplosionError,
    throughput,
)


class TestSelfTimedExecution:
    def test_simple_cycle_period(self, simple_cycle_graph):
        result = SelfTimedExecution(simple_cycle_graph).execute()
        assert not result.deadlocked
        # MCR = (2 + 3) / 2 tokens -> each actor fires 2 per 5 time units
        assert result.actor_throughput("a") == Fraction(2, 5)
        assert result.actor_throughput("b") == Fraction(2, 5)

    def test_deadlocked_graph_reported(self):
        graph = SDFGraph()
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_channel("ab", "a", "b")
        graph.add_channel("ba", "b", "a")
        result = SelfTimedExecution(graph).execute()
        assert result.deadlocked
        assert result.actor_throughput("a") == 0

    def test_execution_time_override(self, simple_cycle_graph):
        result = SelfTimedExecution(
            simple_cycle_graph, execution_times={"a": 4, "b": 6}
        ).execute()
        assert result.actor_throughput("a") == Fraction(2, 10)

    def test_auto_concurrency_enables_pipelining(self):
        # two parallel firings allowed by 2 tokens on a self cycle
        graph = SDFGraph()
        graph.add_actor("a", 4)
        graph.add_channel("s", "a", "a", tokens=2)
        result = SelfTimedExecution(graph).execute()
        assert result.actor_throughput("a") == Fraction(2, 4)

    def test_no_auto_concurrency_serialises(self):
        graph = SDFGraph()
        graph.add_actor("a", 4)
        graph.add_channel("s", "a", "a", tokens=2)
        result = SelfTimedExecution(graph, auto_concurrency=False).execute()
        assert result.actor_throughput("a") == Fraction(1, 4)

    def test_zero_time_actor_fires_instantly(self):
        graph = SDFGraph()
        graph.add_actor("a", 2)
        graph.add_actor("z", 0)
        graph.add_channel("az", "a", "z")
        graph.add_channel("za", "z", "a", tokens=1)
        result = SelfTimedExecution(graph).execute()
        assert result.actor_throughput("a") == Fraction(1, 2)
        assert result.actor_throughput("z") == Fraction(1, 2)

    def test_zero_time_cycle_raises(self):
        graph = SDFGraph()
        graph.add_actor("a", 0)
        graph.add_channel("s", "a", "a", tokens=1)
        with pytest.raises(StateSpaceExplosionError):
            SelfTimedExecution(graph).execute()

    def test_state_budget_enforced(self, simple_cycle_graph):
        with pytest.raises(StateSpaceExplosionError):
            SelfTimedExecution(simple_cycle_graph, max_states=1).execute()

    def test_transient_before_periodic_phase(self):
        # unbalanced initial tokens create a warm-up phase
        graph = SDFGraph()
        graph.add_actor("a", 1)
        graph.add_actor("b", 5)
        graph.add_channel("ab", "a", "b")
        graph.add_channel("ba", "b", "a", tokens=3)
        result = SelfTimedExecution(graph, auto_concurrency=False).execute()
        assert result.actor_throughput("b") == Fraction(1, 5)


class TestThroughputDriver:
    def test_matches_mcr_on_cycle(self, simple_cycle_graph):
        result = throughput(simple_cycle_graph)
        assert result.iteration_rate == Fraction(2, 5)

    def test_multirate(self, multirate_graph):
        result = throughput(multirate_graph)
        assert result.iteration_rate == Fraction(1, 5)
        assert result.of("a") == Fraction(3, 5)
        assert result.of("b") == Fraction(2, 5)

    def test_acyclic_graph_unbounded(self):
        result = throughput(chain(["a", "b"]))
        assert result.iteration_rate == float("inf")
        assert result.of("a") == float("inf")

    def test_acyclic_no_auto_concurrency_bounded_by_slowest(self):
        graph = chain(["a", "b"], [2, 5])
        result = throughput(graph, auto_concurrency=False)
        assert result.iteration_rate == Fraction(1, 5)
        assert result.of("a") == Fraction(1, 5)

    def test_slowest_scc_dominates(self):
        graph = SDFGraph()
        for name, time in (("a", 1), ("b", 1), ("c", 10)):
            graph.add_actor(name, time)
        graph.add_channel("s1", "a", "a", tokens=1)
        graph.add_channel("ab", "a", "b")
        graph.add_channel("bc", "b", "c")
        graph.add_channel("s2", "c", "c", tokens=1)
        result = throughput(graph)
        assert result.iteration_rate == Fraction(1, 10)

    def test_deadlocked_scc_zeroes_graph(self):
        graph = SDFGraph()
        graph.add_actor("a", 1)
        graph.add_actor("b", 1)
        graph.add_channel("ab", "a", "b")
        graph.add_channel("ba", "b", "a")  # token-free cycle
        result = throughput(graph)
        assert result.iteration_rate == 0
        assert result.deadlocked

    def test_scc_rates_reported(self, simple_cycle_graph):
        result = throughput(simple_cycle_graph)
        assert len(result.scc_rates) == 1
        ((component, rate),) = result.scc_rates.items()
        assert sorted(component) == ["a", "b"]
        assert rate == Fraction(2, 5)

    def test_states_accumulated(self, multirate_graph):
        assert throughput(multirate_graph).states_explored > 0

    def test_gamma_in_result(self, multirate_graph):
        assert throughput(multirate_graph).gamma == {"a": 3, "b": 2}


def test_no_auto_concurrency_scales_with_repetition():
    # gamma(b) = 2, tau(b) = 3: b alone limits iterations to 1/6
    graph = SDFGraph()
    graph.add_actor("a", 1)
    graph.add_actor("b", 3)
    graph.add_channel("d", "a", "b", 2, 1)
    result = throughput(graph, auto_concurrency=False)
    assert result.iteration_rate == Fraction(1, 6)
    assert result.of("b") == Fraction(1, 3)


def test_execution_times_override_in_driver(simple_cycle_graph):
    result = throughput(simple_cycle_graph, execution_times={"a": 20, "b": 30})
    assert result.iteration_rate == Fraction(2, 50)
