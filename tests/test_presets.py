"""Unit tests for the architecture presets."""

import pytest

from repro.arch.presets import (
    benchmark_architectures,
    mesh_architecture,
    multimedia_architecture,
)
from repro.arch.tile import ProcessorType


class TestMesh:
    def test_tile_count(self):
        arch = mesh_architecture(2, 3, [ProcessorType("p")])
        assert len(arch) == 6

    def test_all_pairs_connected(self):
        arch = mesh_architecture(2, 2, [ProcessorType("p")])
        names = arch.tile_names
        for a in names:
            for b in names:
                if a != b:
                    assert arch.connected(a, b)

    def test_latency_scales_with_manhattan_distance(self):
        arch = mesh_architecture(3, 3, [ProcessorType("p")], base_latency=2)
        # t0 is (0,0); t1 is (0,1); t8 is (2,2)
        assert arch.connection("t0", "t1").latency == 2
        assert arch.connection("t0", "t8").latency == 8

    def test_processor_types_round_robin(self):
        types = [ProcessorType("x"), ProcessorType("y")]
        arch = mesh_architecture(2, 2, types)
        assert arch.tile("t0").processor_type.name == "x"
        assert arch.tile("t1").processor_type.name == "y"
        assert arch.tile("t2").processor_type.name == "x"

    def test_requires_processor_types(self):
        with pytest.raises(ValueError):
            mesh_architecture(2, 2, [])

    def test_capacity_parameters_applied(self):
        arch = mesh_architecture(
            1,
            2,
            [ProcessorType("p")],
            wheel=42,
            memory=7,
            max_connections=3,
            bandwidth_in=11,
            bandwidth_out=13,
        )
        tile = arch.tile("t0")
        assert (tile.wheel, tile.memory, tile.max_connections) == (42, 7, 3)
        assert (tile.bandwidth_in, tile.bandwidth_out) == (11, 13)


class TestBenchmarkArchitectures:
    def test_three_variants(self):
        variants = benchmark_architectures()
        assert len(variants) == 3
        assert all(len(v) == 9 for v in variants)

    def test_variants_differ_in_memory_and_connections(self):
        small, medium, large = benchmark_architectures()
        assert small.tile("t0").memory < large.tile("t0").memory
        assert (
            small.tile("t0").max_connections < large.tile("t0").max_connections
        )

    def test_three_processor_types(self):
        arch = benchmark_architectures()[0]
        assert len(arch.processor_types()) == 3

    def test_equal_wheels(self):
        arch = benchmark_architectures(wheel=64)[0]
        assert {t.wheel for t in arch.tiles} == {64}

    def test_mismatched_variant_lists_rejected(self):
        with pytest.raises(ValueError):
            benchmark_architectures(memories=(1, 2), connection_counts=(1,))


class TestMultimediaArchitecture:
    def test_two_by_two(self):
        arch = multimedia_architecture()
        assert len(arch) == 4

    def test_two_generic_two_accelerator(self):
        arch = multimedia_architecture()
        names = [t.processor_type.name for t in arch.tiles]
        assert names.count("generic") == 2
        assert names.count("accelerator") == 2
