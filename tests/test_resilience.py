"""Tests for the resilience layer: budgets, degradation, transactions.

Covers the cooperative :class:`~repro.resilience.budget.Budget`, its
threading through the exploration engines, the degradation ladder of
:mod:`repro.resilience.policy`, the hardened multi-application flow and
the transactional commit — plus a performance guard keeping the
``budget=None`` fast path below 5% overhead.
"""

import time
from fractions import Fraction

import pytest

from repro.appmodel.binding import SchedulingFunction
from repro.appmodel.binding_aware import build_binding_aware_graph
from repro.appmodel.example import (
    paper_example,
    paper_example_application,
    paper_example_architecture,
    paper_example_binding,
)
from repro.arch.resources import InsufficientResourcesError
from repro.baselines.tdma_inflation import tdma_inflated_throughput
from repro.core.flow import allocate_until_failure
from repro.core.scheduling import build_static_order_schedules
from repro.core.strategy import AllocationError, ResourceAllocator
from repro.resilience import Budget, BudgetExceededError
from repro.resilience.policy import (
    DEFAULT_LADDER,
    Rung,
    resilient_allocate,
    tdma_baseline_allocate,
)
from repro.sdf.graph import chain
from repro.throughput.constrained import constrained_throughput
from repro.throughput.state_space import throughput


# -- Budget unit semantics ------------------------------------------------


def test_budget_rejects_negative_limits():
    with pytest.raises(ValueError):
        Budget(deadline=-1.0)
    with pytest.raises(ValueError):
        Budget(max_states=-1)
    with pytest.raises(ValueError):
        Budget(max_throughput_checks=-1)
    with pytest.raises(ValueError):
        Budget(check_interval=0)


def test_unlimited_budget_never_raises():
    budget = Budget()
    for _ in range(5000):
        budget.tick()
    budget.checkpoint()
    budget.charge_check()
    assert not budget.expired()


def test_state_budget_breach_is_typed():
    budget = Budget(max_states=10)
    with pytest.raises(BudgetExceededError) as info:
        for _ in range(11):
            budget.tick()
    assert info.value.reason == "states"
    assert info.value.states == 11


def test_deadline_breach_via_checkpoint():
    budget = Budget(deadline=0.0).start()
    time.sleep(0.001)
    with pytest.raises(BudgetExceededError) as info:
        budget.checkpoint()
    assert info.value.reason == "deadline"
    assert budget.expired()


def test_throughput_check_budget():
    budget = Budget(max_throughput_checks=2)
    budget.charge_check()
    budget.charge_check()
    with pytest.raises(BudgetExceededError) as info:
        budget.charge_check()
    assert info.value.reason == "throughput-checks"


def test_budget_start_is_idempotent():
    budget = Budget(deadline=100.0)
    budget.start()
    first = budget.elapsed()
    budget.start()
    assert budget.elapsed() >= first
    assert budget.remaining_seconds() <= 100.0


# -- budget threading through the engines ---------------------------------


def test_throughput_engine_honours_state_budget():
    graph = chain(["a", "b", "c"], [1, 2, 3], tokens_on_back_edge=2)
    budget = Budget(max_states=3)
    with pytest.raises(BudgetExceededError) as info:
        throughput(graph, budget=budget)
    assert info.value.reason == "states"
    # the engine attached its partial progress before re-raising
    assert "graph" in info.value.partial


def test_throughput_engine_honours_deadline_immediately():
    graph = chain(["a", "b"], [1, 1], tokens_on_back_edge=1)
    budget = Budget(deadline=0.0)
    with pytest.raises(BudgetExceededError) as info:
        throughput(graph, budget=budget)
    assert info.value.reason == "deadline"


def test_scheduling_attaches_partial_progress():
    application, architecture, binding = paper_example()
    bag = build_binding_aware_graph(application, architecture, binding)
    with pytest.raises(BudgetExceededError) as info:
        build_static_order_schedules(bag, budget=Budget(max_states=2))
    assert info.value.partial.get("graph")
    assert "states_explored" in info.value.partial


def test_slice_search_charges_throughput_checks():
    application, architecture, binding = paper_example()
    bag = build_binding_aware_graph(application, architecture, binding)
    schedules = build_static_order_schedules(bag)
    from repro.core.slices import allocate_time_slices

    budget = Budget(max_throughput_checks=2)
    with pytest.raises(BudgetExceededError) as info:
        allocate_time_slices(bag, schedules, budget=budget)
    assert info.value.reason == "throughput-checks"
    # the search reports the best feasible slices it had confirmed
    assert "feasible_slices" in info.value.partial


def test_allocator_propagates_budget_error_unwrapped():
    application, architecture, _ = paper_example()
    with pytest.raises(BudgetExceededError):
        ResourceAllocator().allocate(
            application, architecture, budget=Budget(max_states=2)
        )


# -- degradation ladder ---------------------------------------------------


def test_resilient_allocate_prefers_exact_rung():
    application, architecture, _ = paper_example()
    result = resilient_allocate(application, architecture)
    assert result.rung == "exact"
    assert not result.degraded
    assert result.allocation.satisfied


@pytest.mark.parametrize(
    "rung", [r for r in DEFAULT_LADDER if not r.baseline], ids=lambda r: r.name
)
def test_every_strategy_rung_yields_sound_allocation(rung):
    """Each cheaper configuration still meets the throughput constraint."""
    application, architecture, _ = paper_example()
    allocator = rung.configure(ResourceAllocator())
    allocation = allocator.allocate(application, architecture)
    assert allocation.satisfied
    assert allocation.achieved_throughput >= application.throughput_constraint


def test_tdma_baseline_bound_is_sound():
    """The inflated model never over-promises vs the exact analysis."""
    application, architecture, binding = paper_example()
    bag = build_binding_aware_graph(application, architecture, binding)
    slices = {
        name: architecture.tile(name).wheel_remaining
        for name in binding.used_tiles()
    }
    schedules = build_static_order_schedules(bag, slices=dict(slices))
    inflated = tdma_inflated_throughput(bag, dict(slices))
    scheduling = SchedulingFunction()
    for name, schedule in schedules.items():
        scheduling.set_schedule(name, schedule)
        scheduling.set_slice(name, slices[name])
    exact = constrained_throughput(
        bag.graph, bag.tile_constraints(scheduling)
    )
    output = application.output_actor
    assert inflated.of(output) <= exact.of(output)


def test_tdma_baseline_allocation_is_valid():
    application, architecture, _ = paper_example()
    allocation = tdma_baseline_allocate(
        application, architecture, ResourceAllocator()
    )
    assert allocation.satisfied
    assert allocation.throughput_checks == 1
    # commits cleanly on the real architecture
    allocation.reservation.commit(architecture)


def test_tiny_deadline_degrades_to_baseline():
    application, architecture, _ = paper_example()
    result = resilient_allocate(
        application, architecture, budget=Budget(deadline=0.0)
    )
    assert result.degraded
    assert result.rung == "tdma-baseline"
    assert result.allocation.satisfied
    # every earlier rung is accounted for
    assert [name for name, _ in result.attempts] == [
        "exact",
        "no-refinement",
        "capped-search",
    ]


def test_genuine_infeasibility_is_not_masked():
    """An unreachable constraint must fail, not degrade to nonsense."""
    application = paper_example_application(
        throughput_constraint=Fraction(1, 1)
    )
    architecture = paper_example_architecture()
    with pytest.raises(AllocationError):
        resilient_allocate(application, architecture)


def test_empty_ladder_rejected():
    application, architecture, _ = paper_example()
    with pytest.raises(ValueError):
        resilient_allocate(application, architecture, ladder=())


def test_ladder_without_baseline_raises_budget_error():
    application, architecture, _ = paper_example()
    with pytest.raises(BudgetExceededError) as info:
        resilient_allocate(
            application,
            architecture,
            budget=Budget(deadline=0.0),
            ladder=(Rung(name="exact"),),
        )
    assert info.value.partial["attempts"]


# -- hardened flow --------------------------------------------------------

UNIFORM_KEYS = {
    "application",
    "outcome",
    "seconds",
    "reason",
    "throughput_checks",
    "achieved_throughput",
    "tiles_used",
    "rung",
}


def test_flow_stats_schema_is_uniform():
    application, architecture, _ = paper_example()
    result = allocate_until_failure(architecture, [application])
    assert len(result.application_stats) == 1
    record = result.application_stats[0]
    assert set(record) == UNIFORM_KEYS
    assert record["outcome"] == "allocated"
    assert record["reason"] is None
    assert record["rung"] is None


def test_flow_failure_record_has_uniform_schema():
    # preflight off: the statically infeasible constraint must reach
    # the strategy and fail there (the gated path is covered below)
    application = paper_example_application(
        throughput_constraint=Fraction(1, 1)
    )
    architecture = paper_example_architecture()
    result = allocate_until_failure(
        architecture, [application], preflight=False
    )
    record = result.application_stats[0]
    assert set(record) == UNIFORM_KEYS
    assert record["outcome"] == "failed"
    assert record["reason"]
    assert record["throughput_checks"] is None


def test_flow_rejected_record_has_uniform_schema():
    application = paper_example_application(
        throughput_constraint=Fraction(1, 1)
    )
    architecture = paper_example_architecture()
    result = allocate_until_failure(architecture, [application])
    record = result.application_stats[0]
    assert set(record) == UNIFORM_KEYS
    assert record["outcome"] == "rejected"
    assert "statically infeasible" in record["reason"]


def test_tiny_deadline_flow_completes_degraded():
    """The acceptance scenario: deadline ~0, degrade on — flow completes."""
    application, architecture, _ = paper_example()
    result = allocate_until_failure(
        architecture,
        [application],
        budget=Budget(deadline=0.0),
        degrade=True,
    )
    assert result.applications_bound == 1
    assert result.degraded_applications == 1
    record = result.application_stats[0]
    assert record["outcome"] == "degraded"
    assert record["rung"] == "tdma-baseline"
    achieved = Fraction(record["achieved_throughput"])
    assert achieved >= application.throughput_constraint


def test_flow_budget_exhaustion_without_degrade():
    application, architecture, _ = paper_example()
    result = allocate_until_failure(
        architecture, [application], budget=Budget(deadline=0.0)
    )
    assert result.applications_bound == 0
    assert result.application_stats[0]["outcome"] == "budget-exhausted"
    assert result.failed_application == application.name


# -- transactional commit -------------------------------------------------


def _occupancy(architecture):
    return [
        (
            tile.name,
            tile.wheel_occupied,
            tile.memory_occupied,
            tile.connections_occupied,
            tile.bandwidth_in_occupied,
            tile.bandwidth_out_occupied,
        )
        for tile in architecture.tiles
    ]


def test_commit_insufficient_resources_leaves_architecture_untouched():
    application, architecture, _ = paper_example()
    allocation = ResourceAllocator().allocate(application, architecture)
    # make the claim not fit any more
    claimed = allocation.reservation
    some_tile = next(iter(claimed.tiles))
    tile = architecture.tile(some_tile)
    tile.memory_occupied = tile.memory  # no memory left
    before = _occupancy(architecture)
    with pytest.raises(InsufficientResourcesError):
        claimed.commit(architecture)
    assert _occupancy(architecture) == before


def test_commit_then_rollback_round_trips():
    application, architecture, _ = paper_example()
    allocation = ResourceAllocator().allocate(application, architecture)
    before = _occupancy(architecture)
    allocation.reservation.commit(architecture)
    assert _occupancy(architecture) != before
    allocation.reservation.rollback(architecture)
    assert _occupancy(architecture) == before


# -- performance guard ----------------------------------------------------


def test_disabled_budget_overhead_under_five_percent():
    """``budget=None`` must keep the engines within 5% of their old cost.

    Strategy mirrors the observability guard: (1) time the paper-example
    allocation without a budget, (2) count how many budget charge points
    that workload hits (via an unlimited budget's counters), (3) measure
    the unit cost of the ``budget is not None`` test, and (4) require
    the product to stay below 5% of the measured run time.
    """

    def workload(budget=None):
        return ResourceAllocator().allocate(
            paper_example_application(),
            paper_example_architecture(),
            budget=budget,
        )

    workload()  # warm caches
    started = time.perf_counter()
    workload()
    baseline = time.perf_counter() - started
    for _ in range(2):
        started = time.perf_counter()
        workload()
        baseline = min(baseline, time.perf_counter() - started)

    counting = Budget()
    workload(budget=counting)
    # ticks + checks is an upper bound on the per-iteration charge sites
    charge_points = counting.states_charged + counting.checks_charged + 64
    assert charge_points > 0

    sentinel = None
    rounds = 100_000
    started = time.perf_counter()
    acc = 0
    for _ in range(rounds):
        if sentinel is not None:  # the disabled fast path under test
            acc += 1
    per_check = (time.perf_counter() - started) / rounds

    overhead = charge_points * per_check
    assert overhead < 0.05 * baseline, (
        f"{charge_points} disabled budget checks at "
        f"{per_check * 1e9:.0f} ns each = {overhead * 1e3:.3f} ms, over 5% "
        f"of the {baseline * 1e3:.1f} ms baseline"
    )
