"""Performance regression guards.

Generous wall-clock and state-count bounds on the engines' costs; these
fail loudly if an accidental change makes an engine tick-by-tick or
quadratic (e.g. a broken hash key exploding the state space).  Bounds
are ~10x above currently observed values so normal machine variance
never trips them.
"""

import time

import pytest

from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
)
from repro.core.strategy import ResourceAllocator
from repro.generate.multimedia import h263_decoder
from repro.throughput.state_space import throughput


def test_h263_direct_throughput_stays_linear():
    application = h263_decoder()  # full 2376 macroblocks
    started = time.perf_counter()
    result = throughput(application.graph)
    elapsed = time.perf_counter() - started
    # auto-concurrent H.263 collapses to a handful of states
    assert result.states_explored < 1_000
    assert elapsed < 5.0


def test_constrained_engine_never_ticks():
    """Wheel size must not affect the state count (event-driven gating):
    scale the example's wheel 100x and expect the same exploration."""
    from repro.appmodel.binding import SchedulingFunction
    from repro.appmodel.binding_aware import build_binding_aware_graph
    from repro.appmodel.example import paper_example_binding
    from repro.throughput.constrained import constrained_throughput

    counts = []
    for scale in (1, 100):
        application = paper_example_application()
        architecture = paper_example_architecture()
        for tile in architecture.tiles:
            tile.wheel *= scale
        binding = paper_example_binding()
        slices = {"t1": 5 * scale, "t2": 5 * scale}
        bag = build_binding_aware_graph(
            application, architecture, binding, slices=slices
        )
        scheduling = SchedulingFunction()
        from repro.core.scheduling import build_static_order_schedules

        for tile_name, schedule in build_static_order_schedules(bag).items():
            scheduling.set_schedule(tile_name, schedule)
            scheduling.set_slice(tile_name, slices[tile_name])
        result = constrained_throughput(
            bag.graph, bag.tile_constraints(scheduling)
        )
        counts.append(result.states_explored)
    small, large = counts
    assert large <= 3 * small  # event-driven: no tick-per-time-unit blowup


def test_example_allocation_stays_fast():
    started = time.perf_counter()
    allocation = ResourceAllocator().allocate(
        paper_example_application(), paper_example_architecture()
    )
    elapsed = time.perf_counter() - started
    assert allocation.satisfied
    assert elapsed < 5.0
