"""Performance regression guards.

Generous wall-clock and state-count bounds on the engines' costs; these
fail loudly if an accidental change makes an engine tick-by-tick or
quadratic (e.g. a broken hash key exploding the state space).  Bounds
are ~10x above currently observed values so normal machine variance
never trips them.
"""

import time

import pytest

from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
)
from repro.core.strategy import ResourceAllocator
from repro.generate.multimedia import h263_decoder
from repro.throughput.state_space import throughput


def test_h263_direct_throughput_stays_linear():
    application = h263_decoder()  # full 2376 macroblocks
    started = time.perf_counter()
    result = throughput(application.graph)
    elapsed = time.perf_counter() - started
    # auto-concurrent H.263 collapses to a handful of states
    assert result.states_explored < 1_000
    assert elapsed < 5.0


def test_constrained_engine_never_ticks():
    """Wheel size must not affect the state count (event-driven gating):
    scale the example's wheel 100x and expect the same exploration."""
    from repro.appmodel.binding import SchedulingFunction
    from repro.appmodel.binding_aware import build_binding_aware_graph
    from repro.appmodel.example import paper_example_binding
    from repro.throughput.constrained import constrained_throughput

    counts = []
    for scale in (1, 100):
        application = paper_example_application()
        architecture = paper_example_architecture()
        for tile in architecture.tiles:
            tile.wheel *= scale
        binding = paper_example_binding()
        slices = {"t1": 5 * scale, "t2": 5 * scale}
        bag = build_binding_aware_graph(
            application, architecture, binding, slices=slices
        )
        scheduling = SchedulingFunction()
        from repro.core.scheduling import build_static_order_schedules

        for tile_name, schedule in build_static_order_schedules(bag).items():
            scheduling.set_schedule(tile_name, schedule)
            scheduling.set_slice(tile_name, slices[tile_name])
        result = constrained_throughput(
            bag.graph, bag.tile_constraints(scheduling)
        )
        counts.append(result.states_explored)
    small, large = counts
    assert large <= 3 * small  # event-driven: no tick-per-time-unit blowup


def test_example_allocation_stays_fast():
    started = time.perf_counter()
    allocation = ResourceAllocator().allocate(
        paper_example_application(), paper_example_architecture()
    )
    elapsed = time.perf_counter() - started
    assert allocation.satisfied
    assert elapsed < 5.0


class _CountingMetrics:
    """Counts every instrumentation API call a workload makes.

    Mimics the Metrics duck type with ``enabled = True`` so that even
    the guarded (enabled-only) call sites are exercised — an upper
    bound on the calls the disabled null registry would receive.
    """

    enabled = True

    def __init__(self):
        self.calls = 0

    def counter(self, name, value=1):
        self.calls += 1

    def gauge(self, name, value):
        self.calls += 1

    def observe(self, name, seconds):
        self.calls += 1

    def histogram(self, name, value, buckets=None):
        self.calls += 1

    def timer(self, name):
        self.calls += 1
        return self._noop()

    def span(self, name, **attributes):
        self.calls += 1
        return self._noop()

    class _noop:
        def set(self, key, value):
            pass

        def __enter__(self):
            return self

        def __exit__(self, *exc_info):
            pass


def test_disabled_instrumentation_overhead_under_five_percent():
    """The permanently-wired obs layer must cost <5% when disabled.

    Strategy: (1) time the paper-example allocation with instrumentation
    off, (2) count how many obs calls that workload makes, (3) measure
    the unit cost of a null-registry call, and (4) require the product
    to stay below 5% of the measured run time.
    """
    from repro.obs import NULL_METRICS, get_metrics

    assert get_metrics() is NULL_METRICS  # collection must be off

    def workload():
        return ResourceAllocator().allocate(
            paper_example_application(), paper_example_architecture()
        )

    workload()  # warm imports and caches
    baseline = min(
        _timed(workload) for _ in range(3)
    )

    import repro.obs.metrics as obs_metrics

    counting = _CountingMetrics()
    previous = obs_metrics._active
    obs_metrics._active = counting
    try:
        workload()
    finally:
        obs_metrics._active = previous
    instrumentation_calls = counting.calls
    assert instrumentation_calls > 0  # the workload is instrumented

    null = NULL_METRICS
    rounds = 50_000
    started = time.perf_counter()
    for _ in range(rounds):
        null.counter("guard.counter")
        with null.timer("guard.timer"):
            pass
    per_call = (time.perf_counter() - started) / (2 * rounds)

    overhead = instrumentation_calls * per_call
    assert overhead < 0.05 * baseline, (
        f"{instrumentation_calls} null instrumentation calls at "
        f"{per_call * 1e9:.0f} ns each = {overhead * 1e3:.3f} ms, over 5% "
        f"of the {baseline * 1e3:.1f} ms baseline"
    )


class _CountingTrace:
    """Counts every trace API call a workload makes.

    ``enabled = True`` so even the guarded (enabled-only) trace call
    sites are exercised — an upper bound on the calls the disabled
    null buffer would receive.
    """

    enabled = True

    def __init__(self):
        self.calls = 0

    def now(self):
        self.calls += 1
        return 0.0

    def instant(self, category, name, **args):
        self.calls += 1

    def complete(self, category, name, started, ended, **args):
        self.calls += 1

    def span(self, category, name, **args):
        self.calls += 1
        return _CountingMetrics._noop()


def test_disabled_trace_overhead_under_five_percent():
    """The permanently-wired trace call sites must cost <5% when off.

    Same strategy as the metrics guard: time the workload untraced,
    count the trace calls it would make with tracing on, measure the
    null buffer's unit cost, and bound the product.
    """
    from repro.obs.trace import NULL_TRACE, get_trace

    assert get_trace() is NULL_TRACE  # tracing must be off

    def workload():
        return ResourceAllocator().allocate(
            paper_example_application(), paper_example_architecture()
        )

    workload()  # warm imports and caches
    baseline = min(_timed(workload) for _ in range(3))

    import repro.obs.trace as obs_trace

    counting = _CountingTrace()
    previous = obs_trace._active
    obs_trace._active = counting
    try:
        workload()
    finally:
        obs_trace._active = previous
    trace_calls = counting.calls
    assert trace_calls > 0  # the workload hits trace call sites

    null = NULL_TRACE
    rounds = 50_000
    started = time.perf_counter()
    for _ in range(rounds):
        null.now()
        null.instant("guard", "instant")
        null.complete("guard", "complete", 0.0, 0.0)
    per_call = (time.perf_counter() - started) / (3 * rounds)

    overhead = trace_calls * per_call
    assert overhead < 0.05 * baseline, (
        f"{trace_calls} null trace calls at {per_call * 1e9:.0f} ns "
        f"each = {overhead * 1e3:.3f} ms, over 5% of the "
        f"{baseline * 1e3:.1f} ms baseline"
    )


class _CountingLogger:
    """Counts every structured-log call a workload makes.

    ``enabled = True`` so even the guarded (enabled-only) call sites
    and the ``bind()`` fan-out are exercised — an upper bound on the
    calls the disabled null logger would receive.
    """

    enabled = True

    def __init__(self):
        self.calls = 0

    def bind(self, **fields):
        self.calls += 1
        return self

    def debug(self, event, **fields):
        self.calls += 1

    info = warning = error = debug


@pytest.mark.service
@pytest.mark.telemetry
def test_disabled_telemetry_overhead_under_five_percent(tmp_path):
    """The service's telemetry plane must cost <5% when switched off.

    The daemon's permanently-wired call sites — structured logging
    through the service/journal/watchdog paths plus the queue-wait and
    attempt-latency histograms — follow the same null-by-default
    contract as the engine instrumentation.  Strategy as above: time a
    full submit-to-certified service round trip with everything off,
    count the logging + metrics calls that round trip makes when the
    registries claim to be enabled, measure the null unit cost, and
    bound the product.
    """
    import itertools

    import repro.obs.log as obs_log
    import repro.obs.metrics as obs_metrics
    from repro.obs import NULL_METRICS
    from repro.obs.log import NULL_LOGGER, get_logger
    from repro.service import AllocationService

    from tests.service_helpers import fast_request

    assert get_logger() is NULL_LOGGER  # logging must be off

    application, architecture = fast_request()
    spools = itertools.count()

    def workload():
        spool = str(tmp_path / f"spool-{next(spools)}")
        service = AllocationService(
            spool, workers=1, isolation="thread"
        ).start()
        try:
            record = service.wait(
                service.submit(application, architecture), timeout=60
            )
            assert record["state"] == "certified"
        finally:
            service.drain(cancel_running=True)

    workload()  # warm imports and caches
    baseline = min(_timed(workload) for _ in range(3))

    counting_log = _CountingLogger()
    counting_metrics = _CountingMetrics()
    previous_log = obs_log._active
    previous_metrics = obs_metrics._active
    obs_log._active = counting_log
    obs_metrics._active = counting_metrics
    try:
        workload()
    finally:
        obs_log._active = previous_log
        obs_metrics._active = previous_metrics
    telemetry_calls = counting_log.calls + counting_metrics.calls
    assert counting_log.calls > 0  # the service narrates its lifecycle
    assert counting_metrics.calls > 0

    rounds = 50_000
    started = time.perf_counter()
    for _ in range(rounds):
        NULL_LOGGER.debug("guard.event", job="job", attempt=1)
        NULL_LOGGER.bind(job="job")
        NULL_METRICS.counter("guard.counter")
        NULL_METRICS.histogram("guard.histogram", 0.1)
    per_call = (time.perf_counter() - started) / (4 * rounds)

    overhead = telemetry_calls * per_call
    assert overhead < 0.05 * baseline, (
        f"{telemetry_calls} null telemetry calls at "
        f"{per_call * 1e9:.0f} ns each = {overhead * 1e3:.3f} ms, over "
        f"5% of the {baseline * 1e3:.1f} ms baseline"
    )


def _timed(workload):
    started = time.perf_counter()
    workload()
    return time.perf_counter() - started
