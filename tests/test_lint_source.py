"""The concurrency static analysis (``repro-alloc lint --source``).

The acceptance surface of docs/ANALYSIS.md ("Concurrency rules"):
each seeded fixture under ``tests/fixtures/source/`` fires exactly its
intended CON rule, the repository's own sources are clean, the static
lock-order graph joins the runtime sanitizer on equal node names and
is acyclic, SARIF output carries the CON rule metadata, and the
analyser never crashes on arbitrary syntactically valid modules.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import to_sarif
from repro.analysis.source import (
    analyse_source,
    default_source_paths,
    lock_order_graph,
    lock_registry,
    source_analysis,
)
from repro.cli import main
from repro.exitcodes import EXIT_LINT, EXIT_OK, EXIT_USER_ERROR

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "source")


def fixture(name):
    return os.path.join(FIXTURES, name)


# -- seeded fixtures: each fires exactly its rule --------------------------


@pytest.mark.parametrize(
    "name, rule",
    [
        ("con001_bad.py", "CON001"),
        ("con002_bad.py", "CON002"),
        ("con003_bad.py", "CON003"),
        ("con004_bad.py", "CON004"),
    ],
)
def test_bad_fixture_fires_exactly_its_rule(name, rule):
    report = analyse_source([fixture(name)])
    fired = {diagnostic.rule_id for diagnostic in report}
    assert fired == {rule}, report.render_text()


def test_clean_fixture_is_clean():
    report = analyse_source([fixture("clean.py")])
    assert len(report) == 0, report.render_text()


def test_con001_and_con004_are_errors_con002_con003_are_not():
    errors = analyse_source(
        [fixture("con001_bad.py"), fixture("con004_bad.py")]
    )
    assert errors.has_errors
    warnings = analyse_source(
        [fixture("con002_bad.py"), fixture("con003_bad.py")]
    )
    assert not warnings.has_errors
    assert len(warnings) == 2


def test_waiver_suppresses_a_finding(tmp_path):
    bad = open(fixture("con003_bad.py")).read()
    waived = bad.replace(
        "time.sleep(self.interval)",
        "time.sleep(self.interval)  # con-ok: CON003 deliberate pacing",
    )
    assert waived != bad
    path = tmp_path / "waived.py"
    path.write_text(waived)
    assert len(analyse_source([str(path)])) == 0


def test_unparseable_source_raises_value_error(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    with pytest.raises(ValueError, match="cannot parse"):
        analyse_source([str(path)])


# -- the repository's own sources ------------------------------------------


def test_repository_sources_are_clean():
    report = analyse_source()
    assert len(report) == 0, report.render_text()


def test_static_lock_order_graph_is_acyclic_and_joins_make_lock_names():
    analysis = source_analysis()
    registry_nodes = {site.node for site in analysis.locks}
    # every graph endpoint is a registered lock allocation
    for node, successors in analysis.lock_graph.items():
        assert node in registry_nodes
        assert set(successors) <= registry_nodes
    # the service's fan-out to its collaborators is present
    service = "repro.service.service.AllocationService._lock"
    journal = "repro.service.journal.JobJournal._lock"
    assert journal in analysis.lock_graph.get(service, set())
    # acyclic: Kahn's algorithm consumes every node
    graph = {
        node: set(successors)
        for node, successors in analysis.lock_graph.items()
    }
    for successors in list(graph.values()):
        for node in successors:
            graph.setdefault(node, set())
    while graph:
        leaves = [n for n, succ in graph.items() if not succ]
        assert leaves, f"cycle among {sorted(graph)}"
        for leaf in leaves:
            del graph[leaf]
        for successors in graph.values():
            successors.difference_update(leaves)


def test_lock_registry_names_are_declared_and_documented():
    for site in lock_registry():
        if site.module == "repro.obs.lockcheck":
            continue  # the sanitizer's own internals hold plain locks
        assert site.declared == site.node, site
        assert site.documented, site


# -- CLI wiring -------------------------------------------------------------


def test_lint_source_cli_exits_clean(capsys):
    assert main(["lint", "--source"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_lint_without_inputs_or_source_is_a_user_error(capsys):
    assert main(["lint"]) == EXIT_USER_ERROR
    assert "nothing to lint" in capsys.readouterr().err


def test_sarif_output_carries_con_rules(tmp_path):
    out = tmp_path / "source.sarif"
    code = main(
        ["lint", "--source", "--format", "sarif", "--out", str(out)]
    )
    assert code == EXIT_OK
    document = json.loads(out.read_text())
    rules = {
        rule["id"]
        for rule in document["runs"][0]["tool"]["driver"]["rules"]
    }
    assert {"CON001", "CON002", "CON003", "CON004"} <= rules


def test_sarif_results_locate_fixture_findings():
    report = analyse_source([fixture("con001_bad.py")])
    document = to_sarif(report)
    results = document["runs"][0]["results"]
    assert results and all(
        result["ruleId"] == "CON001" for result in results
    )
    uri = results[0]["locations"][0]["physicalLocation"][
        "artifactLocation"
    ]["uri"]
    assert uri.endswith("con001_bad.py")


def test_exit_code_6_on_error_findings_via_api():
    # the CLI maps has_errors onto EXIT_LINT; pin the pairing here
    report = analyse_source([fixture("con001_bad.py")])
    assert report.has_errors
    assert EXIT_LINT == 6


# -- never-crash property ---------------------------------------------------

_NAMES = st.sampled_from(["_lock", "_data", "_items", "value", "x"])
_GUARDS = st.sampled_from(
    ["", "  # guarded-by: _lock", "  # guards: the registry"]
)
_BODIES = st.sampled_from(
    [
        "pass",
        "return self._data",
        "with self._lock:\n            self._data += 1",
        "with self._lock:\n            time.sleep(0)",
        "while True:\n            break",
        "yield self._items",
    ]
)


@st.composite
def modules(draw):
    attr = draw(_NAMES)
    guard = draw(_GUARDS)
    body = draw(_BODIES)
    decl = draw(
        st.sampled_from(
            [
                "threading.Lock()",
                'make_lock("wrong.Name._lock")',
                "threading.RLock()",
                "[]",
            ]
        )
    )
    return (
        "import threading\nimport time\n"
        "from repro.obs.lockcheck import make_lock\n\n\n"
        "class Thing:\n"
        "    def __init__(self):\n"
        f"        self._lock = {decl}{guard}\n"
        f"        self.{attr} = 0{guard}\n\n"
        "    def method(self):\n"
        f"        {body}\n"
    )


@settings(max_examples=60, deadline=None)
@given(modules())
def test_analyser_never_crashes_on_valid_modules(tmp_path_factory, text):
    compile(text, "<fixture>", "exec")  # the strategy only emits valid code
    path = tmp_path_factory.mktemp("src") / "module.py"
    path.write_text(text)
    analysis = source_analysis([str(path)])
    for diagnostic in analysis.report:
        assert diagnostic.rule_id.startswith("CON")


def test_default_source_paths_cover_the_package():
    paths = default_source_paths()
    assert any(path.endswith("lockcheck.py") for path in paths)
    assert any(path.endswith("source.py") for path in paths)
    assert all(path.endswith(".py") for path in paths)
