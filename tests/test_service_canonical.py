"""Isomorphism-stable canonicalisation (``make test-service``).

The promise under test (``docs/SERVICE.md``): consistently renaming
every actor, channel and tile of a request yields the *same* canonical
digest with orderings that map the two vocabularies onto each other,
while any semantic change — a rate, an execution time, the constraint,
platform occupancy — yields a *different* digest.
"""

import copy
import random

import pytest

from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
)
from repro.appmodel.serialization import application_to_dict
from repro.arch.serialization import architecture_to_dict
from repro.service.canonical import (
    canonicalise_request,
    name_maps,
    remap_certificate,
)

pytestmark = pytest.mark.service


@pytest.fixture()
def request_dicts():
    return (
        application_to_dict(paper_example_application()),
        architecture_to_dict(paper_example_architecture()),
    )


def _rename(application, seed=0, prefix="z"):
    """A consistently renamed deep copy plus the rename maps used."""
    rng = random.Random(seed)
    actors = [a["name"] for a in application["graph"]["actors"]]
    channels = [c["name"] for c in application["graph"]["channels"]]
    rng.shuffle(actors)
    rng.shuffle(channels)
    actor_map = {name: f"{prefix}a{i}" for i, name in enumerate(actors)}
    channel_map = {name: f"{prefix}c{i}" for i, name in enumerate(channels)}
    renamed = copy.deepcopy(application)
    renamed["name"] = f"{prefix}-{application['name']}"
    renamed["graph"]["actors"] = [
        {**a, "name": actor_map[a["name"]]}
        for a in application["graph"]["actors"]
    ]
    renamed["graph"]["channels"] = [
        {
            **c,
            "name": channel_map[c["name"]],
            "src": actor_map[c["src"]],
            "dst": actor_map[c["dst"]],
        }
        for c in application["graph"]["channels"]
    ]
    renamed["actors"] = {
        actor_map[k]: v for k, v in application["actors"].items()
    }
    renamed["channels"] = {
        channel_map[k]: v
        for k, v in application.get("channels", {}).items()
    }
    renamed["output_actor"] = actor_map[application["output_actor"]]
    return renamed, actor_map, channel_map


def test_canonicalisation_is_deterministic(request_dicts):
    application, architecture = request_dicts
    first = canonicalise_request(application, architecture)
    second = canonicalise_request(application, architecture)
    assert first.digest == second.digest
    assert first.payload == second.payload
    assert first.actor_order == second.actor_order
    assert not first.exact_names


@pytest.mark.parametrize("seed", range(5))
def test_consistent_rename_preserves_digest(request_dicts, seed):
    application, architecture = request_dicts
    renamed, actor_map, channel_map = _rename(application, seed=seed)
    original = canonicalise_request(application, architecture)
    fresh = canonicalise_request(renamed, architecture)
    assert original.digest == fresh.digest
    assert original.payload == fresh.payload
    actors, channels, tiles = name_maps(original, fresh)
    assert actors == actor_map
    assert channels == channel_map
    assert tiles == {name: name for name in original.tile_order}


def test_tile_rename_preserves_digest(request_dicts):
    application, architecture = request_dicts
    renamed = copy.deepcopy(architecture)
    tile_map = {
        entry["name"]: f"node{i}"
        for i, entry in enumerate(architecture["tiles"])
    }
    renamed["tiles"] = [
        {**entry, "name": tile_map[entry["name"]]}
        for entry in architecture["tiles"]
    ]
    renamed["connections"] = [
        {**c, "src": tile_map[c["src"]], "dst": tile_map[c["dst"]]}
        for c in architecture.get("connections", [])
    ]
    original = canonicalise_request(application, architecture)
    fresh = canonicalise_request(application, renamed)
    assert original.digest == fresh.digest
    _, _, tiles = name_maps(original, fresh)
    assert tiles == tile_map


@pytest.mark.parametrize(
    "mutate",
    [
        lambda app, arch: app["graph"]["actors"][0].update(
            execution_time=app["graph"]["actors"][0]["execution_time"] + 1
        ),
        lambda app, arch: app["graph"]["channels"][0].update(
            tokens=app["graph"]["channels"][0].get("tokens", 0) + 1
        ),
        lambda app, arch: app.update(throughput_constraint="1/9999"),
        lambda app, arch: arch["tiles"][0].update(
            memory_occupied=arch["tiles"][0].get("memory_occupied", 0) + 7
        ),
        lambda app, arch: arch["tiles"][0].update(
            wheel=arch["tiles"][0]["wheel"] + 1
        ),
    ],
    ids=[
        "execution-time",
        "initial-tokens",
        "constraint",
        "tile-occupancy",
        "tile-wheel",
    ],
)
def test_semantic_changes_change_digest(request_dicts, mutate):
    application, architecture = request_dicts
    baseline = canonicalise_request(application, architecture).digest
    mutated_app = copy.deepcopy(application)
    mutated_arch = copy.deepcopy(architecture)
    mutate(mutated_app, mutated_arch)
    assert (
        canonicalise_request(mutated_app, mutated_arch).digest != baseline
    )


def test_symmetric_graph_rename_invariance():
    """A graph with interchangeable actors exercises the
    individualisation search (pure WL cannot split the tie)."""
    application = {
        "name": "sym",
        "throughput_constraint": "1/100",
        "output_actor": "sink",
        "graph": {
            "name": "sym",
            "actors": [
                {"name": "src", "execution_time": 1},
                {"name": "mid1", "execution_time": 2},
                {"name": "mid2", "execution_time": 2},
                {"name": "sink", "execution_time": 1},
            ],
            "channels": [
                {"name": "c1", "src": "src", "dst": "mid1",
                 "production": 1, "consumption": 1, "tokens": 0},
                {"name": "c2", "src": "src", "dst": "mid2",
                 "production": 1, "consumption": 1, "tokens": 0},
                {"name": "c3", "src": "mid1", "dst": "sink",
                 "production": 1, "consumption": 1, "tokens": 0},
                {"name": "c4", "src": "mid2", "dst": "sink",
                 "production": 1, "consumption": 1, "tokens": 1},
            ],
        },
        "actors": {},
        "channels": {},
    }
    architecture = {"name": "p", "tiles": [
        {"name": "t1", "processor_type": "arm", "wheel": 10},
    ], "connections": []}
    # swap the two symmetric-looking middle actors (they differ only
    # through c4's initial token — refinement must see through it)
    renamed, _, _ = _rename(application, seed=3)
    a = canonicalise_request(application, architecture)
    b = canonicalise_request(renamed, architecture)
    assert a.digest == b.digest


def test_truly_automorphic_actors_still_canonicalise():
    """Fully interchangeable parallel branches: any tie-break is a
    valid automorphism, and the digest must stay rename-invariant."""
    def build(m1, m2):
        return {
            "name": "auto",
            "throughput_constraint": "1/50",
            "output_actor": "sink",
            "graph": {
                "name": "auto",
                "actors": [
                    {"name": "src", "execution_time": 1},
                    {"name": m1, "execution_time": 2},
                    {"name": m2, "execution_time": 2},
                    {"name": "sink", "execution_time": 1},
                ],
                "channels": [
                    {"name": "e1", "src": "src", "dst": m1,
                     "production": 1, "consumption": 1, "tokens": 0},
                    {"name": "e2", "src": "src", "dst": m2,
                     "production": 1, "consumption": 1, "tokens": 0},
                    {"name": "e3", "src": m1, "dst": "sink",
                     "production": 1, "consumption": 1, "tokens": 0},
                    {"name": "e4", "src": m2, "dst": "sink",
                     "production": 1, "consumption": 1, "tokens": 0},
                ],
            },
            "actors": {},
            "channels": {},
        }

    architecture = {"name": "p", "tiles": [
        {"name": "t1", "processor_type": "arm", "wheel": 10},
    ], "connections": []}
    a = canonicalise_request(build("alpha", "beta"), architecture)
    b = canonicalise_request(build("q", "p"), architecture)
    assert a.digest == b.digest


def test_processor_type_is_shared_vocabulary(request_dicts):
    """Processor-type names tie Γ options to tiles; renaming one is a
    semantic change, never canonicalised away."""
    application, architecture = request_dicts
    baseline = canonicalise_request(application, architecture).digest
    mutated = copy.deepcopy(architecture)
    mutated["tiles"][0]["processor_type"] = "renamed-proc"
    assert canonicalise_request(application, mutated).digest != baseline


def test_remap_certificate_peels_synthetic_prefixes():
    actor_map = {"a1": "x1"}
    channel_map = {"d1": "y1"}
    certificate = {
        "kind": "state-space",
        "graph": "old-bound",
        "actors": ["a1", "self:a1", "con0-ni:d1", "hop1:d1"],
        "channels": ["d1", "buf:d1", "syn:d1"],
        "firings": {"a1": 3, "self:a1": 3},
        "tiles": [
            {"name": "t1", "periodic": ["a1"], "transient": []},
        ],
    }
    remapped = remap_certificate(
        certificate, actor_map, channel_map, {"t1": "u1"},
        graph_name="new-bound",
    )
    assert remapped["graph"] == "new-bound"
    assert remapped["actors"] == ["x1", "self:x1", "con0-ni:y1", "hop1:y1"]
    assert remapped["channels"] == ["y1", "buf:y1", "syn:y1"]
    assert remapped["firings"] == {"x1": 3, "self:x1": 3}
    assert remapped["tiles"][0]["name"] == "u1"
    assert remapped["tiles"][0]["periodic"] == ["x1"]
