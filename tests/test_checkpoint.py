"""Crash-safe checkpoint/resume (``make test-verify``).

The promise under test (``docs/VERIFICATION.md``): a budget-killed
exploration serialises its frontier to a versioned JSON checkpoint, and
resuming from that checkpoint — even after a round-trip through a file
— continues *bit-identically*, i.e. yields exactly the result an
uninterrupted run would have produced.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generate.random_sdf import random_sdfg
from repro.resilience.budget import Budget, BudgetExceededError
from repro.resilience.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    read_checkpoint,
    resume_from_checkpoint,
    write_checkpoint,
)
from repro.sdf.graph import SDFGraph
from repro.sdf.serialization import SerializationError
from repro.throughput.constrained import (
    StaticOrderSchedule,
    TileConstraints,
    constrained_throughput,
)
from repro.throughput.state_space import (
    rate_from_str,
    rate_to_str,
    throughput,
)


def _random_graph(seed):
    """A consistent, live random SDFG with varied execution times."""
    rng = random.Random(seed)
    base = random_sdfg(rng=rng, name=f"rand-{seed}")
    graph = SDFGraph(base.name)
    for actor in base.actors:
        graph.add_actor(actor.name, rng.randint(1, 5))
    for channel in base.channels:
        graph.add_channel(
            channel.name,
            channel.src,
            channel.dst,
            channel.production,
            channel.consumption,
            channel.tokens,
        )
    return graph


def _interrupt(graph, max_states):
    """Run ``throughput`` under a state budget; the checkpoint or None."""
    try:
        throughput(graph, budget=Budget(max_states=max_states))
    except BudgetExceededError as error:
        return error.partial["checkpoint"]
    return None


def _assert_same_result(resumed, full):
    assert resumed.iteration_rate == full.iteration_rate
    assert resumed.gamma == full.gamma
    assert resumed.scc_rates == full.scc_rates
    assert resumed.certificates == full.certificates
    for actor in full.gamma:
        assert resumed.of(actor) == full.of(actor)


# -- bit-identical resume over seeded random graphs ------------------------


def test_budget_killed_runs_resume_bit_identically():
    """Acceptance: >= 20 seeded random SDFGs, budget-killed mid-search,
    must resume from their checkpoint to the uninterrupted result."""
    resumed_count = 0
    seed = 0
    while resumed_count < 20:
        seed += 1
        assert seed < 200, "random graphs stopped producing interruptions"
        graph = _random_graph(seed)
        checkpoint = _interrupt(graph, max_states=2)
        if checkpoint is None:  # finished within the tiny budget
            continue
        # force a JSON round-trip: what resumes is exactly what a file
        # would have carried
        checkpoint = json.loads(json.dumps(checkpoint))
        resumed = resume_from_checkpoint(checkpoint)
        _assert_same_result(resumed, throughput(graph))
        resumed_count += 1


def test_chained_interruptions_resume_bit_identically():
    """Kill, resume with another tiny budget, kill again, resume fully."""
    graph = first = None
    for seed in range(1, 50):
        graph = _random_graph(seed)
        if throughput(graph).states_explored < 8:
            continue  # too small to interrupt twice
        first = _interrupt(graph, max_states=2)
        if first is not None:
            break
    assert first is not None
    checkpoint, hops = first, 0
    while True:
        assert hops < 10_000, "chained resume stopped making progress"
        try:
            resumed = resume_from_checkpoint(
                json.loads(json.dumps(checkpoint)),
                budget=Budget(max_states=2),
            )
            break
        except BudgetExceededError as error:
            checkpoint = error.partial["checkpoint"]
            hops += 1
    assert hops >= 1, "budget never interrupted the resumed runs"
    _assert_same_result(resumed, throughput(graph))


def test_constrained_run_resumes_bit_identically():
    graph = SDFGraph("pipe")
    graph.add_actor("a", 2)
    graph.add_actor("b", 3)
    graph.add_channel("self:a", "a", "a", tokens=1)
    graph.add_channel("self:b", "b", "b", tokens=1)
    graph.add_channel("ab", "a", "b")
    graph.add_channel("ba", "b", "a", tokens=1)
    tiles = [
        TileConstraints("t", 10, 5, StaticOrderSchedule(periodic=("a", "b")))
    ]
    full = constrained_throughput(graph, tiles)
    with pytest.raises(BudgetExceededError) as info:
        constrained_throughput(graph, tiles, budget=Budget(max_states=2))
    checkpoint = json.loads(json.dumps(info.value.partial["checkpoint"]))
    assert checkpoint["kind"] == "constrained"
    resumed = resume_from_checkpoint(checkpoint)
    assert resumed.period == full.period
    assert resumed.period_firings == full.period_firings
    assert resumed.transient_time == full.transient_time
    assert resumed.certificate == full.certificate
    assert resumed.of("a") == full.of("a")


# -- checkpoint file round-trip --------------------------------------------


def test_write_read_round_trip(tmp_path):
    graph = _random_graph(1)
    checkpoint = _interrupt(graph, max_states=2)
    assert checkpoint is not None
    path = str(tmp_path / "ck.json")
    write_checkpoint(path, checkpoint)
    assert read_checkpoint(path) == json.loads(json.dumps(checkpoint))
    resumed = resume_from_checkpoint(path)
    _assert_same_result(resumed, throughput(graph))


def test_write_rejects_payload_without_envelope(tmp_path):
    path = str(tmp_path / "ck.json")
    with pytest.raises(CheckpointError):
        write_checkpoint(path, {"kind": "state-space"})
    assert not (tmp_path / "ck.json").exists()
    assert not (tmp_path / "ck.json.tmp").exists()


def test_read_rejects_truncated_and_foreign_files(tmp_path):
    truncated = tmp_path / "trunc.json"
    truncated.write_text('{"format": "repro-ch')
    with pytest.raises(CheckpointError):
        read_checkpoint(str(truncated))
    foreign = tmp_path / "foreign.json"
    foreign.write_text(json.dumps({"format": "other", "version": 1}))
    with pytest.raises(CheckpointError):
        read_checkpoint(str(foreign))
    with pytest.raises(CheckpointError):
        read_checkpoint(str(tmp_path / "missing.json"))


def test_resume_rejects_flow_checkpoint_directly():
    payload = {
        "format": CHECKPOINT_FORMAT,
        "version": 1,
        "kind": "flow",
        "completed": [],
        "allocations": [],
        "stats": [],
    }
    with pytest.raises(CheckpointError):
        resume_from_checkpoint(payload)


# -- randomised format round-trips (hypothesis) ----------------------------


@given(num=st.integers(0, 10**12), den=st.integers(1, 10**12))
def test_rate_string_round_trip(num, den):
    from fractions import Fraction

    rate = Fraction(num, den)
    assert rate_from_str(rate_to_str(rate)) == rate


def test_infinite_rate_round_trip():
    assert rate_from_str(rate_to_str(float("inf"))) == float("inf")


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_checkpoint_json_round_trip_is_lossless(seed):
    """Any checkpoint the engine emits survives JSON serialisation."""
    graph = _random_graph(seed)
    checkpoint = _interrupt(graph, max_states=2)
    if checkpoint is None:
        return  # graph finished inside the budget; nothing to round-trip
    assert checkpoint["format"] == CHECKPOINT_FORMAT
    assert checkpoint["kind"] == "state-space"
    round_tripped = json.loads(json.dumps(checkpoint))
    assert round_tripped == json.loads(json.dumps(round_tripped))
    _assert_same_result(
        resume_from_checkpoint(round_tripped), throughput(graph)
    )


# -- hardened reads: truncation, binary corruption, missing fields ---------


def _real_checkpoint(tmp_path):
    """A genuine engine checkpoint, interrupted and written to disk."""
    for seed in range(1, 200):
        payload = _interrupt(_random_graph(seed), max_states=2)
        if payload is not None:
            path = tmp_path / "real.json"
            write_checkpoint(str(path), payload)
            return path
    raise AssertionError("random graphs stopped producing interruptions")


def test_read_truncated_real_checkpoint_raises_typed_error(tmp_path):
    """Truncating a real checkpoint mid-file yields CheckpointError
    (a SerializationError) carrying the file path — never a bare
    json.JSONDecodeError."""
    path = _real_checkpoint(tmp_path)
    text = path.read_text()
    for fraction in (0.25, 0.5, 0.9):
        path.write_text(text[: int(len(text) * fraction)])
        with pytest.raises(CheckpointError) as excinfo:
            read_checkpoint(str(path))
        assert str(path) in str(excinfo.value)
        assert isinstance(excinfo.value, SerializationError)


def test_read_binary_corrupted_checkpoint_raises_typed_error(tmp_path):
    """A checkpoint overwritten with non-UTF-8 bytes must surface as
    CheckpointError, not UnicodeDecodeError."""
    path = _real_checkpoint(tmp_path)
    path.write_bytes(b"\x00\xff\xfe garbage \x80\x81")
    with pytest.raises(CheckpointError) as excinfo:
        read_checkpoint(str(path))
    assert str(path) in str(excinfo.value)


@pytest.mark.parametrize(
    "missing", ["graph", "max_states", "execution_times", "auto_concurrency"]
)
def test_resume_missing_field_raises_typed_error(tmp_path, missing):
    """A structurally valid checkpoint that lost a required field must
    fail resume with a CheckpointError naming the field, not KeyError."""
    path = _real_checkpoint(tmp_path)
    payload = read_checkpoint(str(path))
    del payload[missing]
    with pytest.raises(CheckpointError) as excinfo:
        resume_from_checkpoint(payload)
    assert missing in str(excinfo.value)


def test_resume_constrained_missing_tile_field_raises_typed_error():
    graph = SDFGraph("pipe")
    graph.add_actor("a", 2)
    graph.add_channel("loop", "a", "a", tokens=1)
    checkpoint = {
        "format": CHECKPOINT_FORMAT,
        "version": 1,
        "kind": "constrained",
        "graph": {
            "name": "pipe",
            "actors": [{"name": "a", "execution_time": 2}],
            "channels": [
                {
                    "name": "loop",
                    "src": "a",
                    "dst": "a",
                    "production": 1,
                    "consumption": 1,
                    "tokens": 1,
                }
            ],
        },
        "max_states": 100,
        "tiles": [{"name": "t1", "wheel": 10}],  # no slice_size/periodic
    }
    with pytest.raises(CheckpointError) as excinfo:
        resume_from_checkpoint(checkpoint)
    assert "tiles[0]" in str(excinfo.value)
