"""Unit tests for the NoC connection model and DOT export."""

import pytest

from repro.appmodel.binding_aware import (
    ConnectionStage,
    SimpleConnectionModel,
    build_binding_aware_graph,
)
from repro.appmodel.example import paper_example
from repro.extensions.dot import (
    architecture_to_dot,
    binding_to_dot,
    sdfg_to_dot,
)
from repro.extensions.noc_model import NocConnectionModel
from repro.sdf.validate import validate_graph
from repro.throughput.state_space import throughput


class TestNocConnectionModel:
    def test_two_stages(self, example_application, example_architecture):
        model = NocConnectionModel(flit_size=32)
        connection = example_architecture.connection("t1", "t2")
        stages = model.stages(connection, example_application.channel("d2"))
        assert len(stages) == 2
        assert stages[0].suffix == "inj"
        assert stages[1].suffix == "net"

    def test_stage_timings(self, example_application, example_architecture):
        # d2: sz=100, beta=10, L=1, flits of 32 bits -> 4 flits
        model = NocConnectionModel(flit_size=32)
        connection = example_architecture.connection("t1", "t2")
        injection, traversal = model.stages(
            connection, example_application.channel("d2")
        )
        assert injection.execution_time == 10  # ceil(100/10)
        assert traversal.execution_time == 1 + 4 - 1

    def test_invalid_flit_size(self):
        with pytest.raises(ValueError):
            NocConnectionModel(flit_size=0)

    def test_binding_aware_graph_with_noc_model(self):
        application, architecture, binding = paper_example()
        bag = build_binding_aware_graph(
            application,
            architecture,
            binding,
            connection_model=NocConnectionModel(flit_size=32),
        )
        validate_graph(bag.graph)
        assert bag.graph.has_actor("con:d2")
        assert bag.graph.has_actor("con1-net:d2")
        # both stages sequential (self edges)
        assert bag.graph.has_channel("self:con:d2")
        assert bag.graph.has_channel("self:con1-net:d2")

    def test_noc_pipeline_beats_simple_model_on_throughput(self):
        """Overlapping injection and traversal raises the sustained
        cross-tile rate compared to the monolithic connection actor."""
        application, architecture, binding = paper_example()
        simple = build_binding_aware_graph(
            application, architecture, binding,
            connection_model=SimpleConnectionModel(),
        )
        noc = build_binding_aware_graph(
            application, architecture, binding,
            connection_model=NocConnectionModel(flit_size=32),
        )
        assert throughput(noc.graph).of("a3") >= throughput(simple.graph).of(
            "a3"
        )

    def test_sync_actor_still_present(self):
        application, architecture, binding = paper_example()
        bag = build_binding_aware_graph(
            application,
            architecture,
            binding,
            connection_model=NocConnectionModel(),
        )
        assert bag.sync_actors == {"d2": "syn:d2"}
        bag.update_slices({"t2": 8})
        assert bag.graph.actor("syn:d2").execution_time == 2


class TestDotExport:
    def test_sdfg_dot_structure(self, multirate_graph):
        dot = sdfg_to_dot(multirate_graph)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"a" -> "b"' in dot
        assert "2,3" in dot  # rates rendered
        assert "1T" in dot  # tokens rendered

    def test_sdfg_dot_omits_unit_rates(self, chain_graph):
        dot = sdfg_to_dot(chain_graph)
        assert "1,1" not in dot

    def test_architecture_dot(self, example_architecture):
        dot = architecture_to_dot(example_architecture)
        assert '"t1" -> "t2"' in dot
        assert "p1" in dot

    def test_binding_dot_clusters(self):
        application, architecture, binding = paper_example()
        dot = binding_to_dot(application, binding, architecture)
        assert "subgraph cluster_0" in dot
        assert "subgraph cluster_1" in dot
        assert "style=dashed" in dot  # the crossing channel d2

    def test_binding_dot_without_architecture(self):
        application, _, binding = paper_example()
        dot = binding_to_dot(application, binding)
        assert "cluster" in dot

    def test_quoting_of_odd_names(self):
        from repro.sdf.graph import SDFGraph

        graph = SDFGraph('weird"name')
        graph.add_actor("a b")
        dot = sdfg_to_dot(graph)
        assert '"a b"' in dot
