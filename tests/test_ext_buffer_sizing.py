"""Unit tests for buffer sizing under a throughput constraint (ref [21])."""

from fractions import Fraction

import pytest

from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
)
from repro.core.strategy import ResourceAllocator
from repro.extensions.buffer_sizing import (
    buffer_throughput_tradeoff,
    minimise_buffers,
)


@pytest.fixture
def allocated():
    application = paper_example_application(Fraction(1, 60))
    architecture = paper_example_architecture()
    allocation = ResourceAllocator().allocate(application, architecture)
    return application, architecture, allocation


def test_minimised_buffers_never_grow(allocated):
    application, architecture, allocation = allocated
    result = minimise_buffers(
        application, architecture, allocation.binding, allocation.scheduling
    )
    for name, new in result.buffers.items():
        old = result.original[name]
        assert new.buffer_tile <= old.buffer_tile
        assert new.buffer_src <= old.buffer_src
        assert new.buffer_dst <= old.buffer_dst


def test_constraint_still_met_after_minimisation(allocated):
    application, architecture, allocation = allocated
    result = minimise_buffers(
        application, architecture, allocation.binding, allocation.scheduling
    )
    assert result.achieved_throughput >= application.throughput_constraint
    assert result.memory_saved >= 0


def test_application_theta_updated_in_place(allocated):
    application, architecture, allocation = allocated
    result = minimise_buffers(
        application, architecture, allocation.binding, allocation.scheduling
    )
    for name, requirements in result.buffers.items():
        assert application.channel_requirements[name] == requirements


def test_infeasible_start_rejected():
    application = paper_example_application(Fraction(1, 60))
    architecture = paper_example_architecture()
    allocation = ResourceAllocator().allocate(application, architecture)
    application.throughput_constraint = Fraction(1, 2)  # now unreachable
    with pytest.raises(ValueError, match="starting buffers"):
        minimise_buffers(
            application,
            architecture,
            allocation.binding,
            allocation.scheduling,
        )


def test_channel_subset_only_touches_named(allocated):
    application, architecture, allocation = allocated
    before = dict(application.channel_requirements)
    result = minimise_buffers(
        application,
        architecture,
        allocation.binding,
        allocation.scheduling,
        channels=["d1"],
    )
    assert set(result.buffers) == {"d1"}
    for name in ("d2", "d3"):
        assert application.channel_requirements[name] == before[name]


def test_tradeoff_curve_monotone_in_buffers(allocated):
    application, architecture, allocation = allocated
    points = buffer_throughput_tradeoff(
        application, architecture, allocation.binding, allocation.scheduling
    )
    # larger total buffers never decrease throughput
    by_size = sorted(points)
    rates = [rate for _, rate in by_size]
    assert all(a <= b for a, b in zip(rates, rates[1:]))


def test_tradeoff_restores_theta(allocated):
    application, architecture, allocation = allocated
    before = dict(application.channel_requirements)
    buffer_throughput_tradeoff(
        application, architecture, allocation.binding, allocation.scheduling
    )
    assert application.channel_requirements == before


def test_tiny_buffers_deadlock_to_zero(allocated):
    application, architecture, allocation = allocated
    points = buffer_throughput_tradeoff(
        application,
        architecture,
        allocation.binding,
        allocation.scheduling,
        scales=[Fraction(0)],
    )
    ((_, rate),) = points
    assert rate == 0
