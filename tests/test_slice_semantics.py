"""Deep semantic checks of the slice allocation (§9.3).

These go beyond the unit tests: they sweep the slice space exhaustively
on the running example to check the two facts the binary searches rely
on — throughput is monotone in every slice, and the allocation the
strategy returns is locally minimal (no single slice can shrink without
breaking the constraint).
"""

from fractions import Fraction

import pytest

from repro.appmodel.binding import SchedulingFunction
from repro.appmodel.binding_aware import build_binding_aware_graph
from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
    paper_example_binding,
)
from repro.core.scheduling import build_static_order_schedules
from repro.core.slices import allocate_time_slices
from repro.core.strategy import ResourceAllocator
from repro.throughput.constrained import constrained_throughput


def evaluate(application, architecture, binding, schedules, slices):
    bag = build_binding_aware_graph(
        application, architecture, binding, slices=slices
    )
    scheduling = SchedulingFunction()
    for tile, schedule in schedules.items():
        scheduling.set_schedule(tile, schedule)
        scheduling.set_slice(tile, slices[tile])
    return constrained_throughput(
        bag.graph, bag.tile_constraints(scheduling)
    ).of(application.output_actor)


@pytest.fixture(scope="module")
def example_setup():
    application = paper_example_application()
    architecture = paper_example_architecture()
    binding = paper_example_binding()
    bag = build_binding_aware_graph(application, architecture, binding)
    schedules = build_static_order_schedules(bag)
    return application, architecture, binding, schedules


def test_throughput_monotone_in_each_slice(example_setup):
    application, architecture, binding, schedules = example_setup
    wheel = architecture.tile("t1").wheel
    # full 10x10 sweep of both slices
    rates = {}
    for slice_t1 in range(1, wheel + 1):
        for slice_t2 in range(1, wheel + 1):
            rates[(slice_t1, slice_t2)] = evaluate(
                application,
                architecture,
                binding,
                schedules,
                {"t1": slice_t1, "t2": slice_t2},
            )
    for (slice_t1, slice_t2), rate in rates.items():
        if slice_t1 < wheel:
            assert rates[(slice_t1 + 1, slice_t2)] >= rate
        if slice_t2 < wheel:
            assert rates[(slice_t1, slice_t2 + 1)] >= rate


@pytest.mark.parametrize(
    "constraint",
    [Fraction(1, 60), Fraction(1, 30), Fraction(1, 15), Fraction(3, 40)],
)
def test_allocated_slices_are_locally_minimal(example_setup, constraint):
    application_template, architecture, binding, schedules = example_setup
    application = paper_example_application(constraint)
    bag = build_binding_aware_graph(application, architecture, binding)
    result = allocate_time_slices(bag, schedules, relaxation=0.0)
    assert result.achieved_throughput >= constraint
    for tile in result.slices:
        if result.slices[tile] == 1:
            continue
        reduced = dict(result.slices)
        reduced[tile] -= 1
        rate = evaluate(
            application, architecture, binding, schedules, reduced
        )
        assert rate < constraint, (
            f"slice of {tile} could shrink to {reduced[tile]} and still "
            f"achieve {rate} >= {constraint}"
        )


def test_full_strategy_matches_exhaustive_minimum():
    """For one constraint, compare the strategy's total slice budget to
    the true optimum found by exhaustive search over the 10x10 grid."""
    constraint = Fraction(1, 25)
    application = paper_example_application(constraint)
    architecture = paper_example_architecture()
    binding = paper_example_binding()
    bag = build_binding_aware_graph(application, architecture, binding)
    schedules = build_static_order_schedules(bag)
    result = allocate_time_slices(bag, schedules, relaxation=0.0)

    best_total = None
    wheel = architecture.tile("t1").wheel
    for slice_t1 in range(1, wheel + 1):
        for slice_t2 in range(1, wheel + 1):
            rate = evaluate(
                application,
                architecture,
                binding,
                schedules,
                {"t1": slice_t1, "t2": slice_t2},
            )
            if rate >= constraint:
                total = slice_t1 + slice_t2
                if best_total is None or total < best_total:
                    best_total = total
    assert best_total is not None
    strategy_total = sum(result.slices.values())
    # the two-phase search is a heuristic: allow a small gap but no
    # gross over-allocation
    assert strategy_total <= best_total + 2
