"""Unit tests for binding-aware SDFG construction (paper §8.1)."""

from fractions import Fraction

import pytest

from repro.appmodel.binding import Binding, SchedulingFunction
from repro.appmodel.binding_aware import (
    InfeasibleBindingError,
    build_binding_aware_graph,
)
from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
    paper_example_binding,
)
from repro.sdf.validate import validate_graph
from repro.throughput.constrained import StaticOrderSchedule
from repro.throughput.state_space import throughput


@pytest.fixture
def bag(example_application, example_architecture, example_binding):
    return build_binding_aware_graph(
        example_application,
        example_architecture,
        example_binding,
        slices={"t1": 5, "t2": 5},
    )


class TestConstruction:
    def test_execution_times_from_bound_processor(self, bag):
        # a1, a2 on p1 (times 1, 1); a3 on p2 (time 2)
        assert bag.graph.actor("a1").execution_time == 1
        assert bag.graph.actor("a2").execution_time == 1
        assert bag.graph.actor("a3").execution_time == 2

    def test_self_edges_added(self, bag):
        for actor in ("a1", "a2", "a3"):
            channel = bag.graph.channel(f"self:{actor}")
            assert channel.is_self_loop
            assert channel.tokens == 1

    def test_intra_tile_channel_gets_buffer_back_edge(self, bag):
        # d1 (a1 -> a2) is inside t1; alpha_tile = 1
        back = bag.graph.channel("buf:d1")
        assert (back.src, back.dst) == ("a2", "a1")
        assert back.tokens == 1

    def test_cross_tile_channel_expanded(self, bag):
        # d2 (a2 -> a3) crosses t1 -> t2
        assert bag.connection_actors == {"d2": "con:d2"}
        assert bag.sync_actors == {"d2": "syn:d2"}
        con = bag.graph.actor("con:d2")
        # L(c1) + ceil(sz/beta) = 1 + ceil(100/10) = 11
        assert con.execution_time == 11
        syn = bag.graph.actor("syn:d2")
        # w_t2 - omega_t2 = 10 - 5
        assert syn.execution_time == 5

    def test_connection_actor_has_self_edge(self, bag):
        assert bag.graph.channel("self:con:d2").tokens == 1

    def test_buffer_edges_on_cross_channel(self, bag):
        src_buffer = bag.graph.channel("buf_src:d2")
        assert (src_buffer.src, src_buffer.dst) == ("con:d2", "a2")
        assert src_buffer.tokens == 2  # alpha_src
        dst_buffer = bag.graph.channel("buf_dst:d2")
        assert (dst_buffer.src, dst_buffer.dst) == ("a3", "con:d2")
        assert dst_buffer.tokens == 2  # alpha_dst - Tok(d2) = 2 - 0

    def test_result_is_valid_live_graph(self, bag):
        validate_graph(bag.graph)

    def test_binding_aware_throughput_below_ideal(
        self, bag, example_application
    ):
        ideal = throughput(
            example_application.graph, auto_concurrency=False
        ).of("a3")
        bound = throughput(bag.graph).of("a3")
        assert bound < ideal

    def test_self_loop_channel_kept_without_buffer_edge(self, bag):
        assert bag.graph.has_channel("d3")
        assert not bag.graph.has_channel("buf:d3")

    def test_default_slices_are_half_remaining(
        self, example_application, example_architecture, example_binding
    ):
        result = build_binding_aware_graph(
            example_application, example_architecture, example_binding
        )
        assert result.slices == {"t1": 5, "t2": 5}


class TestInfeasibleBindings:
    def test_unbound_actor_rejected(
        self, example_application, example_architecture
    ):
        binding = Binding()
        binding.bind("a1", "t1")
        with pytest.raises(InfeasibleBindingError, match="not bound"):
            build_binding_aware_graph(
                example_application, example_architecture, binding
            )

    def test_unknown_tile_rejected(
        self, example_application, example_architecture
    ):
        binding = Binding()
        for actor in ("a1", "a2", "a3"):
            binding.bind(actor, "ghost")
        with pytest.raises(InfeasibleBindingError, match="unknown tile"):
            build_binding_aware_graph(
                example_application, example_architecture, binding
            )

    def test_uncrossable_channel_rejected(
        self, example_application, example_architecture
    ):
        # d3 is a self edge so it can never cross; force d1 (beta=100) is
        # fine, but forcing d2's endpoints apart is allowed -- instead
        # build a custom app where a low-beta channel must cross.
        binding = Binding()
        binding.bind("a1", "t2")  # d3 self edge stays on t2, fine
        binding.bind("a2", "t1")
        binding.bind("a3", "t1")
        # d1 now crosses t2 -> t1 with beta=100: allowed.  Make it
        # uncrossable and expect failure.
        example_application.set_channel_requirements(
            "d1", token_size=7, buffer_tile=1, bandwidth=0
        )
        with pytest.raises(InfeasibleBindingError, match="beta = 0"):
            build_binding_aware_graph(
                example_application, example_architecture, binding
            )

    def test_missing_connection_rejected(
        self, example_application, example_architecture, example_binding
    ):
        # remove the t1 -> t2 link by rebuilding the architecture
        from repro.arch.architecture import ArchitectureGraph

        stripped = ArchitectureGraph("no-link")
        for tile in example_architecture.tiles:
            stripped.add_tile(tile.copy())
        stripped.add_connection("t2", "t1", 1)  # only the reverse
        with pytest.raises(InfeasibleBindingError, match="no connection"):
            build_binding_aware_graph(
                example_application, stripped, example_binding
            )

    def test_buffer_smaller_than_initial_tokens_rejected(
        self, example_application, example_architecture, example_binding
    ):
        example_application.graph.channel("d1").tokens = 3
        example_application.set_channel_requirements(
            "d1", token_size=7, buffer_tile=1, buffer_src=2, buffer_dst=2,
            bandwidth=100,
        )
        with pytest.raises(InfeasibleBindingError, match="alpha_tile"):
            build_binding_aware_graph(
                example_application, example_architecture, example_binding
            )

    def test_unsupported_processor_rejected(
        self, example_application, example_architecture, example_binding
    ):
        example_application.set_actor_requirements(
            "a3", (example_architecture.tile("t1").processor_type, 3, 13)
        )
        # a3 is bound to t2 whose type p2 is now unsupported
        with pytest.raises(InfeasibleBindingError, match="cannot run"):
            build_binding_aware_graph(
                example_application, example_architecture, example_binding
            )


class TestSliceUpdates:
    def test_update_slices_retargets_sync_actors(self, bag):
        bag.update_slices({"t2": 8})
        assert bag.graph.actor("syn:d2").execution_time == 2

    def test_update_slices_rejects_out_of_range(self, bag):
        with pytest.raises(ValueError):
            bag.update_slices({"t2": 11})

    def test_tile_constraints_sync_with_scheduling(self, bag):
        scheduling = SchedulingFunction()
        scheduling.set_slice("t1", 4)
        scheduling.set_slice("t2", 6)
        scheduling.set_schedule(
            "t1", StaticOrderSchedule(periodic=("a1", "a2"))
        )
        scheduling.set_schedule("t2", StaticOrderSchedule(periodic=("a3",)))
        constraints = bag.tile_constraints(scheduling)
        by_name = {c.name: c for c in constraints}
        assert by_name["t1"].slice_size == 4
        assert by_name["t2"].slice_size == 6
        assert bag.graph.actor("syn:d2").execution_time == 4

    def test_default_tile_constraints_cover_bound_actors(self, bag):
        constraints = bag.default_tile_constraints()
        actors = set()
        for constraint in constraints:
            actors.update(constraint.schedule.actors)
        assert actors == {"a1", "a2", "a3"}

    def test_cross_channels_listed(self, bag):
        assert bag.cross_channels == ["d2"]
