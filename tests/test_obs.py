"""Unit tests for the repro.obs metrics layer."""

import io
import json

import pytest

from repro.obs import (
    JsonSink,
    Metrics,
    NULL_METRICS,
    NullSink,
    SummarySink,
    collecting,
    disable,
    enable,
    format_summary,
    get_metrics,
    to_json,
)


class FakeClock:
    """Deterministic clock: each reading advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestCounters:
    def test_counter_defaults_to_one(self):
        metrics = Metrics()
        metrics.counter("hits")
        metrics.counter("hits")
        assert metrics.snapshot()["counters"]["hits"] == 2

    def test_counter_accumulates_values(self):
        metrics = Metrics()
        metrics.counter("states", 10)
        metrics.counter("states", 32)
        assert metrics.snapshot()["counters"]["states"] == 42

    def test_gauge_keeps_last_value(self):
        metrics = Metrics()
        metrics.gauge("size", 5)
        metrics.gauge("size", 3)
        assert metrics.snapshot()["gauges"]["size"] == 3


class TestTimers:
    def test_timer_aggregates_count_and_total(self):
        metrics = Metrics(clock=FakeClock(step=1.0))
        with metrics.timer("phase"):
            pass
        with metrics.timer("phase"):
            pass
        stat = metrics.snapshot()["timers"]["phase"]
        assert stat["count"] == 2
        assert stat["total_seconds"] == pytest.approx(2.0)
        assert stat["min_seconds"] == pytest.approx(1.0)
        assert stat["max_seconds"] == pytest.approx(1.0)

    def test_observe_feeds_timer_directly(self):
        metrics = Metrics()
        metrics.observe("engine", 0.25)
        metrics.observe("engine", 0.75)
        stat = metrics.snapshot()["timers"]["engine"]
        assert stat["count"] == 2
        assert stat["total_seconds"] == pytest.approx(1.0)
        assert stat["min_seconds"] == pytest.approx(0.25)
        assert stat["max_seconds"] == pytest.approx(0.75)

    def test_nested_timers_are_independent(self):
        metrics = Metrics(clock=FakeClock(step=1.0))
        with metrics.timer("outer"):
            with metrics.timer("inner"):
                pass
        timers = metrics.snapshot()["timers"]
        assert timers["outer"]["count"] == 1
        assert timers["inner"]["count"] == 1
        # the fake clock ticks once per reading: outer spans 3 ticks
        assert timers["outer"]["total_seconds"] > timers["inner"]["total_seconds"]


class TestSpans:
    def test_span_nesting_builds_a_tree(self):
        metrics = Metrics()
        with metrics.span("parent") as parent:
            parent.set("k", "v")
            with metrics.span("child"):
                pass
        spans = metrics.snapshot()["spans"]
        assert len(spans) == 1
        assert spans[0]["name"] == "parent"
        assert spans[0]["attributes"] == {"k": "v"}
        assert [c["name"] for c in spans[0]["children"]] == ["child"]

    def test_sequential_spans_are_both_roots(self):
        metrics = Metrics()
        with metrics.span("first"):
            pass
        with metrics.span("second"):
            pass
        assert [s["name"] for s in metrics.snapshot()["spans"]] == [
            "first",
            "second",
        ]

    def test_span_attributes_via_kwargs(self):
        metrics = Metrics()
        with metrics.span("s", graph="g1"):
            pass
        assert metrics.snapshot()["spans"][0]["attributes"] == {"graph": "g1"}

    def test_open_spans_are_not_exported(self):
        metrics = Metrics()
        span = metrics.span("open")
        span.__enter__()
        assert metrics.snapshot()["spans"] == []

    def test_span_durations_use_the_clock(self):
        metrics = Metrics(clock=FakeClock(step=2.0))
        with metrics.span("timed"):
            pass
        assert metrics.snapshot()["spans"][0]["seconds"] == pytest.approx(2.0)


class TestSnapshotExport:
    def test_json_round_trip(self):
        metrics = Metrics()
        metrics.counter("c", 3)
        metrics.gauge("g", 7)
        metrics.observe("t", 0.5)
        with metrics.span("s", key="value"):
            pass
        restored = json.loads(to_json(metrics.snapshot()))
        assert restored["counters"] == {"c": 3}
        assert restored["gauges"] == {"g": 7}
        assert restored["timers"]["t"]["count"] == 1
        assert restored["spans"][0]["name"] == "s"
        assert restored["spans"][0]["attributes"] == {"key": "value"}

    def test_non_json_values_are_stringified(self):
        from fractions import Fraction

        metrics = Metrics()
        metrics.gauge("rate", Fraction(1, 3))
        restored = json.loads(to_json(metrics.snapshot()))
        assert restored["gauges"]["rate"] == "1/3"

    def test_json_sink_writes_file(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        metrics = Metrics(sink=JsonSink(path))
        metrics.counter("c")
        metrics.flush()
        assert json.load(open(path))["counters"] == {"c": 1}

    def test_json_sink_writes_stream(self):
        stream = io.StringIO()
        JsonSink(stream).emit({"counters": {"x": 1}})
        assert json.loads(stream.getvalue())["counters"] == {"x": 1}

    def test_summary_sink_renders_names(self):
        stream = io.StringIO()
        metrics = Metrics(sink=SummarySink(stream))
        metrics.counter("engine.states", 12)
        metrics.observe("engine.run", 0.001)
        with metrics.span("top"):
            pass
        metrics.flush()
        text = stream.getvalue()
        assert "engine.states: 12" in text
        assert "engine.run" in text
        assert "top" in text

    def test_empty_summary_has_placeholder(self):
        assert format_summary(Metrics().snapshot()) == "(no metrics recorded)"

    def test_reset_clears_everything(self):
        metrics = Metrics()
        metrics.counter("c")
        metrics.observe("t", 1.0)
        with metrics.span("s"):
            pass
        metrics.reset()
        assert metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "timers": {},
            "histograms": {},
            "spans": [],
        }


class TestNullRegistry:
    def test_default_registry_is_disabled(self):
        metrics = get_metrics()
        assert metrics is NULL_METRICS
        assert not metrics.enabled

    def test_null_operations_record_nothing(self):
        null = NULL_METRICS
        null.counter("c", 5)
        null.gauge("g", 1)
        null.observe("t", 1.0)
        with null.timer("t"):
            pass
        with null.span("s", k=1) as span:
            span.set("x", 2)
        assert null.snapshot() == {
            "counters": {},
            "gauges": {},
            "timers": {},
            "histograms": {},
            "spans": [],
        }

    def test_null_sink_discards(self):
        NullSink().emit({"counters": {"a": 1}})  # must not raise

    def test_enable_disable_swaps_active_registry(self):
        metrics = enable()
        try:
            assert get_metrics() is metrics
            metrics.counter("c")
        finally:
            disable()
        assert get_metrics() is NULL_METRICS
        assert metrics.snapshot()["counters"] == {"c": 1}

    def test_collecting_restores_on_exit(self):
        with collecting() as metrics:
            assert get_metrics() is metrics
        assert get_metrics() is NULL_METRICS

    def test_collecting_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with collecting():
                raise RuntimeError("boom")
        assert get_metrics() is NULL_METRICS

    def test_flush_without_sink_is_safe(self):
        Metrics().flush()  # default sink is the null sink


class TestEngineIntegration:
    def test_state_space_counters_recorded(self, simple_cycle_graph):
        from repro.throughput.state_space import throughput

        with collecting() as metrics:
            result = throughput(simple_cycle_graph)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["state_space.executions"] == 1
        assert (
            snapshot["counters"]["state_space.states"]
            == result.states_explored
        )
        assert snapshot["timers"]["state_space.execute"]["count"] == 1
        span = snapshot["spans"][0]
        assert span["name"] == "state_space.throughput"
        assert span["attributes"]["states"] == result.states_explored

    def test_disabled_collection_leaves_no_trace(self, simple_cycle_graph):
        from repro.throughput.state_space import throughput

        throughput(simple_cycle_graph)
        assert get_metrics().snapshot()["counters"] == {}

    def test_allocation_spans_and_phase_timers(self):
        from repro.appmodel.example import (
            paper_example_application,
            paper_example_architecture,
        )
        from repro.core.strategy import ResourceAllocator

        with collecting() as metrics:
            ResourceAllocator().allocate(
                paper_example_application(), paper_example_architecture()
            )
        snapshot = metrics.snapshot()
        for phase in (
            "allocate.binding",
            "allocate.scheduling",
            "allocate.slices",
        ):
            assert snapshot["timers"][phase]["count"] == 1
        allocate_spans = [
            s for s in snapshot["spans"] if s["name"] == "allocate"
        ]
        assert allocate_spans[0]["attributes"]["outcome"] == "allocated"
        assert snapshot["counters"]["slices.throughput_checks"] >= 1


class TestSinkEdgeCases:
    def test_format_summary_on_the_empty_null_snapshot(self):
        from repro.obs import NULL_METRICS

        assert format_summary(NULL_METRICS.snapshot()) == (
            "(no metrics recorded)"
        )

    def test_format_summary_with_only_gauges(self):
        metrics = Metrics()
        metrics.gauge("flow.applications_bound", 4)
        text = format_summary(metrics.snapshot())
        assert "flow.applications_bound" in text
        assert "4" in text

    def test_fraction_gauges_survive_to_json_and_back(self):
        from fractions import Fraction

        metrics = Metrics()
        metrics.gauge("rate.exact", Fraction(7, 12))
        metrics.gauge("rate.whole", Fraction(3, 1))
        restored = json.loads(to_json(metrics.snapshot()))
        assert restored["gauges"]["rate.exact"] == "7/12"
        assert restored["gauges"]["rate.whole"] == "3"

    def test_infinite_timer_min_is_never_exported(self):
        metrics = Metrics()
        stat = metrics.snapshot()
        metrics.observe("t", 0.5)
        stat = metrics.snapshot()["timers"]["t"]
        assert stat["min_seconds"] == 0.5
        json.dumps(stat)


class TestThreadSafety:
    def test_concurrent_recording_is_not_lost(self):
        import threading

        metrics = Metrics()

        def record():
            for _ in range(1000):
                metrics.counter("shared")
                metrics.observe("timer", 0.001)
                metrics.gauge("last", 1)

        threads = [threading.Thread(target=record) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["shared"] == 4000
        assert snapshot["timers"]["timer"]["count"] == 4000

    def test_concurrent_spans_all_reach_the_tree(self):
        import threading

        metrics = Metrics()

        def record(index):
            for _ in range(100):
                with metrics.span(f"worker-{index}"):
                    pass

        threads = [
            threading.Thread(target=record, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = metrics.snapshot()
        # interleaved exits may nest spans under a concurrent sibling,
        # but no span may be silently dropped
        def count(spans):
            return sum(1 + count(s.get("children", [])) for s in spans)

        assert count(snapshot["spans"]) == 400
