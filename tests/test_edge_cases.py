"""Edge cases and failure injection across the stack.

These tests target the corners the happy-path suites skip: occupied
architectures, degenerate graphs, exotic rate combinations, and the
exact failure surfaced for each broken input.
"""

from fractions import Fraction

import pytest

from repro.appmodel.application import ApplicationGraph
from repro.appmodel.binding import Binding
from repro.appmodel.binding_aware import build_binding_aware_graph
from repro.appmodel.example import (
    PROCESSOR_P1,
    PROCESSOR_P2,
    paper_example_application,
    paper_example_architecture,
)
from repro.arch.architecture import ArchitectureGraph
from repro.arch.tile import ProcessorType, Tile
from repro.core.strategy import AllocationError, ResourceAllocator
from repro.core.tile_cost import CostWeights
from repro.sdf.graph import SDFGraph
from repro.throughput.state_space import throughput


class TestDegenerateGraphs:
    def test_single_actor_with_self_loop(self):
        graph = SDFGraph("solo")
        graph.add_actor("a", 7)
        graph.add_channel("s", "a", "a", tokens=1)
        result = throughput(graph)
        assert result.of("a") == Fraction(1, 7)

    def test_single_actor_multiple_self_loops(self):
        graph = SDFGraph("solo")
        graph.add_actor("a", 4)
        graph.add_channel("s1", "a", "a", tokens=2)
        graph.add_channel("s2", "a", "a", tokens=1)
        # the tighter loop (1 token) wins
        assert throughput(graph).of("a") == Fraction(1, 4)

    def test_parallel_channels_both_respected(self):
        graph = SDFGraph("par")
        graph.add_actor("a", 1)
        graph.add_actor("b", 1)
        graph.add_channel("f1", "a", "b")
        graph.add_channel("f2", "a", "b", tokens=5)
        graph.add_channel("r", "b", "a", tokens=1)
        # f1 (0 tokens) is the binding forward constraint
        assert throughput(graph).iteration_rate == Fraction(1, 2)

    def test_large_rates_small_gamma(self):
        graph = SDFGraph("big-rates")
        graph.add_actor("a", 1)
        graph.add_actor("b", 1)
        graph.add_channel("ab", "a", "b", 1000, 1000, 0)
        graph.add_channel("ba", "b", "a", 1000, 1000, 1000)
        assert throughput(graph).iteration_rate == Fraction(1, 2)

    def test_huge_execution_times_stay_exact(self):
        graph = SDFGraph("slow")
        graph.add_actor("a", 10**9)
        graph.add_channel("s", "a", "a", tokens=1)
        assert throughput(graph).of("a") == Fraction(1, 10**9)


class TestOccupiedArchitectures:
    def test_allocation_on_partially_used_platform(self):
        application = paper_example_application(Fraction(1, 100))
        architecture = paper_example_architecture()
        architecture.tile("t1").wheel_occupied = 8
        architecture.tile("t2").wheel_occupied = 8
        allocation = ResourceAllocator().allocate(application, architecture)
        for tile, size in allocation.scheduling.slices.items():
            assert size <= 2

    def test_fully_occupied_wheel_fails_cleanly(self):
        application = paper_example_application(Fraction(1, 100))
        architecture = paper_example_architecture()
        for tile in architecture.tiles:
            tile.wheel_occupied = tile.wheel
        with pytest.raises(AllocationError):
            ResourceAllocator().allocate(application, architecture)

    def test_memory_pressure_redirects_binding(self):
        application = paper_example_application(Fraction(1, 100))
        architecture = paper_example_architecture()
        # t1 is nearly full: not even the smallest actor fits there
        architecture.tile("t1").memory_occupied = 695
        allocation = ResourceAllocator(
            weights=CostWeights(0, 0, 1)
        ).allocate(application, architecture)
        # (0,0,1) normally clusters on t1; the whole app moves to t2
        assert set(allocation.binding.assignment.values()) == {"t2"}

    def test_greedy_binding_has_no_backtracking(self):
        """A faithful limit of the strategy: once an early actor claims
        a nearly-full tile, later actors whose channels charge memory on
        that tile can become unplaceable, even though a different first
        placement would have worked."""
        application = paper_example_application(Fraction(1, 100))
        architecture = paper_example_architecture()
        architecture.tile("t1").memory_occupied = 680  # 20 bits free
        with pytest.raises(AllocationError, match="memory"):
            ResourceAllocator(weights=CostWeights(0, 0, 1)).allocate(
                application, architecture
            )

    def test_occupancy_is_cumulative_and_reversible(self):
        application = paper_example_application(Fraction(1, 100))
        architecture = paper_example_architecture()
        allocation = ResourceAllocator().allocate(application, architecture)
        allocation.reservation.commit(architecture)
        used = architecture.total_usage()
        allocation.reservation.rollback(architecture)
        assert architecture.total_usage()["timewheel"] == 0
        assert used["timewheel"] > 0


class TestHeterogeneityCorners:
    def build_arch(self, count, processor):
        architecture = ArchitectureGraph("hetero")
        for index in range(count):
            architecture.add_tile(
                Tile(
                    name=f"t{index}",
                    processor_type=processor[index],
                    wheel=50,
                    memory=10_000,
                    max_connections=8,
                    bandwidth_in=500,
                    bandwidth_out=500,
                )
            )
        names = architecture.tile_names
        for a in names:
            for b in names:
                if a != b:
                    architecture.add_connection(a, b, 1)
        return architecture

    def test_actor_forced_to_unique_supporting_tile(self):
        graph = SDFGraph("forced")
        graph.add_actor("x", 1)
        graph.add_actor("y", 1)
        graph.add_channel("xy", "x", "y")
        graph.add_channel("yx", "y", "x", tokens=2)
        app = ApplicationGraph(graph, throughput_constraint=Fraction(1, 50))
        app.set_actor_requirements("x", (PROCESSOR_P1, 1, 10))
        app.set_actor_requirements("y", (PROCESSOR_P2, 1, 10))
        app.set_channel_requirements("xy", token_size=4, bandwidth=10)
        app.set_channel_requirements("yx", token_size=4, bandwidth=10)
        architecture = self.build_arch(
            3, [PROCESSOR_P1, PROCESSOR_P1, PROCESSOR_P2]
        )
        allocation = ResourceAllocator().allocate(app, architecture)
        assert allocation.binding.tile_of("y") == "t2"

    def test_cluster_weight_cannot_beat_type_restrictions(self):
        graph = SDFGraph("forced2")
        graph.add_actor("x", 1)
        graph.add_actor("y", 1)
        graph.add_channel("xy", "x", "y")
        graph.add_channel("yx", "y", "x", tokens=2)
        app = ApplicationGraph(graph, throughput_constraint=0)
        app.set_actor_requirements("x", (PROCESSOR_P1, 1, 10))
        app.set_actor_requirements("y", (PROCESSOR_P2, 1, 10))
        app.set_channel_requirements("xy", token_size=4, bandwidth=10)
        app.set_channel_requirements("yx", token_size=4, bandwidth=10)
        architecture = self.build_arch(2, [PROCESSOR_P1, PROCESSOR_P2])
        allocation = ResourceAllocator(
            weights=CostWeights(0, 0, 1)
        ).allocate(app, architecture)
        # clustering impossible: the channel must cross
        assert allocation.binding.tile_of("x") != allocation.binding.tile_of(
            "y"
        )


class TestApplicationCopy:
    def test_copy_is_deep(self):
        application = paper_example_application()
        clone = application.copy()
        clone.set_channel_requirements("d1", token_size=999, bandwidth=1)
        clone.graph.actor("a1").execution_time = 42
        assert application.channel("d1").token_size == 7
        assert application.graph.actor("a1").execution_time == 1

    def test_copy_allocates_identically(self):
        application = paper_example_application(Fraction(1, 60))
        clone = application.copy()
        architecture = paper_example_architecture()
        first = ResourceAllocator().allocate(application, architecture)
        second = ResourceAllocator().allocate(clone, architecture.copy())
        assert first.binding.assignment == second.binding.assignment
        assert first.scheduling.slices == second.scheduling.slices


class TestBindingAwareCorners:
    def test_multirate_cross_tile_channel(self):
        graph = SDFGraph("mrx")
        graph.add_actor("p", 1)
        graph.add_actor("c", 1)
        graph.add_channel("d", "p", "c", 3, 2, 0)
        graph.add_channel("r", "c", "p", 2, 3, 6)
        app = ApplicationGraph(graph, throughput_constraint=0)
        app.set_actor_requirements("p", (PROCESSOR_P1, 1, 10))
        app.set_actor_requirements("c", (PROCESSOR_P2, 1, 10))
        app.set_channel_requirements(
            "d", token_size=4, buffer_src=6, buffer_dst=6, bandwidth=10
        )
        app.set_channel_requirements(
            "r", token_size=4, buffer_src=9, buffer_dst=9, bandwidth=10
        )
        architecture = paper_example_architecture()
        binding = Binding()
        binding.bind("p", "t1")
        binding.bind("c", "t2")
        bag = build_binding_aware_graph(app, architecture, binding)
        # gamma(p)=2, gamma(c)=3 -> connection actor fires 6 per iteration
        from repro.sdf.repetition import repetition_vector

        gamma = repetition_vector(bag.graph)
        assert gamma["con:d"] == 6
        assert gamma["syn:d"] == 6
        result = throughput(bag.graph)
        assert result.iteration_rate > 0

    def test_initial_tokens_on_cross_channel_start_at_destination(self):
        graph = SDFGraph("tok")
        graph.add_actor("p", 1)
        graph.add_actor("c", 5)
        graph.add_channel("d", "p", "c", 1, 1, 2)
        graph.add_channel("r", "c", "p", 1, 1, 1)
        app = ApplicationGraph(graph, throughput_constraint=0)
        app.set_actor_requirements("p", (PROCESSOR_P1, 1, 10))
        app.set_actor_requirements("c", (PROCESSOR_P2, 5, 10))
        app.set_channel_requirements(
            "d", token_size=4, buffer_src=3, buffer_dst=3, bandwidth=10
        )
        app.set_channel_requirements(
            "r", token_size=4, buffer_src=3, buffer_dst=3, bandwidth=10
        )
        architecture = paper_example_architecture()
        binding = Binding()
        binding.bind("p", "t1")
        binding.bind("c", "t2")
        bag = build_binding_aware_graph(app, architecture, binding)
        # c can fire immediately from the 2 initial tokens on syn->c
        assert bag.graph.channel("dst:d").tokens == 2
        assert bag.graph.channel("buf_dst:d").tokens == 1  # 3 - 2


class TestFlowEdgeCases:
    def test_empty_application_list(self):
        from repro.core.flow import allocate_until_failure

        architecture = paper_example_architecture()
        result = allocate_until_failure(architecture, [])
        assert result.applications_bound == 0
        assert result.failed_application is None
        assert result.resource_capacity["timewheel"] > 0

    def test_failure_reason_is_informative(self):
        from repro.core.flow import allocate_until_failure

        architecture = paper_example_architecture()
        impossible = paper_example_application(Fraction(1, 2))
        result = allocate_until_failure(architecture, [impossible])
        assert result.applications_bound == 0
        assert "paper-example-app" in result.failure_reason

    def test_first_failure_recorded_even_when_continuing(self):
        from repro.core.flow import allocate_until_failure

        architecture = paper_example_architecture()
        apps = [
            paper_example_application(Fraction(1, 2)),   # impossible
            paper_example_application(Fraction(1, 3)),   # impossible too
            paper_example_application(Fraction(1, 200)),  # fine
        ]
        result = allocate_until_failure(
            architecture, apps, continue_after_failure=True
        )
        assert result.applications_bound == 1
        assert result.failed_application == apps[0].name


class TestSchedulingEdgeCases:
    def test_single_actor_application(self):
        from repro.appmodel.application import ApplicationGraph
        from repro.core.strategy import ResourceAllocator
        from repro.sdf.graph import SDFGraph

        graph = SDFGraph("solo")
        graph.add_actor("only", 3)
        graph.add_channel("self", "only", "only", tokens=1)
        app = ApplicationGraph(graph, throughput_constraint=Fraction(1, 100))
        app.set_actor_requirements("only", (PROCESSOR_P1, 3, 10))
        app.set_channel_requirements("self", token_size=1, bandwidth=0)
        architecture = paper_example_architecture()
        allocation = ResourceAllocator().allocate(app, architecture)
        assert allocation.satisfied
        (tile,) = allocation.binding.used_tiles()
        assert allocation.scheduling.schedule_of(tile).periodic == ("only",)

    def test_throughput_constraint_zero_still_schedules(self):
        from repro.core.strategy import ResourceAllocator

        app = paper_example_application(throughput_constraint=0)
        architecture = paper_example_architecture()
        allocation = ResourceAllocator().allocate(app, architecture)
        # zero constraint: minimal one-unit slices are enough
        assert set(allocation.scheduling.slices.values()) == {1}
        assert allocation.satisfied
