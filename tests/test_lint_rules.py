"""Adversarial inputs for the lint rule catalogue (docs/ANALYSIS.md).

Every test feeds one deliberately broken model to the analysis engine
and pins down the finding: rule ID, severity, and where the location
points.  The serializer-threaded file/field locations are covered by
``tests/test_lint_cli.py``; here the models are API-built, so the
element part of the location carries the identification.
"""

from fractions import Fraction

import pytest

from repro.analysis import (
    ERROR,
    INFO,
    WARNING,
    analyse_application,
    analyse_architecture,
    analyse_bundle,
    analyse_csdf,
    analyse_graph,
    serialisation_bound,
    static_throughput_bound,
    utilisation_bound,
)
from repro.appmodel.application import ApplicationGraph
from repro.arch.architecture import ArchitectureGraph
from repro.arch.tile import ProcessorType, Tile
from repro.csdf.graph import CSDFGraph
from repro.sdf.graph import SDFGraph

RISC = ProcessorType("risc")
DSP = ProcessorType("dsp")


def tile(name, processor_type=RISC, wheel=10, occupied=0):
    return Tile(
        name=name,
        processor_type=processor_type,
        wheel=wheel,
        memory=1000,
        max_connections=4,
        bandwidth_in=100,
        bandwidth_out=100,
        wheel_occupied=occupied,
    )


def findings(report, rule_id):
    return [d for d in report if d.rule_id == rule_id]


# ---------------------------------------------------------------------------
# SDF rules


class TestSDFRules:
    def test_sdf001_inconsistent_rates_points_at_conflicting_channel(self):
        graph = SDFGraph("broken")
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_channel("d0", "a", "b", production=2, consumption=3)
        graph.add_channel("d1", "a", "b", production=1, consumption=1)
        (finding,) = findings(analyse_graph(graph), "SDF001")
        assert finding.severity == ERROR
        assert finding.location.element == "channel 'd1'"
        assert "inconsistent rates" in finding.message
        assert finding.hint is not None

    def test_sdf002_structural_deadlock_names_stalled_actors(self):
        graph = SDFGraph("deadlocked")
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_channel("d0", "a", "b")
        graph.add_channel("d1", "b", "a")  # tokenless cycle
        (finding,) = findings(analyse_graph(graph), "SDF002")
        assert finding.severity == ERROR
        assert finding.location.element == "graph 'deadlocked'"
        assert "a" in finding.message and "b" in finding.message

    def test_sdf002_skipped_when_graph_is_inconsistent(self):
        graph = SDFGraph("broken")
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_channel("d0", "a", "b", production=2, consumption=3)
        graph.add_channel("d1", "a", "b", production=1, consumption=1)
        assert not findings(analyse_graph(graph), "SDF002")

    def test_sdf003_dead_actor(self):
        graph = SDFGraph("dead")
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_actor("lonely")
        graph.add_channel("d0", "a", "b", tokens=1)
        (finding,) = findings(analyse_graph(graph), "SDF003")
        assert finding.severity == WARNING
        assert finding.location.element == "actor 'lonely'"

    def test_sdf004_starved_self_loop(self):
        graph = SDFGraph("starved")
        graph.add_actor("a")
        graph.add_channel("loop", "a", "a", consumption=2, tokens=1)
        (finding,) = findings(analyse_graph(graph), "SDF004")
        assert finding.severity == ERROR
        assert finding.location.element == "channel 'loop'"

    def test_sdf005_serialised_self_loop_is_info(self):
        graph = SDFGraph("serial")
        graph.add_actor("a")
        graph.add_channel("loop", "a", "a", tokens=1)
        (finding,) = findings(analyse_graph(graph), "SDF005")
        assert finding.severity == INFO
        report = analyse_graph(graph)
        assert not report.has_errors

    def test_sdf006_disconnected_components(self):
        graph = SDFGraph("split")
        for name in ("a", "b", "c", "d"):
            graph.add_actor(name)
        graph.add_channel("d0", "a", "b", tokens=1)
        graph.add_channel("d1", "c", "d", tokens=1)
        (finding,) = findings(analyse_graph(graph), "SDF006")
        assert finding.severity == WARNING
        assert "2 independent components" in finding.message

    def test_clean_graph_has_no_findings(self):
        graph = SDFGraph("clean")
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_channel("d0", "a", "b")
        graph.add_channel("d1", "b", "a", tokens=1)
        assert len(analyse_graph(graph)) == 0


# ---------------------------------------------------------------------------
# CSDF rules


class TestCSDFRules:
    def test_csd001_inconsistent_cycle_totals(self):
        graph = CSDFGraph("broken")
        graph.add_actor("a", [1, 1])
        graph.add_actor("b", [1])
        graph.add_channel("d0", "a", "b", productions=[1, 2], consumptions=[3])
        graph.add_channel("d1", "a", "b", productions=[1, 1], consumptions=[1])
        (finding,) = findings(analyse_csdf(graph), "CSD001")
        assert finding.severity == ERROR
        assert finding.location.element == "channel 'd1'"

    def test_csd002_phase_accurate_deadlock(self):
        graph = CSDFGraph("deadlocked")
        graph.add_actor("a", [1])
        graph.add_actor("b", [1])
        graph.add_channel("d0", "a", "b", productions=[1], consumptions=[1])
        graph.add_channel("d1", "b", "a", productions=[1], consumptions=[1])
        (finding,) = findings(analyse_csdf(graph), "CSD002")
        assert finding.severity == ERROR
        assert finding.location.element == "graph 'deadlocked'"

    def test_csd003_dead_actor(self):
        graph = CSDFGraph("dead")
        graph.add_actor("a", [1])
        graph.add_actor("b", [1])
        graph.add_actor("lonely", [1, 2])
        graph.add_channel(
            "d0", "a", "b", productions=[1], consumptions=[1], tokens=1
        )
        (finding,) = findings(analyse_csdf(graph), "CSD003")
        assert finding.severity == WARNING
        assert finding.location.element == "actor 'lonely'"


# ---------------------------------------------------------------------------
# Architecture rules


class TestArchitectureRules:
    def test_arc001_isolated_tile(self):
        architecture = ArchitectureGraph("arch")
        architecture.add_tile(tile("t1"))
        architecture.add_tile(tile("t2"))
        architecture.add_tile(tile("t3"))
        architecture.add_connection("t1", "t2")
        architecture.add_connection("t2", "t1")
        (finding,) = findings(analyse_architecture(architecture), "ARC001")
        assert finding.severity == WARNING
        assert finding.location.element == "tile 't3'"

    def test_arc002_dead_connection(self):
        architecture = ArchitectureGraph("arch")
        dead = tile("t1")
        dead.bandwidth_out = 0
        architecture.add_tile(dead)
        architecture.add_tile(tile("t2"))
        architecture.add_connection("t1", "t2")
        (finding,) = findings(analyse_architecture(architecture), "ARC002")
        assert finding.severity == WARNING
        assert finding.location.element == "connection t1->t2"
        assert "'t1' has no outgoing bandwidth" in finding.message

    def test_arc003_exhausted_wheel(self):
        architecture = ArchitectureGraph("arch")
        architecture.add_tile(tile("t1", wheel=10, occupied=10))
        (finding,) = findings(analyse_architecture(architecture), "ARC003")
        assert finding.severity == WARNING
        assert finding.location.element == "tile 't1'"
        assert "10/10" in finding.message


# ---------------------------------------------------------------------------
# Application rules


def two_actor_application(constraint=Fraction(0)):
    graph = SDFGraph("app")
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_channel("d0", "a", "b")
    graph.add_channel("d1", "b", "a", tokens=1)
    return ApplicationGraph(
        graph, throughput_constraint=constraint, output_actor="b"
    )


class TestApplicationRules:
    def test_app001_missing_gamma_entry(self):
        application = two_actor_application()
        application.set_actor_requirements("a", (RISC, 2, 10))
        # "b" keeps its default empty requirements: no Γ entry
        (finding,) = findings(analyse_application(application), "APP001")
        assert finding.severity == ERROR
        assert finding.location.element == "actor 'b'"

    def test_app002_constraint_exceeds_serialisation_bound(self):
        application = two_actor_application(constraint=Fraction(1))
        application.set_actor_requirements("a", (RISC, 4, 10))
        application.set_actor_requirements("b", (RISC, 2, 10))
        bound, limiting = serialisation_bound(application)
        assert bound == Fraction(1, 4) and limiting == "a"
        (finding,) = findings(analyse_application(application), "APP002")
        assert finding.severity == ERROR
        assert finding.location.element == "throughput constraint"
        assert "serialisation bound 1/4" in finding.message
        assert "'a'" in finding.message

    def test_app002_not_raised_for_achievable_constraint(self):
        application = two_actor_application(constraint=Fraction(1, 4))
        application.set_actor_requirements("a", (RISC, 4, 10))
        application.set_actor_requirements("b", (RISC, 2, 10))
        assert not findings(analyse_application(application), "APP002")

    def test_app003_constraint_exceeds_platform_capacity(self):
        # serialisation allows 1 firing per time unit, but the platform
        # only has half a wheel left for two units of work per iteration
        application = two_actor_application(constraint=Fraction(1, 2))
        application.set_actor_requirements("a", (RISC, 1, 10))
        application.set_actor_requirements("b", (RISC, 1, 10))
        architecture = ArchitectureGraph("small")
        architecture.add_tile(tile("t1", wheel=10, occupied=5))
        assert utilisation_bound(application, architecture) == Fraction(1, 4)
        report = analyse_application(application, architecture)
        assert not findings(report, "APP002")
        (finding,) = findings(report, "APP003")
        assert finding.severity == ERROR
        assert finding.location.element == "throughput constraint"
        assert "utilisation bound 1/4" in finding.message

    def test_static_bound_is_min_of_both(self):
        application = two_actor_application()
        application.set_actor_requirements("a", (RISC, 1, 10))
        application.set_actor_requirements("b", (RISC, 1, 10))
        architecture = ArchitectureGraph("small")
        architecture.add_tile(tile("t1", wheel=10, occupied=5))
        assert static_throughput_bound(application) == Fraction(1)
        assert static_throughput_bound(application, architecture) == (
            Fraction(1, 4)
        )

    def test_app004_actor_unsupported_on_platform(self):
        application = two_actor_application()
        application.set_actor_requirements("a", (RISC, 1, 10))
        application.set_actor_requirements("b", (DSP, 1, 10))
        architecture = ArchitectureGraph("risc-only")
        architecture.add_tile(tile("t1", processor_type=RISC))
        (finding,) = findings(
            analyse_application(application, architecture), "APP004"
        )
        assert finding.severity == ERROR
        assert finding.location.element == "actor 'b'"
        assert "dsp" in finding.message

    def test_app005_uncrossable_channel_cannot_colocate(self):
        application = two_actor_application()
        application.set_actor_requirements("a", (RISC, 1, 10))
        application.set_actor_requirements("b", (DSP, 1, 10))
        # both channels default to bandwidth 0, so they must stay local,
        # yet the endpoint type sets are disjoint
        report = analyse_application(application)
        found = findings(report, "APP005")
        assert {f.location.element for f in found} == {
            "channel 'd0'",
            "channel 'd1'",
        }
        assert all(f.severity == ERROR for f in found)

    def test_app005_quiet_when_channel_has_bandwidth(self):
        application = two_actor_application()
        application.set_actor_requirements("a", (RISC, 1, 10))
        application.set_actor_requirements("b", (DSP, 1, 10))
        application.set_channel_requirements("d0", bandwidth=4)
        application.set_channel_requirements("d1", bandwidth=4)
        assert not findings(analyse_application(application), "APP005")


# ---------------------------------------------------------------------------
# Allocation bundle rules


def bundle(allocations, wheel=10):
    return {
        "architecture": {"tiles": [{"name": "t1", "wheel": wheel}]},
        "allocations": allocations,
    }


class TestBundleRules:
    def test_alloc001_single_slice_exceeds_wheel(self):
        report = analyse_bundle(
            bundle([{"reservation": {"t1": {"time_slice": 12}}}]),
            source="bundle.json",
        )
        found = findings(report, "ALLOC001")
        # the single 12-unit slice trips the per-allocation check and,
        # being the only claim, the aggregate check as well
        assert len(found) == 2
        finding = found[0]
        assert finding.severity == ERROR
        assert finding.location.source == "bundle.json"
        assert finding.location.field == "allocations[0].reservation[t1]"

    def test_alloc001_aggregate_oversubscription(self):
        report = analyse_bundle(
            bundle(
                [
                    {"reservation": {"t1": {"time_slice": 6}}},
                    {"reservation": {"t1": {"time_slice": 6}}},
                ]
            )
        )
        (finding,) = findings(report, "ALLOC001")
        assert finding.severity == ERROR
        assert "together claim 12" in finding.message
        assert finding.hint is not None

    def test_alloc001_quiet_when_wheel_fits(self):
        report = analyse_bundle(
            bundle(
                [
                    {"reservation": {"t1": {"time_slice": 5}}},
                    {"reservation": {"t1": {"time_slice": 5}}},
                ]
            )
        )
        assert not findings(report, "ALLOC001")

    def test_alloc002_schedule_binding_mismatch(self):
        report = analyse_bundle(
            bundle(
                [
                    {
                        "binding": {"a": "t1"},
                        "schedules": {"t1": {"periodic": ["x"]}},
                    }
                ]
            )
        )
        found = findings(report, "ALLOC002")
        assert len(found) == 2  # 'a' missing + 'x' extra
        assert all(f.severity == ERROR for f in found)
        assert all(
            f.location.field == "allocations[0].schedules[t1]" for f in found
        )

    def test_alloc002_skips_schedule_free_baseline_allocations(self):
        report = analyse_bundle(bundle([{"binding": {"a": "t1"}}]))
        assert not findings(report, "ALLOC002")

    def test_alloc003_unknown_tile(self):
        report = analyse_bundle(
            bundle(
                [
                    {
                        "binding": {"a": "ghost"},
                        "reservation": {"ghost": {"time_slice": 1}},
                    }
                ]
            )
        )
        found = findings(report, "ALLOC003")
        assert len(found) == 2  # binding + reservation
        assert {f.location.field for f in found} == {
            "allocations[0].binding[a]",
            "allocations[0].reservation[ghost]",
        }


# ---------------------------------------------------------------------------
# Report mechanics exercised through real findings


class TestReportMechanics:
    def test_fingerprints_distinguish_same_rule_in_two_places(self):
        graph = SDFGraph("dead")
        for name in ("a", "b", "x", "y"):
            graph.add_actor(name)
        graph.add_channel("d0", "a", "b", tokens=1)
        report = analyse_graph(graph)
        dead = findings(report, "SDF003")
        assert len(dead) == 2
        assert dead[0].fingerprint != dead[1].fingerprint

    def test_select_and_ignore_filter_by_prefix(self):
        graph = SDFGraph("split")
        for name in ("a", "b", "c", "d"):
            graph.add_actor(name)
        graph.add_channel("d0", "a", "b", tokens=1)
        graph.add_channel("d1", "c", "d", tokens=1)
        report = analyse_graph(graph)
        assert {d.rule_id for d in report.select(["SDF006"])} == {"SDF006"}
        assert "SDF006" not in {d.rule_id for d in report.ignore(["SDF006"])}

    def test_summary_names_the_worst_finding(self):
        graph = SDFGraph("broken")
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_channel("d0", "a", "b", production=2, consumption=3)
        graph.add_channel("d1", "a", "b", production=1, consumption=1)
        summary = analyse_graph(graph).summary()
        assert summary.startswith("SDF001:")

    def test_unknown_severity_rejected(self):
        from repro.analysis import Diagnostic

        with pytest.raises(ValueError):
            Diagnostic("XXX001", "fatal", "nope")
