"""Unit tests for the application model (Gamma, Theta, lambda)."""

from fractions import Fraction

import pytest

from repro.appmodel.application import (
    ActorRequirements,
    ApplicationGraph,
    ChannelRequirements,
)
from repro.arch.tile import ProcessorType
from repro.sdf.graph import SDFGraph, chain
from repro.sdf.validate import ValidationError

P1 = ProcessorType("p1")
P2 = ProcessorType("p2")


class TestActorRequirements:
    def test_supports(self):
        requirements = ActorRequirements()
        requirements.add(P1, 5, 100)
        assert requirements.supports(P1)
        assert not requirements.supports(P2)

    def test_lookup(self):
        requirements = ActorRequirements()
        requirements.add(P1, 5, 100)
        assert requirements.execution_time(P1) == 5
        assert requirements.memory(P1) == 100

    def test_worst_case_execution_time(self):
        requirements = ActorRequirements()
        requirements.add(P1, 5, 100)
        requirements.add(P2, 9, 50)
        assert requirements.worst_case_execution_time == 9

    def test_worst_case_requires_an_option(self):
        with pytest.raises(ValueError):
            _ = ActorRequirements().worst_case_execution_time

    def test_execution_time_must_be_positive(self):
        with pytest.raises(ValueError):
            ActorRequirements().add(P1, 0, 10)

    def test_memory_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            ActorRequirements().add(P1, 1, -1)


class TestChannelRequirements:
    def test_crossable_depends_on_bandwidth(self):
        assert ChannelRequirements(bandwidth=10).crossable
        assert not ChannelRequirements(bandwidth=0).crossable

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            ChannelRequirements(token_size=-1)
        with pytest.raises(ValueError):
            ChannelRequirements(buffer_src=-1)


class TestApplicationGraph:
    def build(self):
        graph = chain(["a", "b"], [2, 3], tokens_on_back_edge=1)
        return ApplicationGraph(
            graph, throughput_constraint=Fraction(1, 10), output_actor="b"
        )

    def test_validates_graph_on_construction(self):
        bad = SDFGraph("bad")
        bad.add_actor("a")
        bad.add_actor("b")
        bad.add_channel("d1", "a", "b")
        bad.add_channel("d2", "b", "a")  # token-free cycle deadlocks
        with pytest.raises(ValidationError):
            ApplicationGraph(bad)

    def test_default_output_actor_is_last(self):
        graph = chain(["x", "y"], tokens_on_back_edge=1)
        assert ApplicationGraph(graph).output_actor == "y"

    def test_unknown_output_actor_rejected(self):
        graph = chain(["x", "y"], tokens_on_back_edge=1)
        with pytest.raises(KeyError):
            ApplicationGraph(graph, output_actor="ghost")

    def test_set_actor_requirements(self):
        app = self.build()
        app.set_actor_requirements("a", (P1, 4, 10), (P2, 6, 20))
        assert app.requirements("a").execution_time(P2) == 6

    def test_set_requirements_unknown_actor(self):
        app = self.build()
        with pytest.raises(KeyError):
            app.set_actor_requirements("ghost", (P1, 1, 1))

    def test_set_channel_requirements(self):
        app = self.build()
        app.set_channel_requirements("a->b", token_size=8, bandwidth=16)
        assert app.channel("a->b").token_size == 8

    def test_set_channel_requirements_unknown(self):
        app = self.build()
        with pytest.raises(KeyError):
            app.set_channel_requirements("nope")

    def test_gamma_exposed(self):
        app = self.build()
        assert app.gamma == {"a": 1, "b": 1}

    def test_check_complete_flags_missing_requirements(self):
        app = self.build()
        app.set_actor_requirements("a", (P1, 1, 1))
        with pytest.raises(ValueError, match="b"):
            app.check_complete()

    def test_total_worst_case_work(self):
        app = self.build()
        app.set_actor_requirements("a", (P1, 4, 10), (P2, 6, 20))
        app.set_actor_requirements("b", (P1, 10, 10))
        assert app.total_worst_case_work() == 16

    def test_repr_mentions_name_and_lambda(self):
        app = self.build()
        assert "1/10" in repr(app)


class TestPaperExampleModel:
    def test_table2_values(self, example_application):
        app = example_application
        assert app.requirements("a2").execution_time(P1) == 1
        assert app.requirements("a2").memory(P2) == 19
        theta = app.channel("d2")
        assert (theta.token_size, theta.buffer_tile, theta.bandwidth) == (
            100,
            2,
            10,
        )

    def test_d3_not_crossable(self, example_application):
        assert not example_application.channel("d3").crossable

    def test_table1_values(self, example_architecture):
        t1 = example_architecture.tile("t1")
        t2 = example_architecture.tile("t2")
        assert (t1.wheel, t1.memory, t1.max_connections) == (10, 700, 5)
        assert (t2.memory, t2.max_connections) == (500, 7)
        assert example_architecture.connection("t1", "t2").latency == 1

    def test_gamma_is_unit(self, example_application):
        assert example_application.gamma == {"a1": 1, "a2": 1, "a3": 1}
