"""The runtime lock sanitizer and the races the CON rules caught.

Unit coverage for :mod:`repro.obs.lockcheck` (null-by-default
``make_lock``, the monitor's edge/hold bookkeeping, inversion detection
against a static graph, ``Condition`` compatibility) plus one
regression test per concurrency fix the static analysis forced:
``SandboxHandle`` heartbeat bookkeeping, ``Watchdog.snapshot`` torn
reads, and ``AllocationService`` worker-pool handoff.

The ``sanitizer``-marked cases (``make test-sanitizer``) run a real
service workload under :func:`lockchecking` and cross-check every
observed acquisition order against the static lock-order graph of
:func:`repro.analysis.source.lock_order_graph` — no inversion may be
observed.
"""

import json
import threading
import time

import pytest

from repro.obs.lockcheck import (
    CheckedLock,
    LockMonitor,
    get_monitor,
    lockcheck_enabled,
    lockchecking,
    make_lock,
)

from tests.service_helpers import fast_request


# -- make_lock: null by default --------------------------------------------


def test_make_lock_is_a_plain_lock_while_disabled():
    assert not lockcheck_enabled()
    assert get_monitor() is None
    lock = make_lock("repro.test.Thing._lock")
    assert isinstance(lock, type(threading.Lock()))


def test_make_lock_is_checked_inside_lockchecking():
    with lockchecking() as monitor:
        lock = make_lock("repro.test.Thing._lock")
        assert isinstance(lock, CheckedLock)
        with lock:
            pass
        assert monitor.acquisitions == 1
    assert not lockcheck_enabled()


def test_nested_acquisitions_record_order_edges():
    monitor = LockMonitor()
    outer = CheckedLock("a", monitor)
    inner = CheckedLock("b", monitor)
    with outer:
        with inner:
            pass
    assert monitor.edges() == {("a", "b")}
    assert monitor.acquisitions == 2


def test_out_of_order_release_keeps_the_held_stack_sane():
    monitor = LockMonitor()
    first = CheckedLock("a", monitor)
    second = CheckedLock("b", monitor)
    first.acquire()
    second.acquire()
    first.release()  # legal for plain locks
    third = CheckedLock("c", monitor)
    with third:
        pass
    second.release()
    # after releasing "a", only "b" was held when "c" was acquired
    assert ("b", "c") in monitor.edges()
    assert ("a", "c") not in monitor.edges()


def test_inversions_flag_reversed_static_edges_only():
    monitor = LockMonitor()
    b = CheckedLock("b", monitor)
    a = CheckedLock("a", monitor)
    c = CheckedLock("c", monitor)
    with b:
        with a:  # observed b -> a
            pass
    with b:
        with c:  # observed b -> c: statically unordered, fine
            pass
    static = {"a": {"b"}}  # the code base orders a before b
    assert monitor.inversions(static) == [("b", "a")]


def test_inversions_follow_transitive_static_reachability():
    monitor = LockMonitor()
    c = CheckedLock("c", monitor)
    a = CheckedLock("a", monitor)
    with c:
        with a:  # observed c -> a, but statically a -> b -> c
            pass
    static = {"a": {"b"}, "b": {"c"}}
    assert monitor.inversions(static) == [("c", "a")]


def test_hold_times_and_long_holds():
    monitor = LockMonitor(hold_threshold=0.01)
    lock = CheckedLock("slow", monitor)
    with lock:
        time.sleep(0.03)
    assert monitor.hold_max()["slow"] >= 0.01
    assert "slow" in monitor.long_holds()


def test_condition_wait_notify_through_a_checked_lock():
    monitor = LockMonitor()
    lock = CheckedLock("cv", monitor)
    condition = threading.Condition(lock)
    fired = []

    def waiter():
        with condition:
            condition.wait_for(lambda: fired, timeout=5)

    thread = threading.Thread(target=waiter)
    thread.start()
    time.sleep(0.05)
    with condition:
        fired.append(True)
        condition.notify_all()
    thread.join(timeout=5)
    assert not thread.is_alive()
    # waiter acquire + wait re-acquire + notifier acquire all observed
    assert monitor.acquisitions >= 3


def test_report_digest_is_json_ready():
    monitor = LockMonitor()
    with CheckedLock("a", monitor):
        pass
    digest = monitor.report()
    assert digest["acquisitions"] == 1
    json.dumps(digest)  # must serialise as-is


# -- regression: the races CON001 caught -----------------------------------


class _FakeProcess:
    pid = 4242

    def poll(self):
        return None


def _handle(tmp_path):
    from repro.service.sandbox import SandboxHandle

    return SandboxHandle(
        job="job-1",
        attempt=1,
        process=_FakeProcess(),
        heartbeat_path=str(tmp_path / "beat.jsonl"),
        stall_timeout=0.5,
        spawn_grace=0.5,
    )


def test_sandbox_heartbeat_bookkeeping_is_consistent_under_races(tmp_path):
    """read_heartbeat mutated _beat_size/_last_progress without the lock."""
    handle = _handle(tmp_path)
    path = tmp_path / "beat.jsonl"
    stop = threading.Event()
    errors = []

    def reader():
        while not stop.is_set():
            try:
                handle.read_heartbeat()
                stats = handle.watch_stats()
                # a torn snapshot would pair a beat count with a stale
                # last_beat dict; every observed pair must be coherent
                if stats["beats"] and not stats["last_beat"]:
                    errors.append(stats)
            except Exception as error:  # pragma: no cover - the failure
                errors.append(error)

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    with open(path, "a", encoding="utf-8") as fh:
        for index in range(50):
            fh.write(json.dumps({"seq": index, "rss_mb": index}) + "\n")
            fh.flush()
            time.sleep(0.001)
    stop.set()
    for thread in threads:
        thread.join(timeout=10)
    assert not errors
    stats = handle.watch_stats()
    assert stats["beats"] >= 1
    assert stats["last_beat"]["seq"] == 49


def test_watchdog_snapshot_reads_through_watch_stats(tmp_path):
    """snapshot() peeked at handle attributes mid-update before."""
    from repro.service.watchdog import Watchdog

    handle = _handle(tmp_path)
    with open(tmp_path / "beat.jsonl", "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"seq": 0, "rss_mb": 5}) + "\n")
    handle.read_heartbeat()
    watchdog = Watchdog(poll_interval=0.05)
    watchdog.register(handle)
    try:
        rows = watchdog.snapshot()
    finally:
        watchdog.stop()
    assert len(rows) == 1
    assert rows[0]["job"] == "job-1"
    assert rows[0]["beats"] == 1


@pytest.mark.service
def test_concurrent_drain_is_safe(tmp_path):
    """start()/drain() handed the worker list around outside the lock."""
    from repro.service import AllocationService

    service = AllocationService(str(tmp_path / "spool"), workers=2).start()
    application, architecture = fast_request()
    service.wait(service.submit(application, architecture), timeout=60)
    errors = []

    def drain():
        try:
            service.drain(cancel_running=True)
        except Exception as error:  # pragma: no cover - the failure
            errors.append(error)

    threads = [threading.Thread(target=drain) for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors
    assert not any(thread.is_alive() for thread in threads)


# -- the sanitizer cross-check (make test-sanitizer) -----------------------


@pytest.mark.sanitizer
def test_service_workload_observes_no_lock_order_inversion(tmp_path):
    """Dynamic acquisition orders must agree with the static graph."""
    from repro.analysis.source import lock_order_graph
    from repro.service import AllocationService

    static = lock_order_graph()
    with lockchecking() as monitor:
        service = AllocationService(
            str(tmp_path / "spool"), workers=2
        ).start()
        application, architecture = fast_request()
        first = service.submit(application, architecture)
        service.wait(first, timeout=120)
        # a resubmission rides the verified result cache — more lock
        # traffic on the journal/cache paths
        second = service.submit(application, architecture)
        service.wait(second, timeout=120)
        service.stats()
        service.jobs()
        service.drain()
    assert monitor.acquisitions > 0
    # every observed edge joins the static graph on equal node names
    static_nodes = set(static)
    for successors in static.values():
        static_nodes |= set(successors)
    observed_nodes = {node for edge in monitor.edges() for node in edge}
    assert observed_nodes <= static_nodes or not static_nodes
    assert monitor.inversions(static) == []


@pytest.mark.sanitizer
def test_watchdog_under_sanitizer_observes_no_inversion(tmp_path):
    from repro.analysis.source import lock_order_graph
    from repro.service.watchdog import Watchdog

    static = lock_order_graph()
    with lockchecking() as monitor:
        handle = _handle(tmp_path)
        with open(tmp_path / "beat.jsonl", "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"seq": 0}) + "\n")
        watchdog = Watchdog(poll_interval=0.02)
        watchdog.register(handle)
        time.sleep(0.1)
        watchdog.snapshot()
        watchdog.unregister(handle)
        watchdog.stop()
    assert monitor.inversions(static) == []
