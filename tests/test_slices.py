"""Unit tests for TDMA time-slice allocation (paper §9.3)."""

from fractions import Fraction

import pytest

from repro.appmodel.binding_aware import build_binding_aware_graph
from repro.appmodel.example import paper_example_application
from repro.core.scheduling import build_static_order_schedules
from repro.core.slices import SliceAllocationError, allocate_time_slices


def setup_bag(example_architecture, example_binding, constraint):
    application = paper_example_application(throughput_constraint=constraint)
    bag = build_binding_aware_graph(
        application, example_architecture, example_binding
    )
    schedules = build_static_order_schedules(bag)
    return bag, schedules


def test_loose_constraint_gets_minimal_slices(
    example_architecture, example_binding
):
    bag, schedules = setup_bag(
        example_architecture, example_binding, Fraction(1, 1000)
    )
    result = allocate_time_slices(bag, schedules)
    assert set(result.slices.values()) == {1}
    assert result.achieved_throughput >= Fraction(1, 1000)


def test_tight_constraint_gets_larger_slices(
    example_architecture, example_binding
):
    loose_bag, loose_schedules = setup_bag(
        example_architecture, example_binding, Fraction(1, 1000)
    )
    loose = allocate_time_slices(loose_bag, loose_schedules)
    tight_bag, tight_schedules = setup_bag(
        example_architecture, example_binding, Fraction(1, 12)
    )
    tight = allocate_time_slices(tight_bag, tight_schedules)
    assert sum(tight.slices.values()) > sum(loose.slices.values())
    assert tight.achieved_throughput >= Fraction(1, 12)


def test_infeasible_constraint_raises(example_architecture, example_binding):
    bag, schedules = setup_bag(
        example_architecture, example_binding, Fraction(1, 2)
    )
    with pytest.raises(SliceAllocationError):
        allocate_time_slices(bag, schedules)


def test_occupied_wheel_limits_search(example_architecture, example_binding):
    example_architecture.tile("t1").wheel_occupied = 10
    bag, schedules = setup_bag(
        example_architecture, example_binding, Fraction(1, 1000)
    )
    with pytest.raises(SliceAllocationError, match="no remaining time wheel"):
        allocate_time_slices(bag, schedules)


def test_partially_occupied_wheel_caps_slices(
    example_architecture, example_binding
):
    example_architecture.tile("t1").wheel_occupied = 6
    bag, schedules = setup_bag(
        example_architecture, example_binding, Fraction(1, 1000)
    )
    result = allocate_time_slices(bag, schedules)
    assert result.slices["t1"] <= 4


def test_throughput_checks_counted(example_architecture, example_binding):
    bag, schedules = setup_bag(
        example_architecture, example_binding, Fraction(1, 40)
    )
    result = allocate_time_slices(bag, schedules)
    assert result.throughput_checks >= 2


def test_refinement_never_increases_slices(
    example_architecture, example_binding
):
    bag, schedules = setup_bag(
        example_architecture, example_binding, Fraction(1, 30)
    )
    refined = allocate_time_slices(bag, schedules, refine=True)
    bag2, schedules2 = setup_bag(
        example_architecture, example_binding, Fraction(1, 30)
    )
    unrefined = allocate_time_slices(bag2, schedules2, refine=False)
    for tile in refined.slices:
        assert refined.slices[tile] <= unrefined.slices[tile]


def test_result_meets_constraint_exactly_when_verified(
    example_architecture, example_binding
):
    constraint = Fraction(1, 30)
    bag, schedules = setup_bag(example_architecture, example_binding, constraint)
    result = allocate_time_slices(bag, schedules)
    assert result.achieved_throughput >= constraint


def test_relaxation_band_allows_early_stop(
    example_architecture, example_binding
):
    constraint = Fraction(1, 40)
    bag, schedules = setup_bag(example_architecture, example_binding, constraint)
    eager = allocate_time_slices(bag, schedules, relaxation=10.0)
    bag2, schedules2 = setup_bag(
        example_architecture, example_binding, constraint
    )
    exhaustive = allocate_time_slices(bag2, schedules2, relaxation=0.0)
    # a huge relaxation band stops the search earlier (or equal)
    assert eager.throughput_checks <= exhaustive.throughput_checks
    assert eager.achieved_throughput >= constraint
    assert exhaustive.achieved_throughput >= constraint
