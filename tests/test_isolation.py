"""Validation of the paper's central promise: per-application isolation.

The strategy guarantees every application its throughput "independent
of other applications running on the same system".  The analysis
assumes the slice sits at wheel offset 0 with all wheels aligned and
charges the conservative ``w - omega`` alignment wait; once several
applications are committed, each actually occupies a *different* window
of the wheel.  These tests re-verify committed applications at their
true window offsets and check the guarantee still holds — i.e. the
offset-0 analysis really is conservative with respect to placement.
"""

from fractions import Fraction

import pytest

from repro.appmodel.binding import SchedulingFunction
from repro.appmodel.binding_aware import build_binding_aware_graph
from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
)
from repro.core.strategy import ResourceAllocator
from repro.throughput.constrained import (
    TileConstraints,
    busy_time,
    constrained_throughput,
    gated_finish,
)


class TestOffsetGating:
    def test_offset_window_busy_time(self):
        # slice [3, 6) of a wheel of 8
        assert busy_time(0, 8, 8, 3, slice_start=3) == 3
        assert busy_time(0, 3, 8, 3, slice_start=3) == 0
        assert busy_time(4, 5, 8, 3, slice_start=3) == 1
        assert busy_time(6, 11, 8, 3, slice_start=3) == 0

    def test_offset_gated_finish(self):
        # at t=0 with slice [3,6): work 2 finishes at 5
        assert gated_finish(0, 2, 8, 3, slice_start=3) == 5
        # starting inside the window
        assert gated_finish(4, 2, 8, 3, slice_start=3) == 6
        # spilling into the next rotation's window
        assert gated_finish(5, 2, 8, 3, slice_start=3) == 12

    def test_offset_inverts_busy_time(self):
        for slice_start in range(0, 6):
            for start in range(0, 20):
                for work in range(1, 10):
                    finish = gated_finish(start, work, 9, 3, slice_start)
                    assert busy_time(start, finish, 9, 3, slice_start) == work
                    assert (
                        busy_time(start, finish - 1, 9, 3, slice_start) < work
                    )

    def test_window_must_fit_wheel(self):
        from repro.throughput.constrained import StaticOrderSchedule

        with pytest.raises(ValueError, match="does not fit"):
            TileConstraints(
                "t",
                10,
                4,
                StaticOrderSchedule(periodic=("a",)),
                slice_start=7,
            )


def _verify_at_offset(application, architecture, allocation, offsets):
    """Constrained throughput with the app's real slice windows."""
    bag = build_binding_aware_graph(
        application,
        architecture,
        allocation.binding,
        slices=dict(allocation.scheduling.slices),
    )
    constraints = []
    for tile_name in allocation.binding.used_tiles():
        tile = architecture.tile(tile_name)
        constraints.append(
            TileConstraints(
                name=tile_name,
                wheel=tile.wheel,
                slice_size=allocation.scheduling.slice_of(tile_name),
                schedule=allocation.scheduling.schedule_of(tile_name),
                slice_start=offsets.get(tile_name, 0),
            )
        )
    return constrained_throughput(bag.graph, constraints).of(
        application.output_actor
    )


class TestIsolation:
    def test_two_committed_applications_keep_their_guarantees(self):
        architecture = paper_example_architecture()
        allocator = ResourceAllocator()
        applications = [
            paper_example_application(Fraction(1, 80)) for _ in range(2)
        ]
        allocations = []
        offsets = []  # per application: tile -> window start
        cursor = {tile.name: 0 for tile in architecture.tiles}
        for application in applications:
            allocation = allocator.allocate(application, architecture)
            allocation.reservation.commit(architecture)
            window = {}
            for tile_name, size in allocation.scheduling.slices.items():
                window[tile_name] = cursor[tile_name]
                cursor[tile_name] += size
            allocations.append(allocation)
            offsets.append(window)

        # windows are disjoint by construction; now each application,
        # simulated at its true offset, meets its guarantee
        for application, allocation, window in zip(
            applications, allocations, offsets
        ):
            verified = _verify_at_offset(
                application, architecture, allocation, window
            )
            assert verified >= application.throughput_constraint

    def test_guarantee_holds_at_any_offset(self):
        """The offset-0 + s-actor analysis is conservative for *every*
        placement of the window, not just the prefix packing."""
        architecture = paper_example_architecture()
        application = paper_example_application(Fraction(1, 80))
        allocation = ResourceAllocator().allocate(application, architecture)
        slices = allocation.scheduling.slices
        wheel = architecture.tile("t1").wheel
        for offset_t1 in range(0, wheel - slices["t1"] + 1, 3):
            for offset_t2 in range(0, wheel - slices.get("t2", 0) + 1, 3):
                offsets = {"t1": offset_t1, "t2": offset_t2}
                verified = _verify_at_offset(
                    application, architecture, allocation, offsets
                )
                assert verified >= application.throughput_constraint, offsets
