"""The static pre-flight gate in the flow and the degradation ladder.

The contract (docs/ANALYSIS.md, "Gate semantics"): a statically
infeasible application is rejected *before* any state-space
exploration — outcome ``"rejected"``, zero states explored, visible
through the ``lint.*`` counters and the ``lint`` trace category — and
the rejection is a genuine negative answer, so ``resilient_allocate``
must not descend its ladder over it.
"""

from fractions import Fraction

import pytest

from repro.analysis import preflight_check, static_throughput_bound
from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
)
from repro.core.flow import allocate_until_failure
from repro.core.strategy import AllocationError
from repro.obs import Metrics, collecting
from repro.obs.trace import tracing
from repro.resilience.policy import _degradable, resilient_allocate
from repro.throughput.state_space import StateSpaceExplosionError


def doomed_application():
    """The paper example with its constraint pushed past the static bound."""
    application = paper_example_application()
    bound = static_throughput_bound(
        application, paper_example_architecture()
    )
    assert bound is not None
    application.throughput_constraint = bound * 2
    return application


class TestPreflightCheck:
    def test_feasible_application_passes(self):
        gate = preflight_check(
            paper_example_application(), paper_example_architecture()
        )
        assert len(gate) == 0

    def test_infeasible_constraint_is_rejected(self):
        gate = preflight_check(
            doomed_application(), paper_example_architecture()
        )
        assert gate.has_errors
        assert {d.rule_id for d in gate} <= {"APP002", "APP003"}

    def test_gate_reports_errors_only(self):
        # a serialised self-loop is only an info finding: the full
        # analysis reports it, the gate stays silent
        from repro.analysis import analyse_application
        from repro.appmodel.application import ApplicationGraph
        from repro.arch.tile import ProcessorType
        from repro.sdf.graph import SDFGraph

        graph = SDFGraph("noted")
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_channel("d0", "a", "b")
        graph.add_channel("d1", "b", "a", tokens=1)
        graph.add_channel("loop", "a", "a", tokens=1)
        application = ApplicationGraph(graph, output_actor="b")
        for actor in graph.actor_names:
            application.set_actor_requirements(
                actor, (ProcessorType("risc"), 1, 1)
            )
        assert len(analyse_application(application)) == 1
        assert len(preflight_check(application)) == 0

    def test_counters_and_trace_events(self):
        architecture = paper_example_architecture()
        with collecting(Metrics()) as metrics, tracing() as trace:
            preflight_check(paper_example_application(), architecture)
            preflight_check(doomed_application(), architecture)
        counters = metrics.snapshot()["counters"]
        assert counters["lint.preflight_runs"] == 2
        assert counters["lint.preflight_rejects"] == 1
        assert counters["lint.findings"] >= 1
        events = [(e.category, e.name) for e in trace.events()]
        assert ("lint", "preflight.pass") in events
        assert ("lint", "preflight.reject") in events


class TestFlowGate:
    def test_infeasible_application_rejected_with_zero_states(self):
        architecture = paper_example_architecture()
        with collecting(Metrics()) as metrics:
            result = allocate_until_failure(
                architecture, [doomed_application()]
            )
        assert result.applications_bound == 0
        (stats,) = result.application_stats
        assert stats["outcome"] == "rejected"
        assert "statically infeasible" in stats["reason"]
        counters = metrics.snapshot()["counters"]
        assert counters.get("state_space.states", 0) == 0
        assert counters.get("constrained.states", 0) == 0
        assert counters["flow.rejected"] == 1
        assert counters["lint.preflight_rejects"] == 1

    def test_rejection_stops_the_flow_like_any_failure(self):
        architecture = paper_example_architecture()
        result = allocate_until_failure(
            architecture,
            [doomed_application(), paper_example_application()],
        )
        # the doomed application fails first; the feasible one is never
        # attempted without continue_after_failure
        assert result.applications_bound == 0
        assert len(result.application_stats) == 1

    def test_continue_after_failure_skips_past_rejection(self):
        architecture = paper_example_architecture()
        result = allocate_until_failure(
            architecture,
            [doomed_application(), paper_example_application()],
            continue_after_failure=True,
        )
        assert result.applications_bound == 1
        outcomes = [s["outcome"] for s in result.application_stats]
        assert outcomes[0] == "rejected"
        assert outcomes[1] in ("allocated", "degraded")

    def test_preflight_false_disables_the_gate(self):
        architecture = paper_example_architecture()
        with collecting(Metrics()) as metrics:
            result = allocate_until_failure(
                architecture, [doomed_application()], preflight=False
            )
        assert result.applications_bound == 0
        (stats,) = result.application_stats
        # without the gate the flow pays for a real (failing) search
        assert stats["outcome"] != "rejected"
        counters = metrics.snapshot()["counters"]
        assert "lint.preflight_runs" not in counters

    def test_feasible_application_unaffected_by_gate(self):
        architecture = paper_example_architecture()
        result = allocate_until_failure(
            architecture, [paper_example_application()]
        )
        assert result.applications_bound == 1
        (stats,) = result.application_stats
        assert stats["outcome"] == "allocated"


class TestResilientGate:
    def test_raises_non_degradable_allocation_error(self):
        with pytest.raises(AllocationError) as excinfo:
            resilient_allocate(
                doomed_application(), paper_example_architecture()
            )
        error = excinfo.value
        assert "statically infeasible" in str(error)
        assert not isinstance(error.__cause__, StateSpaceExplosionError)
        assert not _degradable(error)

    def test_gate_runs_before_any_ladder_rung(self):
        with collecting(Metrics()) as metrics:
            with pytest.raises(AllocationError):
                resilient_allocate(
                    doomed_application(), paper_example_architecture()
                )
        counters = metrics.snapshot()["counters"]
        assert counters.get("state_space.states", 0) == 0
        assert counters.get("constrained.states", 0) == 0
        assert counters.get("resilience.rung_exploded", 0) == 0

    def test_preflight_false_reaches_the_ladder(self):
        # with the gate off the exact rung genuinely tries (and fails
        # at the throughput check, a non-degradable negative answer)
        with pytest.raises(AllocationError) as excinfo:
            resilient_allocate(
                doomed_application(),
                paper_example_architecture(),
                preflight=False,
            )
        assert "statically infeasible" not in str(excinfo.value)
