"""Unit tests for the architecture model (tiles, connections, occupancy)."""

import pytest

from repro.arch.architecture import ArchitectureGraph, Connection
from repro.arch.resources import (
    InsufficientResourcesError,
    ResourceReservation,
)
from repro.arch.tile import ProcessorType, Tile


def make_tile(name="t0", **overrides):
    values = dict(
        name=name,
        processor_type=ProcessorType("p"),
        wheel=100,
        memory=1000,
        max_connections=4,
        bandwidth_in=50,
        bandwidth_out=60,
    )
    values.update(overrides)
    return Tile(**values)


class TestTile:
    def test_remaining_equals_capacity_initially(self):
        tile = make_tile()
        assert tile.wheel_remaining == 100
        assert tile.memory_remaining == 1000
        assert tile.connections_remaining == 4
        assert tile.bandwidth_in_remaining == 50
        assert tile.bandwidth_out_remaining == 60

    def test_occupancy_reduces_remaining(self):
        tile = make_tile()
        tile.wheel_occupied = 30
        tile.memory_occupied = 100
        assert tile.wheel_remaining == 70
        assert tile.memory_remaining == 900

    def test_reset_occupancy(self):
        tile = make_tile()
        tile.wheel_occupied = 30
        tile.connections_occupied = 2
        tile.reset_occupancy()
        assert tile.wheel_remaining == 100
        assert tile.connections_remaining == 4

    def test_copy_preserves_occupancy_independently(self):
        tile = make_tile()
        tile.memory_occupied = 500
        clone = tile.copy()
        clone.memory_occupied = 0
        assert tile.memory_occupied == 500

    def test_wheel_must_be_positive(self):
        with pytest.raises(ValueError):
            make_tile(wheel=0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            make_tile(memory=-1)


class TestConnection:
    def test_latency_must_be_positive(self):
        with pytest.raises(ValueError):
            Connection("a", "b", 0)

    def test_fields(self):
        connection = Connection("a", "b", 3)
        assert (connection.src, connection.dst, connection.latency) == (
            "a",
            "b",
            3,
        )


class TestArchitectureGraph:
    def build(self):
        arch = ArchitectureGraph("test")
        arch.add_tile(make_tile("t0"))
        arch.add_tile(make_tile("t1", processor_type=ProcessorType("q")))
        arch.add_connection("t0", "t1", 2)
        return arch

    def test_tile_lookup(self):
        arch = self.build()
        assert arch.tile("t0").name == "t0"
        assert arch.has_tile("t1")
        assert not arch.has_tile("t9")
        assert len(arch) == 2

    def test_duplicate_tile_rejected(self):
        arch = self.build()
        with pytest.raises(ValueError):
            arch.add_tile(make_tile("t0"))

    def test_connection_lookup_is_directional(self):
        arch = self.build()
        assert arch.connected("t0", "t1")
        assert not arch.connected("t1", "t0")
        assert arch.connection("t1", "t0") is None
        assert arch.connection("t0", "t1").latency == 2

    def test_self_connection_rejected(self):
        arch = self.build()
        with pytest.raises(ValueError):
            arch.add_connection("t0", "t0")

    def test_connection_to_unknown_tile_rejected(self):
        arch = self.build()
        with pytest.raises(KeyError):
            arch.add_connection("t0", "ghost")

    def test_duplicate_connection_rejected(self):
        arch = self.build()
        with pytest.raises(ValueError):
            arch.add_connection("t0", "t1", 5)

    def test_processor_types_deduplicated(self):
        arch = self.build()
        arch.add_tile(make_tile("t2"))
        types = arch.processor_types()
        assert [t.name for t in types] == ["p", "q"]

    def test_tiles_of_type(self):
        arch = self.build()
        assert [t.name for t in arch.tiles_of_type(ProcessorType("p"))] == ["t0"]

    def test_copy_is_independent(self):
        arch = self.build()
        arch.tile("t0").wheel_occupied = 10
        clone = arch.copy()
        clone.tile("t0").wheel_occupied = 99
        assert arch.tile("t0").wheel_occupied == 10
        assert clone.connected("t0", "t1")

    def test_usage_and_capacity_totals(self):
        arch = self.build()
        arch.tile("t0").wheel_occupied = 10
        arch.tile("t1").memory_occupied = 200
        usage = arch.total_usage()
        assert usage["timewheel"] == 10
        assert usage["memory"] == 200
        capacity = arch.total_capacity()
        assert capacity["timewheel"] == 200
        assert capacity["connections"] == 8

    def test_reset_occupancy_all_tiles(self):
        arch = self.build()
        arch.tile("t0").wheel_occupied = 10
        arch.reset_occupancy()
        assert arch.total_usage()["timewheel"] == 0


class TestResourceReservation:
    def build_arch(self):
        arch = ArchitectureGraph()
        arch.add_tile(make_tile("t0"))
        return arch

    def test_commit_occupies(self):
        arch = self.build_arch()
        reservation = ResourceReservation()
        claim = reservation.tile("t0")
        claim.time_slice = 10
        claim.memory = 100
        claim.connections = 1
        claim.bandwidth_in = 5
        claim.bandwidth_out = 6
        reservation.commit(arch)
        tile = arch.tile("t0")
        assert tile.wheel_occupied == 10
        assert tile.memory_occupied == 100
        assert tile.connections_occupied == 1
        assert tile.bandwidth_in_occupied == 5
        assert tile.bandwidth_out_occupied == 6

    def test_rollback_restores(self):
        arch = self.build_arch()
        reservation = ResourceReservation()
        reservation.tile("t0").time_slice = 10
        reservation.commit(arch)
        reservation.rollback(arch)
        assert arch.tile("t0").wheel_occupied == 0

    def test_overcommit_rejected_atomically(self):
        arch = self.build_arch()
        reservation = ResourceReservation()
        reservation.tile("t0").time_slice = 10
        reservation.tile("t0").memory = 5000  # exceeds 1000
        with pytest.raises(InsufficientResourcesError):
            reservation.commit(arch)
        assert arch.tile("t0").wheel_occupied == 0

    def test_fits_checks_every_resource(self):
        arch = self.build_arch()
        reservation = ResourceReservation()
        reservation.tile("t0").bandwidth_out = 61
        assert not reservation.fits(arch)
        reservation.tile("t0").bandwidth_out = 60
        assert reservation.fits(arch)

    def test_sequential_commits_stack(self):
        arch = self.build_arch()
        for _ in range(2):
            reservation = ResourceReservation()
            reservation.tile("t0").time_slice = 40
            reservation.commit(arch)
        third = ResourceReservation()
        third.tile("t0").time_slice = 40
        assert not third.fits(arch)

    def test_empty_claim_detection(self):
        reservation = ResourceReservation()
        assert reservation.tile("t0").is_empty()
        reservation.tile("t0").memory = 1
        assert not reservation.tile("t0").is_empty()
