"""Unit tests for the tile loads and the Eqn. 2 cost function."""

from fractions import Fraction

import pytest

from repro.appmodel.binding import Binding
from repro.core.tile_cost import (
    CostWeights,
    channel_sets,
    memory_demand,
    tile_cost,
    tile_loads,
)


@pytest.fixture
def section8_binding(example_binding):
    return example_binding  # a1, a2 -> t1; a3 -> t2


class TestChannelSets:
    def test_full_binding_classification(
        self, example_application, section8_binding
    ):
        sets_t1 = channel_sets(example_application, section8_binding, "t1")
        assert [c.name for c in sets_t1.tile] == ["d1", "d3"]
        assert [c.name for c in sets_t1.src] == ["d2"]
        assert sets_t1.dst == []
        sets_t2 = channel_sets(example_application, section8_binding, "t2")
        assert [c.name for c in sets_t2.dst] == ["d2"]

    def test_partial_binding_ignores_unbound_endpoints(
        self, example_application
    ):
        binding = Binding()
        binding.bind("a1", "t1")
        sets = channel_sets(example_application, binding, "t1")
        # d1's destination a2 is unbound; only the self edge d3 counts
        assert [c.name for c in sets.tile] == ["d3"]
        assert sets.src == []


class TestLoads:
    def test_processing_load(
        self, example_application, example_architecture, section8_binding
    ):
        # total worst-case work = 4 + 7 + 3 = 14; t1 runs a1+a2 at 1+1
        load = tile_loads(
            example_application, example_architecture, section8_binding, "t1"
        )
        assert load.processing == Fraction(2, 14)
        load2 = tile_loads(
            example_application, example_architecture, section8_binding, "t2"
        )
        assert load2.processing == Fraction(2, 14)

    def test_memory_demand_section7(
        self, example_application, example_architecture, section8_binding
    ):
        # t1: mu(a1)+mu(a2) + d1 tile buffer (1*7) + d3 (1*1) + d2 src (2*100)
        demand = memory_demand(
            example_application,
            section8_binding,
            example_architecture.tile("t1"),
        )
        assert demand == 10 + 7 + 7 + 1 + 200
        demand2 = memory_demand(
            example_application,
            section8_binding,
            example_architecture.tile("t2"),
        )
        # t2: mu(a3) + d2 dst buffer (2*100)
        assert demand2 == 10 + 200

    def test_memory_load_normalised(
        self, example_application, example_architecture, section8_binding
    ):
        load = tile_loads(
            example_application, example_architecture, section8_binding, "t1"
        )
        assert load.memory == Fraction(225, 700)

    def test_communication_load(
        self, example_application, example_architecture, section8_binding
    ):
        load = tile_loads(
            example_application, example_architecture, section8_binding, "t1"
        )
        # t1: out bw 10/100, in 0, connections 1/5 -> avg = (0.1+0+0.2)/3
        assert load.communication == (
            Fraction(10, 100) + Fraction(0) + Fraction(1, 5)
        ) / 3

    def test_occupied_resources_shrink_denominators(
        self, example_application, example_architecture, section8_binding
    ):
        example_architecture.tile("t1").memory_occupied = 350
        load = tile_loads(
            example_application, example_architecture, section8_binding, "t1"
        )
        assert load.memory == Fraction(225, 350)

    def test_zero_capacity_with_demand_is_penalised(
        self, example_application, example_architecture, section8_binding
    ):
        example_architecture.tile("t1").memory_occupied = 700
        load = tile_loads(
            example_application, example_architecture, section8_binding, "t1"
        )
        assert load.memory >= 10**9

    def test_empty_tile_has_zero_load(
        self, example_application, example_architecture
    ):
        binding = Binding()
        load = tile_loads(
            example_application, example_architecture, binding, "t1"
        )
        assert load.processing == 0
        assert load.memory == 0
        assert load.communication == 0


class TestCostWeights:
    def test_combined_weighting(
        self, example_application, example_architecture, section8_binding
    ):
        load = tile_loads(
            example_application, example_architecture, section8_binding, "t1"
        )
        only_memory = tile_cost(
            example_application,
            example_architecture,
            section8_binding,
            "t1",
            CostWeights(0, 1, 0),
        )
        assert only_memory == pytest.approx(float(load.memory))

    def test_weights_tuple_and_str(self):
        weights = CostWeights(0, 1, 2)
        assert weights.as_tuple() == (0, 1, 2)
        assert str(weights) == "(0,1,2)"

    def test_zero_weights_give_zero_cost(
        self, example_application, example_architecture, section8_binding
    ):
        assert (
            tile_cost(
                example_application,
                example_architecture,
                section8_binding,
                "t1",
                CostWeights(0, 0, 0),
            )
            == 0.0
        )
