"""Unit tests for the random SDFG generator."""

import random

import pytest

from repro.generate.random_sdf import RandomSDFParameters, random_sdfg
from repro.sdf.analysis import is_connected, is_deadlock_free
from repro.sdf.repetition import is_consistent, repetition_vector


def test_generated_graphs_are_valid():
    rng = random.Random(7)
    for _ in range(30):
        graph = random_sdfg(rng=rng)
        assert is_consistent(graph)
        assert is_deadlock_free(graph)
        assert is_connected(graph)


def test_actor_count_respects_range():
    rng = random.Random(0)
    parameters = RandomSDFParameters(actors_min=5, actors_max=5)
    for _ in range(10):
        assert len(random_sdfg(parameters, rng)) == 5


def test_deterministic_for_same_seed():
    first = random_sdfg(rng=random.Random(42))
    second = random_sdfg(rng=random.Random(42))
    assert [a.name for a in first.actors] == [a.name for a in second.actors]
    assert [
        (c.src, c.dst, c.production, c.consumption, c.tokens)
        for c in first.channels
    ] == [
        (c.src, c.dst, c.production, c.consumption, c.tokens)
        for c in second.channels
    ]


def test_different_seeds_differ():
    graphs = [random_sdfg(rng=random.Random(seed)) for seed in range(20)]
    shapes = {(len(g), len(g.channels)) for g in graphs}
    assert len(shapes) > 1


def test_repetition_entries_within_range():
    parameters = RandomSDFParameters(repetition_min=2, repetition_max=4)
    rng = random.Random(3)
    for _ in range(10):
        graph = random_sdfg(parameters, rng)
        gamma = repetition_vector(graph)
        # the drawn vector may be scaled down by a common divisor but
        # never scaled up beyond the drawn range
        assert max(gamma.values()) <= 4


def test_single_actor_graph():
    parameters = RandomSDFParameters(actors_min=1, actors_max=1)
    graph = random_sdfg(parameters, random.Random(1))
    assert len(graph) == 1


def test_self_edges_controlled_by_fraction():
    no_self = RandomSDFParameters(self_edge_fraction=0.0)
    rng = random.Random(5)
    for _ in range(10):
        graph = random_sdfg(no_self, rng)
        assert not any(c.is_self_loop for c in graph.channels)
    all_self = RandomSDFParameters(self_edge_fraction=1.0)
    graph = random_sdfg(all_self, random.Random(5))
    assert sum(c.is_self_loop for c in graph.channels) == len(graph)


def test_back_edges_carry_iteration_tokens():
    parameters = RandomSDFParameters(
        actors_min=6, actors_max=6, extra_channel_fraction=2.0,
        back_edge_probability=1.0,
    )
    graph = random_sdfg(parameters, random.Random(11))
    gamma = repetition_vector(graph)
    for channel in graph.channels:
        if channel.is_self_loop:
            continue
        src_index = int(channel.src[1:])
        dst_index = int(channel.dst[1:])
        if src_index > dst_index:
            assert channel.tokens >= channel.consumption


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        RandomSDFParameters(actors_min=0)
    with pytest.raises(ValueError):
        RandomSDFParameters(actors_min=5, actors_max=3)
    with pytest.raises(ValueError):
        RandomSDFParameters(repetition_min=0)
