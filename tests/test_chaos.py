"""Chaos soak: the service's promises under a seeded storm.

Three seeds, each at least twenty chaos events — children SIGKILLed
mid-search, children SIGSTOPped so only the watchdog can notice,
jobs sized to blow their own memory cap, journal writes dropped and
watchdog heartbeat reads blinded by probabilistic fault injection.
The invariants that must hold regardless of the seed:

* **No accepted job is lost** — every id a submitter ever got back
  reaches exactly one terminal state.
* **Every terminal job carries its evidence** — a certified/degraded
  job has its (independently certified) result bundle; a quarantined
  job has the :class:`~repro.service.sandbox.SandboxVerdict` of its
  final attempt.
* **The daemon outlives every child** — after the storm, a fresh job
  still completes ``certified``.
* **The journal replays bit-identically** — a restart over the same
  spool parses every record and rewrites none of them.

On failure the spool is copied to ``$REPRO_CHAOS_ARTIFACTS/<id>`` (if
set) for post-mortem; run ``make test-chaos`` locally.
"""

import os
import random

import pytest

from repro.resilience.faults import FaultInjector, FaultSpec
from repro.service import (
    AllocationService,
    RetryPolicy,
    TERMINAL_STATES,
    VERDICT_KINDS,
)
from repro.service.journal import JobJournal

from tests.chaos_helpers import (
    ChaosStorm,
    export_artifacts,
    submit_with_retry,
)
from tests.service_helpers import fast_request, slow_request

pytestmark = [pytest.mark.chaos, pytest.mark.service]

SEEDS = (101, 102, 103)

CHAOS_SPECS = (
    # drop ~5% of journal renames: transitions must tolerate the loss
    FaultSpec(
        point="service.journal.write",
        error="runtime",
        times=None,
        probability=0.05,
    ),
    # blind ~2% of watchdog heartbeat reads: monitoring must shrug
    FaultSpec(
        point="service.sandbox.heartbeat",
        error="runtime",
        times=None,
        probability=0.02,
    ),
)


def _journal_bytes(spool):
    jobs_dir = os.path.join(spool, "jobs")
    return {
        name: open(os.path.join(jobs_dir, name), "rb").read()
        for name in sorted(os.listdir(jobs_dir))
        if name.endswith(".json")
    }


@pytest.mark.parametrize("seed", SEEDS, ids=[f"seed{s}" for s in SEEDS])
def test_chaos_soak_service_promises_hold(tmp_path, seed):
    spool = str(tmp_path / "spool")
    rng = random.Random(seed)
    service = AllocationService(
        spool,
        workers=2,
        isolation="process",
        retry=RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0),
        heartbeat_interval=0.1,
        stall_timeout=2.0,
    ).start()
    storm = ChaosStorm(
        service,
        seed=seed,
        oom_request=fast_request(),
        min_events=20,
    )
    accepted = []
    try:
        with FaultInjector(specs=CHAOS_SPECS, seed=seed):
            # the victim workload: jobs slow enough to be mid-search
            # when the storm reaches for them
            for _ in range(6):
                application, architecture = slow_request(
                    macroblocks=rng.choice((24, 48, 96))
                )
                job_id = submit_with_retry(
                    service, application, architecture
                )
                if job_id is not None:
                    accepted.append(job_id)
            assert accepted, "no victim job was ever accepted"
            storm.start()
            assert storm.wait_min_events(timeout=240), (
                f"storm landed only {storm.events} in time"
            )
            accepted.extend(storm.accepted)
            for job_id in accepted:
                service.wait(job_id, timeout=300)
            storm.stop()

        # -- invariants, examined in calm air --------------------------
        # dropped journal writes leave disk lagging memory by design
        # (at-least-once: a crash would simply replay the job); flush
        # the authoritative in-memory states so the replay check below
        # exercises a fully durable journal
        for job_id in accepted:
            service.journal.write(service.job(job_id))

        assert storm.total_events >= 20, storm.events
        for job_id in accepted:
            record = service.job(job_id)
            assert record is not None, f"accepted {job_id} vanished"
            assert record["state"] in TERMINAL_STATES
            if record["state"] in ("certified", "degraded"):
                assert record["result"]["allocations"], job_id
            if record["state"] == "quarantined":
                verdict = record["sandbox_verdict"]
                assert verdict is not None, (
                    f"{job_id} quarantined without a sandbox verdict: "
                    f"{record['reason']}"
                )
                assert verdict["kind"] in VERDICT_KINDS

        # the daemon survived every child death: fresh work still runs
        application, architecture = fast_request()
        fresh = service.wait(
            service.submit(application, architecture), timeout=120
        )
        assert fresh["state"] == "certified"
        accepted.append(fresh["id"])
        service.drain(cancel_running=True)
        assert service.watchdog.handles() == []

        # the journal replays bit-identically: a restart over the same
        # spool parses every record and rewrites none of them
        before = _journal_bytes(spool)
        records, corrupted = JobJournal(spool).recover()
        assert corrupted == []
        assert {record["id"] for record in records} >= set(accepted)
        assert all(
            record["state"] in TERMINAL_STATES for record in records
        )
        reborn = AllocationService(spool, workers=2).start()
        try:
            reborn.wait_idle(timeout=60)
        finally:
            reborn.drain(cancel_running=True)
        assert _journal_bytes(spool) == before
    except BaseException:
        target = export_artifacts(spool, f"seed{seed}")
        if target:
            print(f"chaos spool preserved at {target}")
        raise
    finally:
        service.drain(cancel_running=True)
