"""Unit tests for Howard's policy-iteration maximum cycle ratio."""

import random
from fractions import Fraction

import pytest

from repro.generate.random_sdf import random_sdfg
from repro.sdf.graph import SDFGraph, chain
from repro.sdf.transform import sdf_to_hsdf
from repro.throughput.howard import howard_max_cycle_ratio
from repro.throughput.mcr import (
    hsdf_iteration_rate,
    max_cycle_ratio_exact,
)


def test_simple_cycle(simple_cycle_graph):
    assert howard_max_cycle_ratio(simple_cycle_graph) == Fraction(5, 2)


def test_acyclic_none():
    assert howard_max_cycle_ratio(chain(["a", "b", "c"])) is None


def test_token_free_cycle_infinite():
    graph = SDFGraph()
    graph.add_actor("a", 1)
    graph.add_actor("b", 1)
    graph.add_channel("ab", "a", "b")
    graph.add_channel("ba", "b", "a")
    assert howard_max_cycle_ratio(graph) == float("inf")


def test_self_loop_component():
    graph = SDFGraph()
    graph.add_actor("a", 6)
    graph.add_channel("s", "a", "a", tokens=3)
    assert howard_max_cycle_ratio(graph) == Fraction(2)


def test_picks_worst_cycle_among_many():
    graph = SDFGraph()
    graph.add_actor("a", 1)
    graph.add_actor("b", 2)
    graph.add_actor("c", 30)
    graph.add_channel("ab", "a", "b")
    graph.add_channel("ba", "b", "a", tokens=1)
    graph.add_channel("ac", "a", "c")
    graph.add_channel("ca", "c", "a", tokens=4)
    assert howard_max_cycle_ratio(graph) == Fraction(31, 4)


def test_multiple_components_max_taken():
    graph = SDFGraph()
    for name, time in (("a", 2), ("b", 10)):
        graph.add_actor(name, time)
    graph.add_channel("sa", "a", "a", tokens=1)
    graph.add_channel("sb", "b", "b", tokens=2)
    graph.add_channel("bridge", "a", "b")
    assert howard_max_cycle_ratio(graph) == Fraction(5)


def test_agrees_with_enumeration_on_random_hsdfgs():
    rng = random.Random(23)
    for _ in range(40):
        graph = random_sdfg(rng=rng)
        for actor in graph.actors:
            actor.execution_time = rng.randint(1, 9)
        hsdf = sdf_to_hsdf(graph)
        assert howard_max_cycle_ratio(hsdf) == max_cycle_ratio_exact(
            hsdf, limit=200_000
        )


def test_method_selector_in_iteration_rate(multirate_graph):
    hsdf = sdf_to_hsdf(multirate_graph)
    enumerate_rate = hsdf_iteration_rate(hsdf, method="enumerate")
    howard_rate = hsdf_iteration_rate(hsdf, method="howard")
    numeric_rate = hsdf_iteration_rate(hsdf, method="numeric")
    assert enumerate_rate == howard_rate == numeric_rate == Fraction(1, 5)


def test_unknown_method_rejected(multirate_graph):
    with pytest.raises(ValueError, match="unknown MCR method"):
        hsdf_iteration_rate(multirate_graph, method="magic")
