"""Property tests for the branch-and-bound core.

Two properties protect the exact backend's claim to exactness:

* **Pruning is conservative.**  The relaxation prunes (the refined
  static bounds of :mod:`repro.exact.bounds` plus the admissible cost
  lower bound) may only discard subtrees that cannot contain a
  strictly better leaf than the incumbent.  Comparing the pruned
  search against unpruned exhaustive enumeration (``prune=False``) on
  generated tiny problems must therefore give the identical optimal
  cost and the identical feasibility verdict — if pruning ever cut off
  the optimum, the costs would differ.  (Ties may be resolved toward
  different argmins, so only cost and feasibility are compared, plus
  the sanity check that pruning never does *more* work.)
* **Determinism.**  For a fixed seed the search visits nodes in a
  fixed order: two runs return identical bindings, slices, costs and
  work counters.  The ``exact-small`` bench workload and the
  differential harness both rely on this.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.presets import mesh_architecture
from repro.arch.tile import ProcessorType
from repro.core.tile_cost import CostWeights
from repro.exact import exact_search
from repro.generate.benchmark import BenchmarkSetProfile, generate_application
from repro.generate.random_sdf import RandomSDFParameters

pytestmark = pytest.mark.exact

TYPES = [ProcessorType("p1"), ProcessorType("p2")]

TINY_PROFILE = BenchmarkSetProfile(
    name="exact-prop",
    structure=RandomSDFParameters(
        actors_min=2,
        actors_max=4,
        repetition_max=2,
        extra_channel_fraction=0.3,
    ),
    execution_time=(1, 3),
    actor_memory=(5, 20),
    token_size=(1, 3),
    buffer_tokens=(1, 2),
    bandwidth=(8, 40),
    constraint_percent=(5, 40),
)


def _problem(seed, tiles):
    architecture = mesh_architecture(
        1,
        tiles,
        TYPES,
        wheel=8,
        memory=4_000,
        max_connections=16,
        bandwidth_in=2_000,
        bandwidth_out=2_000,
    )
    application = generate_application(
        TINY_PROFILE, TYPES, random.Random(seed), name=f"exact-prop-{seed}"
    )
    return application, architecture


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), tiles=st.integers(2, 3))
def test_pruning_never_discards_the_optimum(seed, tiles):
    application, architecture = _problem(seed, tiles)
    pruned = exact_search(
        application, architecture.copy(), weights=CostWeights.default()
    )
    exhaustive = exact_search(
        application,
        architecture.copy(),
        weights=CostWeights.default(),
        prune=False,
    )
    assert pruned.feasible == exhaustive.feasible
    assert pruned.cost == exhaustive.cost
    assert exhaustive.nodes_pruned == 0
    # pruning may only remove work, never add it
    assert pruned.nodes_explored <= exhaustive.nodes_explored
    assert pruned.throughput_checks <= exhaustive.throughput_checks


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), tiles=st.integers(2, 3))
def test_search_is_deterministic(seed, tiles):
    application, architecture = _problem(seed, tiles)
    first = exact_search(
        application, architecture.copy(), weights=CostWeights.default()
    )
    second = exact_search(
        application, architecture.copy(), weights=CostWeights.default()
    )
    assert first.feasible == second.feasible
    assert first.cost == second.cost
    assert first.nodes_explored == second.nodes_explored
    assert first.nodes_pruned == second.nodes_pruned
    assert first.throughput_checks == second.throughput_checks
    if first.feasible:
        assert (
            first.allocation.binding.assignment
            == second.allocation.binding.assignment
        )
        assert (
            first.allocation.scheduling.slices
            == second.allocation.scheduling.slices
        )
        assert (
            first.allocation.achieved_throughput
            == second.allocation.achieved_throughput
        )
