"""Edge cases of the SCC-decomposing driver in throughput/state_space.

The driver analyses every strongly connected component in isolation and
combines the component rates by taking the minimum (upstream components
throttle downstream ones).  These tests pin the behaviour for graphs
that are not strongly connected, trivial single-actor components,
deadlocks, and cross-component throttling.
"""

from fractions import Fraction

import pytest

from repro.sdf.graph import SDFGraph
from repro.throughput.state_space import ThroughputResult, throughput


def _two_actor_cycle(graph, first, second, time_first, time_second, tokens):
    graph.add_actor(first, time_first)
    graph.add_actor(second, time_second)
    graph.add_channel(f"{first}{second}", first, second)
    graph.add_channel(f"{second}{first}", second, first, tokens=tokens)


class TestNonStronglyConnected:
    def test_acyclic_graph_is_unbounded(self):
        graph = SDFGraph("acyclic")
        graph.add_actor("a", 2)
        graph.add_actor("b", 3)
        graph.add_channel("ab", "a", "b")
        result = throughput(graph)
        assert result.iteration_rate == float("inf")
        assert result.of("a") == float("inf")
        assert not result.deadlocked
        assert result.scc_rates == {}

    def test_acyclic_without_auto_concurrency_limited_by_slowest(self):
        graph = SDFGraph("acyclic")
        graph.add_actor("a", 2)
        graph.add_actor("b", 5)
        graph.add_channel("ab", "a", "b")
        result = throughput(graph, auto_concurrency=False)
        # one-firing-at-a-time acts like a 1-token self-edge: 1/tau each
        assert result.iteration_rate == Fraction(1, 5)

    def test_cycle_feeding_an_acyclic_tail(self):
        graph = SDFGraph("cycle-tail")
        _two_actor_cycle(graph, "a", "b", 2, 3, tokens=1)
        graph.add_actor("sink", 100)  # unconstrained consumer
        graph.add_channel("bs", "b", "sink")
        result = throughput(graph)
        # only the (a, b) cycle constrains the rate; the sink's own
        # execution time is irrelevant under auto-concurrency
        assert result.iteration_rate == Fraction(1, 5)
        assert result.of("sink") == Fraction(1, 5)

    def test_component_rates_are_reported_per_scc(self):
        graph = SDFGraph("two-sccs")
        _two_actor_cycle(graph, "a", "b", 2, 3, tokens=1)
        _two_actor_cycle(graph, "c", "d", 1, 1, tokens=1)
        graph.add_channel("bc", "b", "c")
        result = throughput(graph)
        rates = {
            frozenset(component): rate
            for component, rate in result.scc_rates.items()
        }
        assert rates[frozenset({"a", "b"})] == Fraction(1, 5)
        assert rates[frozenset({"c", "d"})] == Fraction(1, 2)


class TestSingleActorComponents:
    def test_self_loop_actor_alone(self):
        graph = SDFGraph("selfloop")
        graph.add_actor("a", 4)
        graph.add_channel("aa", "a", "a", tokens=1)
        result = throughput(graph)
        assert result.iteration_rate == Fraction(1, 4)
        assert result.states_explored > 0

    def test_self_loop_with_two_tokens_pipelines(self):
        graph = SDFGraph("selfloop2")
        graph.add_actor("a", 4)
        graph.add_channel("aa", "a", "a", tokens=2)
        assert throughput(graph).iteration_rate == Fraction(2, 4)

    def test_tokenless_self_loop_deadlocks(self):
        graph = SDFGraph("stuck")
        graph.add_actor("a", 4)
        graph.add_channel("aa", "a", "a", tokens=0)
        result = throughput(graph)
        assert result.deadlocked
        assert result.of("a") == 0


class TestDeadlock:
    def test_tokenless_cycle_deadlocks_whole_graph(self):
        graph = SDFGraph("deadlock")
        _two_actor_cycle(graph, "a", "b", 2, 3, tokens=0)
        result = throughput(graph)
        assert result.deadlocked
        assert result.iteration_rate == 0

    def test_deadlocked_component_zeroes_a_live_one(self):
        graph = SDFGraph("half-dead")
        _two_actor_cycle(graph, "a", "b", 2, 3, tokens=1)  # live
        _two_actor_cycle(graph, "c", "d", 1, 1, tokens=0)  # deadlocked
        graph.add_channel("bc", "b", "c")
        result = throughput(graph)
        assert result.deadlocked
        assert result.iteration_rate == 0


class TestCrossComponentThrottling:
    def test_slow_upstream_throttles_fast_downstream(self):
        graph = SDFGraph("throttle")
        _two_actor_cycle(graph, "a", "b", 10, 10, tokens=1)  # period 20
        _two_actor_cycle(graph, "c", "d", 1, 1, tokens=1)  # period 2
        graph.add_channel("bc", "b", "c")
        result = throughput(graph)
        assert result.iteration_rate == Fraction(1, 20)
        # the downstream actors can only sustain the upstream rate
        assert result.of("c") == Fraction(1, 20)

    def test_fast_upstream_does_not_unthrottle_slow_downstream(self):
        graph = SDFGraph("slow-tail")
        _two_actor_cycle(graph, "a", "b", 1, 1, tokens=1)  # period 2
        _two_actor_cycle(graph, "c", "d", 10, 10, tokens=1)  # period 20
        graph.add_channel("bc", "b", "c")
        result = throughput(graph)
        assert result.iteration_rate == Fraction(1, 20)

    def test_multirate_components_scale_by_gamma(self):
        graph = SDFGraph("multirate-sccs")
        graph.add_actor("a", 4)
        graph.add_channel("aa", "a", "a", tokens=1)  # a alone: 1/4
        graph.add_actor("b", 1)
        graph.add_channel("bb", "b", "b", tokens=1)
        graph.add_channel("ab", "a", "b", 1, 2)  # a fires twice per b
        result = throughput(graph)
        # gamma = (a: 2, b: 1): an iteration needs two a firings at
        # 1/4 each (component rate 1/8) and one b firing (rate 1/1)
        assert result.gamma == {"a": 2, "b": 1}
        assert result.iteration_rate == Fraction(1, 8)
        assert result.of("a") == Fraction(1, 4)


class TestThroughputResultOf:
    def test_missing_actor_reports_zero_rate(self):
        result = ThroughputResult(iteration_rate=Fraction(1, 5), gamma={"a": 1})
        assert result.of("ghost") == Fraction(0)

    def test_missing_actor_on_unbounded_graph_reports_zero(self):
        result = ThroughputResult(iteration_rate=float("inf"), gamma={"a": 1})
        assert result.of("ghost") == Fraction(0)

    def test_known_actor_still_scales_by_gamma(self):
        result = ThroughputResult(iteration_rate=Fraction(1, 6), gamma={"a": 3})
        assert result.of("a") == Fraction(1, 2)

    def test_missing_actor_from_driver_result(self, simple_cycle_graph):
        result = throughput(simple_cycle_graph)
        assert result.of("not-an-actor") == Fraction(0)
