"""Unit tests for the application-ordering extension (§10.1)."""

from fractions import Fraction

import pytest

from repro.appmodel.example import (
    paper_example_application,
    paper_example_architecture,
)
from repro.arch.presets import benchmark_architectures
from repro.core.tile_cost import CostWeights
from repro.extensions.ordering import (
    ORDERING_STRATEGIES,
    compare_orderings,
    order_applications,
)
from repro.generate.benchmark import generate_benchmark_set


@pytest.fixture(scope="module")
def mixed_apps():
    types = benchmark_architectures()[0].processor_types()
    return generate_benchmark_set("mixed", 8, types, seed=5)


def test_all_strategies_permute_without_loss(mixed_apps):
    names = sorted(app.name for app in mixed_apps)
    for strategy in ORDERING_STRATEGIES:
        ordered = order_applications(mixed_apps, strategy)
        assert sorted(app.name for app in ordered) == names


def test_fifo_keeps_input_order(mixed_apps):
    ordered = order_applications(mixed_apps, "fifo")
    assert [a.name for a in ordered] == [a.name for a in mixed_apps]


def test_heaviest_first_descending_work(mixed_apps):
    ordered = order_applications(mixed_apps, "heaviest-first")
    work = [a.total_worst_case_work() for a in ordered]
    assert work == sorted(work, reverse=True)


def test_lightest_first_is_reverse_of_heaviest(mixed_apps):
    heavy = order_applications(mixed_apps, "heaviest-first")
    light = order_applications(mixed_apps, "lightest-first")
    assert [a.total_worst_case_work() for a in light] == sorted(
        a.total_worst_case_work() for a in heavy
    )


def test_unknown_strategy_rejected(mixed_apps):
    with pytest.raises(KeyError, match="unknown ordering strategy"):
        order_applications(mixed_apps, "random")


def test_compare_orderings_runs_each_strategy():
    architecture = paper_example_architecture()
    applications = [
        paper_example_application(Fraction(1, 200)) for _ in range(6)
    ]
    results = compare_orderings(
        architecture,
        applications,
        weights=CostWeights(1, 1, 1),
        strategies=["fifo", "heaviest-first"],
    )
    assert set(results) == {"fifo", "heaviest-first"}
    for result in results.values():
        assert result.applications_bound >= 1


def test_compare_orderings_does_not_mutate_architecture():
    architecture = paper_example_architecture()
    applications = [paper_example_application(Fraction(1, 200))]
    compare_orderings(
        architecture, applications, strategies=["fifo"]
    )
    assert architecture.total_usage()["timewheel"] == 0


def test_identical_apps_order_stable():
    applications = [
        paper_example_application(Fraction(1, 200)) for _ in range(3)
    ]
    for strategy in ORDERING_STRATEGIES:
        ordered = order_applications(applications, strategy)
        assert ordered == applications  # all keys tie -> stable
