"""Property: generated models are always lint-clean at error severity.

The generators of :mod:`repro.generate` promise consistent, live
graphs, and the benchmark generator scales constraints from the
measured ideal throughput — so the analyser's error rules (which claim
to be *proofs* of infeasibility) must never fire on them.  A failure
here means either a generator emits broken models or a lint rule
over-approximates (a false positive the pre-flight gate would turn
into a wrongly rejected application).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis import analyse_application, analyse_graph, preflight_check
from repro.arch.presets import benchmark_architectures
from repro.generate.benchmark import generate_benchmark_set
from repro.generate.random_sdf import RandomSDFParameters, random_sdfg


@st.composite
def generated_sdfgs(draw):
    seed = draw(st.integers(0, 10_000))
    actors = draw(st.integers(2, 6))
    parameters = RandomSDFParameters(
        actors_min=actors,
        actors_max=actors,
        repetition_min=1,
        repetition_max=draw(st.integers(1, 3)),
        extra_channel_fraction=draw(st.floats(0.0, 1.0)),
        back_edge_probability=draw(st.floats(0.0, 1.0)),
        self_edge_fraction=draw(st.floats(0.0, 0.7)),
    )
    return random_sdfg(parameters, random.Random(seed))


@settings(max_examples=60, deadline=None)
@given(generated_sdfgs())
def test_random_sdfgs_have_no_error_findings(graph):
    report = analyse_graph(graph)
    assert not report.has_errors, report.render_text()


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    set_name=st.sampled_from(["processing", "memory", "communication", "mixed"]),
)
def test_generated_applications_pass_the_preflight_gate(seed, set_name):
    architecture = benchmark_architectures()[0]
    applications = generate_benchmark_set(
        set_name, 2, architecture.processor_types(), seed=seed
    )
    for application in applications:
        report = analyse_application(application, architecture)
        assert not report.has_errors, report.render_text()
        gate = preflight_check(application, architecture)
        assert len(gate) == 0, gate.render_text()
