"""Unit tests for the SDFG data structures."""

import pytest

from repro.sdf.graph import Actor, Channel, SDFGraph, chain


class TestActor:
    def test_defaults(self):
        actor = Actor("a")
        assert actor.name == "a"
        assert actor.execution_time == 1

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Actor("")

    def test_rejects_negative_execution_time(self):
        with pytest.raises(ValueError):
            Actor("a", -1)

    def test_zero_execution_time_allowed(self):
        assert Actor("a", 0).execution_time == 0

    def test_hash_by_name(self):
        assert hash(Actor("a", 1)) == hash(Actor("a", 7))


class TestChannel:
    def test_defaults(self):
        channel = Channel("d", "a", "b")
        assert channel.production == 1
        assert channel.consumption == 1
        assert channel.tokens == 0

    def test_rejects_zero_rates(self):
        with pytest.raises(ValueError):
            Channel("d", "a", "b", production=0)
        with pytest.raises(ValueError):
            Channel("d", "a", "b", consumption=0)

    def test_rejects_negative_tokens(self):
        with pytest.raises(ValueError):
            Channel("d", "a", "b", tokens=-1)

    def test_self_loop_detection(self):
        assert Channel("d", "a", "a").is_self_loop
        assert not Channel("d", "a", "b").is_self_loop


class TestSDFGraph:
    def test_add_and_query_actor(self):
        graph = SDFGraph()
        graph.add_actor("a", 5)
        assert graph.has_actor("a")
        assert graph.actor("a").execution_time == 5
        assert len(graph) == 1
        assert "a" in graph

    def test_duplicate_actor_rejected(self):
        graph = SDFGraph()
        graph.add_actor("a")
        with pytest.raises(ValueError):
            graph.add_actor("a")

    def test_channel_requires_known_endpoints(self):
        graph = SDFGraph()
        graph.add_actor("a")
        with pytest.raises(KeyError):
            graph.add_channel("d", "a", "missing")
        with pytest.raises(KeyError):
            graph.add_channel("d", "missing", "a")

    def test_duplicate_channel_rejected(self):
        graph = SDFGraph()
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_channel("d", "a", "b")
        with pytest.raises(ValueError):
            graph.add_channel("d", "b", "a")

    def test_incidence_queries(self):
        graph = SDFGraph()
        for name in "abc":
            graph.add_actor(name)
        graph.add_channel("d1", "a", "b")
        graph.add_channel("d2", "a", "c")
        graph.add_channel("d3", "b", "c")
        assert [c.name for c in graph.out_channels("a")] == ["d1", "d2"]
        assert [c.name for c in graph.in_channels("c")] == ["d2", "d3"]
        assert graph.successors("a") == ["b", "c"]
        assert graph.predecessors("c") == ["a", "b"]

    def test_self_loop_appears_in_both_directions(self):
        graph = SDFGraph()
        graph.add_actor("a")
        graph.add_channel("s", "a", "a", tokens=1)
        assert [c.name for c in graph.out_channels("a")] == ["s"]
        assert [c.name for c in graph.in_channels("a")] == ["s"]

    def test_channels_between(self):
        graph = SDFGraph()
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_channel("d1", "a", "b")
        graph.add_channel("d2", "a", "b")
        graph.add_channel("d3", "b", "a")
        assert {c.name for c in graph.channels_between("a", "b")} == {"d1", "d2"}

    def test_remove_channel(self):
        graph = SDFGraph()
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_channel("d", "a", "b")
        graph.remove_channel("d")
        assert not graph.has_channel("d")
        assert graph.successors("a") == []

    def test_remove_actor_removes_incident_channels(self):
        graph = SDFGraph()
        for name in "abc":
            graph.add_actor(name)
        graph.add_channel("d1", "a", "b")
        graph.add_channel("d2", "b", "c")
        graph.add_channel("s", "b", "b")
        graph.remove_actor("b")
        assert not graph.has_actor("b")
        assert graph.channel_names == []

    def test_remove_unknown_actor_raises(self):
        with pytest.raises(KeyError):
            SDFGraph().remove_actor("nope")

    def test_copy_is_deep(self):
        graph = SDFGraph("orig")
        graph.add_actor("a", 3)
        graph.add_actor("b")
        graph.add_channel("d", "a", "b", 2, 3, 1)
        clone = graph.copy()
        clone.actor("a").execution_time = 9
        clone.add_actor("c")
        assert graph.actor("a").execution_time == 3
        assert not graph.has_actor("c")
        assert clone.channel("d").tokens == 1

    def test_subgraph_keeps_internal_channels_only(self):
        graph = SDFGraph()
        for name in "abc":
            graph.add_actor(name)
        graph.add_channel("d1", "a", "b")
        graph.add_channel("d2", "b", "c")
        sub = graph.subgraph(["a", "b"])
        assert sub.actor_names == ["a", "b"]
        assert sub.channel_names == ["d1"]

    def test_subgraph_unknown_actor_raises(self):
        graph = SDFGraph()
        graph.add_actor("a")
        with pytest.raises(KeyError):
            graph.subgraph(["a", "ghost"])

    def test_iteration_and_repr(self):
        graph = SDFGraph("g")
        graph.add_actor("a")
        graph.add_actor("b")
        assert [a.name for a in graph] == ["a", "b"]
        assert "actors=2" in repr(graph)

    def test_execution_times_mapping(self):
        graph = SDFGraph()
        graph.add_actor("a", 4)
        graph.add_actor("b", 7)
        assert graph.execution_times() == {"a": 4, "b": 7}


class TestChainBuilder:
    def test_open_chain(self):
        graph = chain(["a", "b", "c"])
        assert graph.channel_names == ["a->b", "b->c"]

    def test_closed_chain(self):
        graph = chain(["a", "b"], tokens_on_back_edge=3)
        back = graph.channel("b->a")
        assert back.tokens == 3

    def test_execution_times_applied(self):
        graph = chain(["a", "b"], [5, 6])
        assert graph.actor("b").execution_time == 6

    def test_mismatched_times_rejected(self):
        with pytest.raises(ValueError):
            chain(["a", "b"], [1])

    def test_single_actor_chain_ignores_back_edge(self):
        graph = chain(["a"], tokens_on_back_edge=1)
        assert graph.channel_names == []
