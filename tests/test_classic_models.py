"""Unit tests for the classic SDF benchmark applications."""

from fractions import Fraction

import pytest

from repro.arch.tile import ProcessorType
from repro.core.strategy import ResourceAllocator
from repro.core.tile_cost import CostWeights
from repro.arch.presets import mesh_architecture
from repro.generate.classic import (
    modem,
    samplerate_converter,
    satellite_receiver,
)
from repro.sdf.repetition import iteration_length, repetition_vector
from repro.sdf.validate import validate_graph
from repro.throughput.state_space import throughput


class TestSamplerateConverter:
    def test_literature_repetition_vector(self):
        gamma = repetition_vector(samplerate_converter().graph)
        assert gamma == {
            "cd": 147,
            "fir1": 147,
            "fir2": 98,
            "fir3": 28,
            "fir4": 32,
            "dat": 160,
        }

    def test_hsdf_size_612(self):
        assert iteration_length(samplerate_converter().graph) == 612

    def test_valid_and_live(self):
        validate_graph(samplerate_converter().graph)

    def test_conversion_ratio(self):
        """DAT samples out per CD sample in is exactly 160/147."""
        gamma = repetition_vector(samplerate_converter().graph)
        assert Fraction(gamma["dat"], gamma["cd"]) == Fraction(160, 147)

    def test_analysable(self):
        result = throughput(
            samplerate_converter().graph, auto_concurrency=False
        )
        assert result.iteration_rate > 0

    def test_requirements_complete(self):
        samplerate_converter().check_complete()


class TestModem:
    def test_sixteen_single_rate_actors(self):
        graph = modem().graph
        assert len(graph) == 16
        assert set(repetition_vector(graph).values()) == {1}

    def test_valid_and_live(self):
        validate_graph(modem().graph)

    def test_feedback_loops_bound_the_rate(self):
        result = throughput(modem().graph)
        assert 0 < result.iteration_rate < 1

    def test_allocatable_on_a_mesh(self):
        application = modem(processor=ProcessorType("dsp"))
        platform = mesh_architecture(
            2,
            2,
            [ProcessorType("dsp")],
            wheel=100,
            memory=100_000,
            bandwidth_in=5_000,
            bandwidth_out=5_000,
        )
        allocation = ResourceAllocator(weights=CostWeights(0, 1, 2)).allocate(
            application, platform
        )
        assert allocation.satisfied


class TestSatelliteReceiver:
    def test_twenty_two_actors(self):
        assert len(satellite_receiver().graph) == 22

    def test_downsampling_structure(self):
        gamma = repetition_vector(satellite_receiver().graph)
        # the front end runs 16x per demodulated symbol (two 4:1 stages)
        assert gamma["source"] == 16 * gamma["demod"]
        assert gamma["frontend_i"] == 16 * gamma["demod"]
        assert gamma["mf_i"] == gamma["demod"]

    def test_channels_symmetric(self):
        gamma = repetition_vector(satellite_receiver().graph)
        for stage in ("frontend", "fir1", "down1", "mf", "dec"):
            assert gamma[f"{stage}_i"] == gamma[f"{stage}_q"]

    def test_valid_and_live(self):
        validate_graph(satellite_receiver().graph)

    def test_analysable(self):
        result = throughput(
            satellite_receiver().graph, auto_concurrency=False
        )
        assert result.iteration_rate > 0
