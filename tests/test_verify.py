"""Independent allocation certification (``make test-verify``).

The verifier (:mod:`repro.verify`) must certify everything the
allocator legitimately produces — the paper example, multi-application
flows, every degradation-ladder rung — and refute any tampering with
the claims: inflated throughput, shrunken resource claims, reordered
schedules, forged certificates.
"""

import copy
import json
from fractions import Fraction

import pytest

from repro.appmodel.example import paper_example
from repro.appmodel.serialization import bundle_to_dict, bundle_to_json
from repro.core.strategy import ResourceAllocator
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.resilience.policy import (
    resilient_allocate,
    tdma_baseline_allocate,
)
from repro.verify import (
    VERDICT_CERTIFIED,
    VERDICT_REFUTED,
    VERDICT_SOUND_LOWER_BOUND,
    CertificateFormatError,
    certify_allocation,
    certify_flow,
    replay_certificate,
    validate_certificate,
)


@pytest.fixture(scope="module")
def example_bundle():
    """The paper example's allocation as a JSON-round-tripped bundle."""
    application, architecture, _ = paper_example()
    allocation = ResourceAllocator().allocate(application, architecture)
    bundle = bundle_to_dict(architecture, [allocation])
    return json.loads(json.dumps(bundle))


def _mutated(bundle, mutate):
    clone = copy.deepcopy(bundle)
    mutate(clone["allocations"][0], clone)
    return clone


def _verdict(bundle):
    report = certify_allocation(bundle)
    assert len(report.verdicts) == len(bundle["allocations"])
    return report.verdicts[0]


# -- legitimate outputs certify --------------------------------------------


def test_paper_example_is_certified(example_bundle):
    report = certify_allocation(example_bundle)
    assert report.certified
    assert not report.refuted
    assert report.verdicts[0].verdict == VERDICT_CERTIFIED
    assert "certified" in report.summary()


def test_certify_flow_on_live_result():
    from repro.arch.presets import benchmark_architectures
    from repro.arch.serialization import (
        architecture_from_dict,
        architecture_to_dict,
    )
    from repro.core.flow import allocate_until_failure
    from repro.generate.benchmark import generate_benchmark_set

    architecture = benchmark_architectures()[0]
    pre_flow = architecture_from_dict(architecture_to_dict(architecture))
    applications = generate_benchmark_set(
        "mixed", 3, architecture.processor_types(), seed=0
    )
    result = allocate_until_failure(architecture, applications)
    assert result.applications_bound == 3
    report = certify_flow(pre_flow, result)
    assert report.certified
    assert all(v.verdict == VERDICT_CERTIFIED for v in report.verdicts)


@pytest.mark.parametrize(
    "failures,expected_rung",
    [(0, "exact"), (1, "no-refinement"), (2, "capped-search")],
)
def test_every_strategy_rung_output_certifies(failures, expected_rung):
    """Each ladder rung's allocation must hold up to independent replay."""
    application, architecture, _ = paper_example()
    if failures:
        spec = FaultSpec(
            point="scheduling.build", error="explosion", times=failures
        )
        with FaultInjector(specs=[spec]):
            result = resilient_allocate(application, architecture)
        assert result.rung == expected_rung
        allocation, rung = result.allocation, result.rung
    else:
        allocation = ResourceAllocator().allocate(application, architecture)
        rung = None
    bundle = json.loads(
        json.dumps(bundle_to_dict(architecture, [allocation], rungs=[rung]))
    )
    verdict = _verdict(bundle)
    assert verdict.verdict == VERDICT_CERTIFIED, verdict.reasons


def test_tdma_baseline_is_a_sound_lower_bound():
    """The baseline rung has no schedules, hence no certificate: its
    throughput claim is conservative by construction, not replayable."""
    application, architecture, _ = paper_example()
    allocation = tdma_baseline_allocate(
        application, architecture, ResourceAllocator()
    )
    bundle = json.loads(
        json.dumps(
            bundle_to_dict(architecture, [allocation], rungs=["tdma-baseline"])
        )
    )
    verdict = _verdict(bundle)
    assert verdict.verdict == VERDICT_SOUND_LOWER_BOUND
    assert not certify_allocation(bundle).refuted


# -- tampering is refuted ---------------------------------------------------


def test_refutes_inflated_throughput_claim(example_bundle):
    def mutate(entry, bundle):
        entry["achieved_throughput"] = str(
            Fraction(entry["achieved_throughput"]) * 2
        )

    verdict = _verdict(_mutated(example_bundle, mutate))
    assert verdict.verdict == VERDICT_REFUTED
    assert any("exceeds" in reason for reason in verdict.reasons)


def test_refutes_slice_sum_overflowing_the_wheel(example_bundle):
    def mutate(entry, bundle):
        tile = next(iter(entry["slices"]))
        wheel = next(
            t["wheel"]
            for t in bundle["architecture"]["tiles"]
            if t["name"] == tile
        )
        entry["slices"][tile] = wheel + 1
        entry["reservation"][tile]["time_slice"] = wheel + 1

    verdict = _verdict(_mutated(example_bundle, mutate))
    assert verdict.verdict == VERDICT_REFUTED


def test_refutes_reservation_slice_mismatch(example_bundle):
    def mutate(entry, bundle):
        tile = next(iter(entry["slices"]))
        entry["reservation"][tile]["time_slice"] = (
            entry["slices"][tile] - 1
        )

    verdict = _verdict(_mutated(example_bundle, mutate))
    assert verdict.verdict == VERDICT_REFUTED


def test_refutes_inadmissible_schedule_order(example_bundle):
    def mutate(entry, bundle):
        for tile, schedule in entry["schedules"].items():
            if len(schedule["periodic"]) >= 2:
                schedule["periodic"] = list(reversed(schedule["periodic"]))
                return
        pytest.skip("no multi-actor schedule in the example allocation")

    verdict = _verdict(_mutated(example_bundle, mutate))
    assert verdict.verdict == VERDICT_REFUTED


def test_refutes_corrupted_certificate_tokens(example_bundle):
    def mutate(entry, bundle):
        entry["certificate"]["tokens"] = [
            count + 1 for count in entry["certificate"]["tokens"]
        ]

    verdict = _verdict(_mutated(example_bundle, mutate))
    assert verdict.verdict == VERDICT_REFUTED


def test_refutes_shortened_period_with_same_firings(example_bundle):
    def mutate(entry, bundle):
        certificate = entry["certificate"]
        certificate["period"] = max(1, certificate["period"] // 2)

    verdict = _verdict(_mutated(example_bundle, mutate))
    assert verdict.verdict == VERDICT_REFUTED


def test_refutes_memory_claim_below_demand(example_bundle):
    def mutate(entry, bundle):
        for tile, claim in entry["reservation"].items():
            if claim["memory"] > 0:
                claim["memory"] = claim["memory"] - 1
                return
        pytest.skip("no memory demand in the example allocation")

    verdict = _verdict(_mutated(example_bundle, mutate))
    assert verdict.verdict == VERDICT_REFUTED


def test_refutes_binding_to_unknown_tile(example_bundle):
    def mutate(entry, bundle):
        actor = next(iter(entry["binding"]))
        entry["binding"][actor] = "no-such-tile"

    verdict = _verdict(_mutated(example_bundle, mutate))
    assert verdict.verdict == VERDICT_REFUTED


def test_refutes_dropped_certificate(example_bundle):
    """Schedules present but no certificate: nothing vouches for the
    claimed rate, so the entry cannot certify."""

    def mutate(entry, bundle):
        entry["certificate"] = None

    verdict = _verdict(_mutated(example_bundle, mutate))
    assert verdict.verdict == VERDICT_REFUTED


# -- certificate primitives -------------------------------------------------


def test_validate_certificate_accepts_engine_output(example_bundle):
    certificate = example_bundle["allocations"][0]["certificate"]
    assert validate_certificate(certificate) is certificate


def test_validate_certificate_rejects_malformed(example_bundle):
    certificate = copy.deepcopy(
        example_bundle["allocations"][0]["certificate"]
    )
    certificate["period"] = 0
    with pytest.raises(CertificateFormatError):
        validate_certificate(certificate)
    with pytest.raises(CertificateFormatError):
        validate_certificate({"format": "wrong"})


def test_replay_self_timed_certificate():
    """A multirate cycle's engine certificate replays to its exact rate."""
    from repro.sdf.graph import SDFGraph
    from repro.throughput.state_space import throughput

    graph = SDFGraph("multirate")
    graph.add_actor("a", 1)
    graph.add_actor("b", 2)
    graph.add_channel("ab", "a", "b", production=2, consumption=3)
    graph.add_channel("ba", "b", "a", production=3, consumption=2, tokens=6)
    result = throughput(graph)
    assert result.certificates
    topology = {
        channel.name: {
            "src": channel.src,
            "dst": channel.dst,
            "production": channel.production,
            "consumption": channel.consumption,
            "tokens": channel.tokens,
        }
        for channel in graph.channels
    }
    for component, certificate in result.certificates.items():
        replayed = replay_certificate(
            json.loads(json.dumps(certificate)), topology
        )
        for actor in component:
            assert (
                Fraction(replayed["firings"][actor], replayed["period"])
                == result.of(actor)
            )


# -- observability ----------------------------------------------------------


def test_verifier_threads_obs_metrics(example_bundle):
    from repro.obs import collecting

    with collecting() as metrics:
        certify_allocation(example_bundle)
        certify_allocation(
            _mutated(
                example_bundle,
                lambda entry, bundle: entry["certificate"].update(
                    {"period": 1}
                ),
            )
        )
        counters = metrics.snapshot()["counters"]
    assert counters["verify.certificates_checked"] == 2
    assert counters["verify.certificates_refuted"] == 1
    assert counters["verify.allocations_certified"] == 1
    assert counters["verify.allocations_refuted"] == 1


def test_checkpoint_paths_thread_obs_metrics(tmp_path):
    from repro.generate.random_sdf import random_sdfg
    from repro.obs import collecting
    from repro.resilience.budget import Budget, BudgetExceededError
    from repro.resilience.checkpoint import (
        resume_from_checkpoint,
        write_checkpoint,
    )
    from repro.throughput.state_space import throughput

    import random

    checkpoint = None
    for seed in range(1, 50):
        graph = random_sdfg(rng=random.Random(seed), name=f"g{seed}")
        try:
            throughput(graph, budget=Budget(max_states=2))
        except BudgetExceededError as error:
            checkpoint = error.partial["checkpoint"]
            break
    assert checkpoint is not None
    path = str(tmp_path / "ck.json")
    with collecting() as metrics:
        write_checkpoint(path, checkpoint)
        resume_from_checkpoint(path)
        counters = metrics.snapshot()["counters"]
    assert counters["checkpoint.writes"] == 1
    assert counters["checkpoint.bytes"] > 0
    assert counters["checkpoint.reads"] == 1
    assert counters["checkpoint.resumes"] == 1


# -- CLI exit codes ---------------------------------------------------------


def _corruptions():
    """Named tampering recipes; each must drive the CLI to exit 4."""

    def inflate_throughput(entry):
        entry["achieved_throughput"] = str(
            Fraction(entry["achieved_throughput"]) * 2
        )

    def overflow_slice_sum(entry):
        tile = next(iter(entry["slices"]))
        entry["slices"][tile] += 1000
        entry["reservation"][tile]["time_slice"] += 1000

    def reorder_schedule(entry):
        for schedule in entry["schedules"].values():
            if len(schedule["periodic"]) >= 2:
                schedule["periodic"] = list(reversed(schedule["periodic"]))
                return
        raise AssertionError("example has no multi-actor schedule")

    def forge_certificate_tokens(entry):
        entry["certificate"]["tokens"] = [
            count + 1 for count in entry["certificate"]["tokens"]
        ]

    def shrink_memory_claim(entry):
        for claim in entry["reservation"].values():
            if claim["memory"] > 0:
                claim["memory"] -= 1
                return
        raise AssertionError("example claims no memory")

    def halve_certificate_period(entry):
        entry["certificate"]["period"] = max(
            1, entry["certificate"]["period"] // 2
        )

    return [
        ("inflated-throughput", inflate_throughput),
        ("slice-sum-overflow", overflow_slice_sum),
        ("schedule-reorder", reorder_schedule),
        ("forged-cert-tokens", forge_certificate_tokens),
        ("shrunken-memory", shrink_memory_claim),
        ("halved-cert-period", halve_certificate_period),
    ]


def test_cli_verify_certifies_the_paper_example(tmp_path):
    from repro.cli import main

    application, architecture, _ = paper_example()
    allocation = ResourceAllocator().allocate(application, architecture)
    good = tmp_path / "good.json"
    good.write_text(bundle_to_json(architecture, [allocation]))
    assert main(["verify", str(good)]) == 0

    not_a_bundle = tmp_path / "nope.json"
    not_a_bundle.write_text("{}")
    assert main(["verify", str(not_a_bundle)]) == 2


@pytest.mark.parametrize(
    "name,corrupt", _corruptions(), ids=[n for n, _ in _corruptions()]
)
def test_cli_verify_refutes_corrupted_bundles(
    tmp_path, example_bundle, name, corrupt
):
    from repro.cli import main

    bundle = copy.deepcopy(example_bundle)
    corrupt(bundle["allocations"][0])
    bad = tmp_path / f"{name}.json"
    bad.write_text(json.dumps(bundle))
    assert main(["verify", str(bad)]) == 4
