"""Fault-injection tests (``pytest -m faults``, ``make test-robustness``).

Drives the seeded :class:`~repro.resilience.faults.FaultInjector`
through the permanently-wired fault points to prove the resilience
promises: every degradation rung is reachable, a mid-commit crash never
corrupts tile occupancy, and an unexpected error in one application is
isolated from the rest of a flow.
"""

from fractions import Fraction

import pytest

from repro.appmodel.example import (
    paper_example,
    paper_example_application,
    paper_example_architecture,
)
from repro.core.flow import allocate_until_failure
from repro.core.strategy import AllocationError, ResourceAllocator
from repro.resilience import (
    Budget,
    BudgetExceededError,
    FaultInjector,
    FaultSpec,
    InjectedFaultError,
    active_injector,
    fault_point,
)
from repro.resilience.policy import DEFAULT_LADDER, resilient_allocate
from repro.throughput.state_space import StateSpaceExplosionError

pytestmark = pytest.mark.faults


# -- spec and injector mechanics ------------------------------------------


def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(point="x", error="bogus")
    with pytest.raises(ValueError):
        FaultSpec(point="x", after=-1)
    with pytest.raises(ValueError):
        FaultSpec(point="x", times=-1)


def test_fault_point_is_noop_without_injector():
    assert active_injector() is None
    fault_point("state_space.execute", graph="g")  # must not raise


def test_injectors_do_not_nest():
    with FaultInjector():
        with pytest.raises(RuntimeError):
            with FaultInjector():
                pass
    assert active_injector() is None


def test_injector_deactivates_after_exception():
    with pytest.raises(InjectedFaultError):
        with FaultInjector(specs=[FaultSpec(point="p", error="runtime")]):
            fault_point("p")
    assert active_injector() is None


def test_count_semantics_after_and_times():
    spec = FaultSpec(point="p", error="runtime", after=2, times=2)
    with FaultInjector(specs=[spec]) as injector:
        fault_point("p")  # visit 1: passes
        fault_point("p")  # visit 2: passes
        for _ in range(2):  # visits 3 and 4: raise
            with pytest.raises(InjectedFaultError):
                fault_point("p")
        fault_point("p")  # visit 5: budget of faults spent, passes
    assert len(injector.visits) == 5
    assert len(injector.injected) == 2


def test_prefix_matching_and_context_recording():
    spec = FaultSpec(point="commit.", error="runtime")
    with FaultInjector(specs=[spec]) as injector:
        fault_point("state_space.execute", graph="g")  # no match
        with pytest.raises(InjectedFaultError):
            fault_point("commit.apply", tile="t1", index=0)
    assert injector.injected == [
        ("commit.apply", "runtime", {"tile": "t1", "index": 0})
    ]


def test_probability_mode_is_seed_deterministic():
    def run(seed):
        spec = FaultSpec(
            point="p", error="runtime", times=None, probability=0.5
        )
        fired = []
        with FaultInjector(specs=[spec], seed=seed):
            for i in range(50):
                try:
                    fault_point("p")
                    fired.append(False)
                except InjectedFaultError:
                    fired.append(True)
        return fired

    assert run(7) == run(7)
    assert any(run(7)) and not all(run(7))
    assert run(7) != run(8)


def test_injected_deadline_fault_is_typed():
    spec = FaultSpec(point="p", error="deadline")
    with FaultInjector(specs=[spec]):
        with pytest.raises(BudgetExceededError) as info:
            fault_point("p")
    assert info.value.reason == "deadline"
    assert info.value.partial["injected"] is True


# -- every degradation rung is reachable ----------------------------------


def test_injected_explosion_fails_exact_strategy():
    application, architecture, _ = paper_example()
    spec = FaultSpec(point="scheduling.build", error="explosion")
    with FaultInjector(specs=[spec]):
        with pytest.raises(AllocationError) as info:
            ResourceAllocator().allocate(application, architecture)
    assert isinstance(info.value.__cause__, StateSpaceExplosionError)


@pytest.mark.parametrize(
    "failures,expected_rung",
    [
        (1, "no-refinement"),
        (2, "capped-search"),
        (3, "tdma-baseline"),
    ],
)
def test_ladder_descends_one_rung_per_injected_explosion(
    failures, expected_rung
):
    """Each strategy rung starts with one list-scheduling run, so
    failing the first N ``scheduling.build`` visits lands the ladder
    exactly N rungs down (the TDMA baseline never builds schedules)."""
    application, architecture, _ = paper_example()
    spec = FaultSpec(point="scheduling.build", error="explosion", times=failures)
    with FaultInjector(specs=[spec]) as injector:
        result = resilient_allocate(application, architecture)
    assert result.rung == expected_rung
    assert result.degraded
    assert len(result.attempts) == failures
    assert len(injector.injected) == failures
    assert result.allocation.satisfied


def test_injected_deadline_skips_to_baseline():
    """A simulated overrun in the first rung expires the real budget
    path: the remaining strategy rungs are skipped."""
    application, architecture, _ = paper_example()
    spec = FaultSpec(point="scheduling.build", error="deadline")
    with FaultInjector(specs=[spec]):
        result = resilient_allocate(
            application, architecture, budget=Budget(deadline=1000.0)
        )
    assert result.degraded
    assert result.allocation.satisfied
    assert result.attempts[0][0] == "exact"


# -- transactional commit under injected crashes --------------------------


def _occupancy(architecture):
    return [
        (
            tile.name,
            tile.wheel_occupied,
            tile.memory_occupied,
            tile.connections_occupied,
            tile.bandwidth_in_occupied,
            tile.bandwidth_out_occupied,
        )
        for tile in architecture.tiles
    ]


def test_mid_commit_fault_rolls_back_bit_identically():
    application, architecture, _ = paper_example()
    allocation = ResourceAllocator().allocate(application, architecture)
    assert len(allocation.reservation.tiles) >= 2  # multi-tile transaction
    before = _occupancy(architecture)
    # let the first tile apply, crash on the second
    spec = FaultSpec(point="commit.apply", error="runtime", after=1)
    with FaultInjector(specs=[spec]) as injector:
        with pytest.raises(InjectedFaultError):
            allocation.reservation.commit(architecture)
    assert injector.injected[0][2]["index"] == 1
    assert _occupancy(architecture) == before
    # the transaction is retryable once the fault is gone
    allocation.reservation.commit(architecture)
    assert _occupancy(architecture) != before


def test_commit_fault_on_first_tile_applies_nothing():
    application, architecture, _ = paper_example()
    allocation = ResourceAllocator().allocate(application, architecture)
    before = _occupancy(architecture)
    spec = FaultSpec(point="commit.apply", error="runtime")
    with FaultInjector(specs=[spec]):
        with pytest.raises(InjectedFaultError):
            allocation.reservation.commit(architecture)
    assert _occupancy(architecture) == before


# -- flow-level isolation --------------------------------------------------


def test_flow_isolates_injected_runtime_error():
    applications = [paper_example_application(), paper_example_application()]
    architecture = paper_example_architecture()
    spec = FaultSpec(point="scheduling.build", error="runtime")
    with FaultInjector(specs=[spec]):
        result = allocate_until_failure(
            architecture, applications, continue_after_failure=True
        )
    outcomes = [r["outcome"] for r in result.application_stats]
    assert outcomes == ["error", "allocated"]
    assert "InjectedFaultError" in result.application_stats[0]["reason"]
    assert result.applications_bound == 1


def test_flow_isolates_mid_commit_fault():
    """A commit crash costs only its own application; tile occupancy
    stays consistent for the next one."""
    applications = [paper_example_application(), paper_example_application()]
    architecture = paper_example_architecture()
    clean = _occupancy(architecture)
    spec = FaultSpec(point="commit.apply", error="runtime")
    with FaultInjector(specs=[spec]):
        result = allocate_until_failure(
            architecture, applications, continue_after_failure=True
        )
    outcomes = [r["outcome"] for r in result.application_stats]
    assert outcomes == ["error", "allocated"]
    # first app rolled back fully; usage reflects only the second
    assert _occupancy(architecture) != clean
    assert result.applications_bound == 1


# -- checkpoint fault points ----------------------------------------------


def _payload(**extra):
    return {
        "format": "repro-checkpoint",
        "version": 1,
        "kind": "state-space",
        **extra,
    }


def test_fault_mid_checkpoint_write_preserves_the_previous_file(tmp_path):
    """A crash between the temp write and the atomic rename must leave
    the previous complete checkpoint untouched — and no temp debris."""
    from repro.resilience.checkpoint import read_checkpoint, write_checkpoint

    path = str(tmp_path / "ck.json")
    write_checkpoint(path, _payload(generation=1))
    spec = FaultSpec(point="checkpoint.write", error="runtime")
    with FaultInjector(specs=[spec]) as injector:
        with pytest.raises(InjectedFaultError):
            write_checkpoint(path, _payload(generation=2))
    assert injector.injected[0][2]["path"] == path
    assert read_checkpoint(path)["generation"] == 1
    assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]


def test_fault_on_first_checkpoint_write_leaves_no_file(tmp_path):
    from repro.resilience.checkpoint import write_checkpoint

    path = str(tmp_path / "ck.json")
    spec = FaultSpec(point="checkpoint.write", error="runtime")
    with FaultInjector(specs=[spec]):
        with pytest.raises(InjectedFaultError):
            write_checkpoint(path, _payload())
    assert list(tmp_path.iterdir()) == []


def test_fault_on_checkpoint_read_is_injectable(tmp_path):
    from repro.resilience.checkpoint import read_checkpoint, write_checkpoint

    path = str(tmp_path / "ck.json")
    write_checkpoint(path, _payload())
    spec = FaultSpec(point="checkpoint.read", error="runtime")
    with FaultInjector(specs=[spec]) as injector:
        with pytest.raises(InjectedFaultError):
            read_checkpoint(path)
    assert injector.injected[0][2]["path"] == path
    read_checkpoint(path)  # unharmed once the fault is gone


def test_flow_checkpoint_crash_leaves_resumable_state(tmp_path):
    """Crashing the flow checkpoint write after the second commit leaves
    the first commit's checkpoint on disk, and resuming from it redoes
    only the uncommitted work."""
    from repro.resilience.checkpoint import read_checkpoint

    def named_apps():
        apps = [paper_example_application(), paper_example_application()]
        for index, app in enumerate(apps):
            # the flow's completed-set is keyed by name
            app.name = app.graph.name = f"flow-app-{index}"
        return apps

    path = str(tmp_path / "flow.json")
    spec = FaultSpec(point="checkpoint.write", error="runtime", after=1)
    with FaultInjector(specs=[spec]):
        with pytest.raises(InjectedFaultError):
            allocate_until_failure(
                paper_example_architecture(),
                named_apps(),
                checkpoint_path=path,
            )
    on_disk = read_checkpoint(path)
    assert on_disk["kind"] == "flow"
    assert len(on_disk["allocations"]) == 1
    resumed = allocate_until_failure(
        paper_example_architecture(),
        named_apps(),
        checkpoint_path=path,
        resume=path,
    )
    assert resumed.applications_bound == 2
    assert len(read_checkpoint(path)["allocations"]) == 2


def test_degraded_flow_survives_randomised_faults():
    """Seeded soak: random explosions must never lose an application
    when degradation is on — only efficiency may suffer."""
    spec = FaultSpec(
        point="scheduling.build",
        error="explosion",
        times=None,
        probability=0.5,
    )
    for seed in range(3):
        application = paper_example_application()
        architecture = paper_example_architecture()
        with FaultInjector(specs=[spec], seed=seed):
            result = allocate_until_failure(
                architecture, [application], degrade=True
            )
        assert result.applications_bound == 1
        record = result.application_stats[0]
        assert record["outcome"] in ("allocated", "degraded")
        achieved = Fraction(record["achieved_throughput"])
        assert achieved >= application.throughput_constraint
