"""Unit tests for the greedy binding step (paper §9.1, Table 3)."""

import pytest

from repro.appmodel.application import ApplicationGraph
from repro.appmodel.binding import Binding
from repro.arch.architecture import ArchitectureGraph
from repro.arch.tile import ProcessorType, Tile
from repro.core.binding import BindingError, bind_application
from repro.core.tile_cost import CostWeights
from repro.sdf.graph import chain

P1 = ProcessorType("p1")
P2 = ProcessorType("p2")


class TestPaperTable3:
    """Bindings of the running example for the Table 3 weight settings.

    Rows (1,0,0), (0,0,1) and (1,1,1) reproduce the paper exactly; row
    (0,1,0) differs in a2's tile because the paper's exact memory-cost
    evaluation order is not recoverable from the text (see
    EXPERIMENTS.md).
    """

    def bind(self, app, arch, weights):
        binding = bind_application(app, arch, CostWeights(*weights))
        return tuple(binding.tile_of(a) for a in ("a1", "a2", "a3"))

    def test_processing_only(self, example_application, example_architecture):
        assert self.bind(
            example_application, example_architecture, (1, 0, 0)
        ) == ("t1", "t1", "t2")

    def test_communication_only(
        self, example_application, example_architecture
    ):
        assert self.bind(
            example_application, example_architecture, (0, 0, 1)
        ) == ("t1", "t1", "t1")

    def test_balanced(self, example_application, example_architecture):
        assert self.bind(
            example_application, example_architecture, (1, 1, 1)
        ) == ("t1", "t1", "t2")

    def test_memory_only_keeps_constraints(
        self, example_application, example_architecture
    ):
        result = self.bind(
            example_application, example_architecture, (0, 1, 0)
        )
        assert result[0] == "t1"  # a1 on t1, as in the paper


class TestBindingMechanics:
    def build_app(self, times=(5, 5)):
        graph = chain(["a", "b"], list(times), tokens_on_back_edge=2)
        app = ApplicationGraph(graph)
        app.set_actor_requirements("a", (P1, times[0], 10))
        app.set_actor_requirements("b", (P1, times[1], 10), (P2, times[1], 10))
        for channel in graph.channel_names:
            app.set_channel_requirements(channel, token_size=4, bandwidth=8)
        return app

    def build_arch(self, types=(P1, P2)):
        arch = ArchitectureGraph()
        for index, processor in enumerate(types):
            arch.add_tile(
                Tile(
                    name=f"t{index}",
                    processor_type=processor,
                    wheel=100,
                    memory=10_000,
                    max_connections=8,
                    bandwidth_in=1000,
                    bandwidth_out=1000,
                )
            )
        names = arch.tile_names
        for a in names:
            for b in names:
                if a != b:
                    arch.add_connection(a, b, 1)
        return arch

    def test_unsupported_actor_raises(self):
        app = self.build_app()
        arch = self.build_arch(types=(P2,))  # actor 'a' needs P1
        with pytest.raises(BindingError, match="supported by no tile"):
            bind_application(app, arch, CostWeights())

    def test_processor_type_restriction_respected(self):
        app = self.build_app()
        arch = self.build_arch()
        binding = bind_application(app, arch, CostWeights())
        assert binding.tile_of("a") == "t0"  # only P1 tile

    def test_every_actor_bound(self):
        app = self.build_app()
        arch = self.build_arch()
        binding = bind_application(app, arch, CostWeights())
        assert len(binding) == 2

    def test_load_balancing_spreads_heavy_actors(self):
        # two heavy independent-ish actors, two identical tiles: the
        # processing cost should place them on different tiles
        graph = chain(["a", "b"], [50, 50], tokens_on_back_edge=4)
        app = ApplicationGraph(graph)
        app.set_actor_requirements("a", (P1, 50, 10))
        app.set_actor_requirements("b", (P1, 50, 10))
        for channel in graph.channel_names:
            app.set_channel_requirements(channel, token_size=1, bandwidth=1)
        arch = self.build_arch(types=(P1, P1))
        binding = bind_application(app, arch, CostWeights(1, 0, 0))
        assert binding.tile_of("a") != binding.tile_of("b")

    def test_communication_weight_clusters(self):
        graph = chain(["a", "b"], [50, 50], tokens_on_back_edge=4)
        app = ApplicationGraph(graph)
        app.set_actor_requirements("a", (P1, 50, 10))
        app.set_actor_requirements("b", (P1, 50, 10))
        for channel in graph.channel_names:
            app.set_channel_requirements(channel, token_size=1, bandwidth=1)
        arch = self.build_arch(types=(P1, P1))
        binding = bind_application(app, arch, CostWeights(0, 0, 1))
        assert binding.tile_of("a") == binding.tile_of("b")

    def test_resource_exhaustion_raises(self):
        app = self.build_app()
        arch = self.build_arch()
        arch.tile("t0").memory_occupied = 10_000  # actor 'a' cannot fit
        with pytest.raises(BindingError, match="no feasible tile"):
            bind_application(app, arch, CostWeights())

    def test_optimise_flag_changes_nothing_on_trivial_case(self):
        app = self.build_app()
        arch = self.build_arch()
        with_opt = bind_application(app, arch, CostWeights(), optimise=True)
        without = bind_application(app, arch, CostWeights(), optimise=False)
        assert with_opt.assignment == without.assignment

    def test_binding_is_deterministic(self, example_application, example_architecture):
        first = bind_application(
            example_application, example_architecture, CostWeights(0, 1, 2)
        )
        second = bind_application(
            example_application, example_architecture, CostWeights(0, 1, 2)
        )
        assert first.assignment == second.assignment


class TestBindingDataclass:
    def test_actors_on_and_used_tiles(self):
        binding = Binding()
        binding.bind("a", "t0")
        binding.bind("b", "t1")
        binding.bind("c", "t0")
        assert binding.actors_on("t0") == ["a", "c"]
        assert binding.used_tiles() == ["t0", "t1"]

    def test_unbind(self):
        binding = Binding()
        binding.bind("a", "t0")
        binding.unbind("a")
        assert not binding.is_bound("a")
        binding.unbind("a")  # idempotent

    def test_copy_is_independent(self):
        binding = Binding()
        binding.bind("a", "t0")
        clone = binding.copy()
        clone.bind("a", "t1")
        assert binding.tile_of("a") == "t0"
