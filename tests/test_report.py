"""Unit tests for the schema-versioned run-report format."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Metrics, collecting
from repro.obs.report import (
    REPORT_FORMAT,
    REPORT_VERSION,
    ReportError,
    build_report,
    environment_fingerprint,
    read_report,
    write_report,
)
from repro.obs.trace import TraceBuffer


class TestEnvironmentFingerprint:
    def test_fingerprint_has_the_documented_keys(self):
        fingerprint = environment_fingerprint(seed=7)
        assert set(fingerprint) == {
            "python",
            "implementation",
            "platform",
            "machine",
            "git_sha",
            "seed",
            "argv0",
        }
        assert fingerprint["seed"] == 7

    def test_fingerprint_is_json_native(self):
        json.dumps(environment_fingerprint())


class TestBuildReport:
    def test_envelope_and_label(self):
        report = build_report("smoke")
        assert report["format"] == REPORT_FORMAT
        assert report["version"] == REPORT_VERSION
        assert report["label"] == "smoke"
        assert "environment" in report

    def test_metrics_snapshot_is_embedded(self):
        with collecting(Metrics()) as metrics:
            metrics.counter("engine.states", 3)
        report = build_report("smoke", metrics=metrics.snapshot())
        assert report["metrics"]["counters"]["engine.states"] == 3

    def test_trace_buffer_becomes_a_summary(self):
        buffer = TraceBuffer(clock=lambda: 0.0)
        buffer.instant("engine", "tick")
        report = build_report("smoke", trace=buffer)
        assert report["trace"] == {
            "events": 1,
            "dropped": 0,
            "categories": {"engine": 1},
        }

    def test_trace_summary_dict_passes_through(self):
        summary = {"events": 0, "dropped": 0, "categories": {}}
        assert build_report("smoke", trace=summary)["trace"] == summary

    def test_budget_fields_are_recorded(self):
        from repro.resilience.budget import Budget

        budget = Budget(deadline=10.0, max_states=100)
        budget.tick(5)
        report = build_report("smoke", budget=budget)
        assert report["budget"]["max_states"] == 100
        assert report["budget"]["states_charged"] == 5
        assert report["budget"]["deadline_seconds"] == 10.0

    def test_fraction_values_are_normalised(self):
        from fractions import Fraction

        report = build_report(
            "smoke", result={"rate": Fraction(1, 3)}
        )
        assert report["result"]["rate"] == "1/3"
        json.dumps(report)  # fully JSON-native after normalisation


class TestReadWrite:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "report.json")
        report = build_report("smoke", result={"answer": 42})
        assert write_report(path, report) == path
        assert read_report(path) == report

    def test_write_refuses_unenveloped_payloads(self, tmp_path):
        with pytest.raises(ReportError):
            write_report(str(tmp_path / "r.json"), {"label": "x"})

    def test_write_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "report.json"
        write_report(str(path), build_report("smoke"))
        assert list(tmp_path.iterdir()) == [path]

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(ReportError, match="cannot read"):
            read_report(str(tmp_path / "absent.json"))

    def test_read_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ReportError, match="not valid JSON"):
            read_report(str(path))

    def test_read_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ReportError, match="not a repro run report"):
            read_report(str(path))

    def test_read_rejects_unknown_versions(self, tmp_path):
        path = tmp_path / "future.json"
        report = build_report("smoke")
        report["version"] = REPORT_VERSION + 1
        path.write_text(json.dumps(report))
        with pytest.raises(ReportError, match="unsupported"):
            read_report(str(path))


# -- randomised round-trips (hypothesis) -------------------------------

_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(10**9), 10**9),
    st.text(max_size=20),
)


@settings(max_examples=50, deadline=None)
@given(
    label=st.text(min_size=1, max_size=30),
    result=st.dictionaries(
        st.text(min_size=1, max_size=10), _json_scalars, max_size=5
    ),
    seed=st.one_of(st.none(), st.integers(0, 10**6)),
)
def test_report_files_round_trip(tmp_path_factory, label, result, seed):
    """write_report → read_report is the identity for any built report."""
    path = str(tmp_path_factory.mktemp("reports") / "report.json")
    report = build_report(label, result=result, seed=seed)
    write_report(path, report)
    assert read_report(path) == report
