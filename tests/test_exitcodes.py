"""The exit-code registry (``src/repro/exitcodes.py``).

One machine-readable table feeds the CLI, the HTTP front end and the
sandbox; ``tools/check_invariants.py`` diffs it against the
docs/ROBUSTNESS.md table and every integer return in ``cli.py``.  These
cases pin the registry's internal consistency and keep the invariant
checker itself green in CI.
"""

import subprocess
import sys
from pathlib import Path

from repro import exitcodes

REPO = Path(__file__).resolve().parent.parent


def test_registry_constants_appear_in_the_tables():
    assert exitcodes.EXIT_CODES[exitcodes.EXIT_OK] == "success"
    for constant in (
        exitcodes.EXIT_USER_ERROR,
        exitcodes.EXIT_BUDGET,
        exitcodes.EXIT_REFUTED,
        exitcodes.EXIT_BENCH_REGRESSION,
        exitcodes.EXIT_LINT,
        exitcodes.EXIT_OVERLOAD,
    ):
        assert constant in exitcodes.EXIT_CODES
    for constant in (
        exitcodes.EXIT_OOM,
        exitcodes.EXIT_CPU,
        exitcodes.EXIT_SPEC,
    ):
        assert constant in exitcodes.SANDBOX_EXIT_CODES


def test_cli_and_sandbox_exit_codes_do_not_collide():
    assert not set(exitcodes.EXIT_CODES) & set(exitcodes.SANDBOX_EXIT_CODES)
    assert 1 not in exitcodes.EXIT_CODES  # reserved for uncaught crashes


def test_http_exit_map_targets_registered_codes():
    assert exitcodes.HTTP_EXIT_MAP[429] == exitcodes.EXIT_OVERLOAD
    assert exitcodes.HTTP_EXIT_MAP[400] == exitcodes.EXIT_USER_ERROR
    assert set(exitcodes.HTTP_EXIT_MAP.values()) <= set(exitcodes.EXIT_CODES)


def test_sandbox_reexports_the_registry():
    from repro.service import sandbox

    assert sandbox.EXIT_OOM == exitcodes.EXIT_OOM
    assert sandbox.EXIT_CPU == exitcodes.EXIT_CPU
    assert sandbox.EXIT_SPEC == exitcodes.EXIT_SPEC


def test_invariant_checker_passes():
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_invariants.py")],
        cwd=str(REPO),
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
