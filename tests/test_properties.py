"""Property-based tests (hypothesis) on the core invariants.

The two deepest invariants of the library:

* the state-space throughput of a consistent, live SDFG equals the
  reciprocal maximum cycle ratio of its HSDF expansion (two completely
  independent implementations);
* the repetition vector balances every channel and is minimal.

Plus algebraic properties of the TDMA gating arithmetic and schedule
compaction.
"""

import random
from fractions import Fraction
from math import gcd

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scheduling import compact_schedule, minimal_repeating_unit
from repro.generate.random_sdf import RandomSDFParameters, random_sdfg
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector
from repro.sdf.transform import sdf_to_hsdf
from repro.throughput.constrained import (
    StaticOrderSchedule,
    busy_time,
    gated_finish,
)
from repro.throughput.mcr import max_cycle_ratio_numeric
from repro.throughput.reference import reference_throughput
from repro.throughput.state_space import throughput


# ---------------------------------------------------------------------------
# random graph strategy built on the (already liveness-safe) generator
# ---------------------------------------------------------------------------
@st.composite
def live_sdfgs(draw):
    seed = draw(st.integers(0, 10_000))
    actors = draw(st.integers(2, 5))
    repetition = draw(st.integers(1, 3))
    parameters = RandomSDFParameters(
        actors_min=actors,
        actors_max=actors,
        repetition_min=1,
        repetition_max=repetition,
        extra_channel_fraction=draw(st.floats(0.0, 1.0)),
        back_edge_probability=draw(st.floats(0.0, 1.0)),
        self_edge_fraction=draw(st.floats(0.0, 0.7)),
    )
    graph = random_sdfg(parameters, random.Random(seed))
    rng = random.Random(seed + 1)
    for actor in graph.actors:
        actor.execution_time = rng.randint(1, 6)
    return graph


@settings(max_examples=60, deadline=None)
@given(live_sdfgs())
def test_state_space_equals_hsdf_mcr(graph):
    """The paper's enabling claim: direct SDFG analysis is exact."""
    direct = throughput(graph).iteration_rate
    reference = reference_throughput(graph, exact=False)
    assert direct == reference


@settings(max_examples=60, deadline=None)
@given(live_sdfgs())
def test_repetition_vector_balances_all_channels(graph):
    gamma = repetition_vector(graph)
    assert all(value > 0 for value in gamma.values())
    overall = 0
    for value in gamma.values():
        overall = gcd(overall, value)
    assert overall == 1  # minimality
    for channel in graph.channels:
        assert (
            channel.production * gamma[channel.src]
            == channel.consumption * gamma[channel.dst]
        )


@settings(max_examples=40, deadline=None)
@given(live_sdfgs())
def test_hsdf_preserves_iteration_structure(graph):
    gamma = repetition_vector(graph)
    hsdf = sdf_to_hsdf(graph)
    assert len(hsdf) == sum(gamma.values())
    assert repetition_vector(hsdf) == {a.name: 1 for a in hsdf.actors}
    # total initial tokens can shift between parallel precedence edges
    # but every HSDF delay is a non-negative iteration distance
    assert all(c.tokens >= 0 for c in hsdf.channels)


@settings(max_examples=40, deadline=None)
@given(live_sdfgs(), st.integers(1, 5))
def test_slower_actors_never_speed_up_the_graph(graph, slowdown):
    base = throughput(graph).iteration_rate
    times = {a.name: a.execution_time + slowdown for a in graph.actors}
    slower = throughput(graph, execution_times=times).iteration_rate
    assert slower <= base


# ---------------------------------------------------------------------------
# TDMA gating arithmetic
# ---------------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(
    st.integers(0, 300),
    st.integers(1, 60),
    st.integers(2, 40),
    st.integers(1, 40),
)
def test_gated_finish_inverts_busy_time(start, work, wheel, slice_size):
    slice_size = min(slice_size, wheel)
    finish = gated_finish(start, work, wheel, slice_size)
    assert finish is not None
    assert busy_time(start, finish, wheel, slice_size) == work
    # one step earlier the work is not yet done (minimality)
    assert busy_time(start, finish - 1, wheel, slice_size) < work


@settings(max_examples=200, deadline=None)
@given(
    st.integers(0, 100),
    st.integers(0, 100),
    st.integers(0, 100),
    st.integers(2, 30),
    st.integers(0, 30),
)
def test_busy_time_is_additive(a, b, c, wheel, slice_size):
    slice_size = min(slice_size, wheel)
    t0, t1, t2 = sorted((a, b, c))
    assert busy_time(t0, t2, wheel, slice_size) == busy_time(
        t0, t1, wheel, slice_size
    ) + busy_time(t1, t2, wheel, slice_size)


@settings(max_examples=200, deadline=None)
@given(st.integers(0, 100), st.integers(0, 200), st.integers(2, 30))
def test_full_slice_gating_is_identity(start, work, wheel):
    assert gated_finish(start, work, wheel, wheel) == start + work
    assert busy_time(start, start + work, wheel, wheel) == work


# ---------------------------------------------------------------------------
# schedule compaction
# ---------------------------------------------------------------------------
schedule_alphabet = st.sampled_from(["a", "b", "c"])


@settings(max_examples=200, deadline=None)
@given(
    st.lists(schedule_alphabet, max_size=6),
    st.lists(schedule_alphabet, min_size=1, max_size=6),
    st.integers(1, 3),
)
def test_compaction_preserves_infinite_schedule(transient, unit, repeats):
    periodic = unit * repeats
    original = StaticOrderSchedule(
        periodic=tuple(periodic), transient=tuple(transient)
    )
    compacted = compact_schedule(transient, periodic)
    horizon = 3 * (len(transient) + len(periodic)) + 5
    for position in range(horizon):
        assert compacted.entry(position) == original.entry(position)


@settings(max_examples=200, deadline=None)
@given(st.lists(schedule_alphabet, min_size=1, max_size=8), st.integers(1, 4))
def test_minimal_unit_divides_and_reconstructs(unit, repeats):
    sequence = unit * repeats
    minimal = minimal_repeating_unit(sequence)
    assert len(sequence) % len(minimal) == 0
    assert minimal * (len(sequence) // len(minimal)) == sequence
    assert len(minimal) <= len(unit)


# ---------------------------------------------------------------------------
# throughput monotonicity in tokens
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 8))
def test_more_pipeline_tokens_never_hurt(time_a, time_b, tokens):
    def rate(token_count):
        graph = SDFGraph("ring")
        graph.add_actor("a", time_a)
        graph.add_actor("b", time_b)
        graph.add_channel("ab", "a", "b")
        graph.add_channel("ba", "b", "a", tokens=token_count)
        return throughput(graph).iteration_rate

    assert rate(tokens + 1) >= rate(tokens)
    # and the rate is capped by the heaviest actor under no concurrency
    graph_rate = rate(tokens)
    assert graph_rate <= Fraction(tokens, time_a + time_b)


# ---------------------------------------------------------------------------
# whole-strategy invariants on random workloads
# ---------------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(st.integers(0, 1000), st.sampled_from(["processing", "memory", "mixed"]))
def test_allocation_invariants_on_random_applications(seed, set_name):
    """Whatever the workload, a returned allocation is internally sound:
    slices fit the wheels, the reservation fits the architecture, the
    schedules cover exactly the bound actors, and an independent
    re-verification reproduces the guaranteed throughput."""
    from repro.arch.presets import benchmark_architectures
    from repro.appmodel.binding_aware import build_binding_aware_graph
    from repro.core.strategy import AllocationError, ResourceAllocator
    from repro.core.tile_cost import CostWeights
    from repro.generate.benchmark import generate_benchmark_set
    from repro.throughput.constrained import constrained_throughput

    architecture = benchmark_architectures()[2]
    (application,) = generate_benchmark_set(
        set_name, 1, architecture.processor_types(), seed=seed
    )
    try:
        allocation = ResourceAllocator(weights=CostWeights(0, 1, 2)).allocate(
            application, architecture
        )
    except AllocationError:
        return  # infeasible workloads are allowed; nothing to check

    # 1. slices fit the wheels
    for tile_name, slice_size in allocation.scheduling.slices.items():
        assert 1 <= slice_size <= architecture.tile(tile_name).wheel

    # 2. the reservation fits and is reversible
    assert allocation.reservation.fits(architecture)
    allocation.reservation.commit(architecture)
    allocation.reservation.rollback(architecture)
    assert architecture.total_usage()["timewheel"] == 0

    # 3. schedules cover exactly the bound actors
    scheduled = set()
    for tile_name in allocation.binding.used_tiles():
        scheduled.update(
            allocation.scheduling.schedule_of(tile_name).actors
        )
    assert scheduled == set(application.graph.actor_names)

    # 4. independent re-verification agrees
    bag = build_binding_aware_graph(
        application,
        architecture,
        allocation.binding,
        slices=dict(allocation.scheduling.slices),
    )
    verified = constrained_throughput(
        bag.graph, bag.tile_constraints(allocation.scheduling)
    ).of(application.output_actor)
    assert verified == allocation.achieved_throughput
    assert verified >= application.throughput_constraint


@settings(max_examples=40, deadline=None)
@given(live_sdfgs(), st.booleans())
def test_csdf_engine_equals_sdf_engine_on_single_phase(graph, auto_concurrency):
    """The CSDF engine restricted to one phase per actor is exactly the
    SDF engine (a third independent implementation agreeing)."""
    from repro.csdf import csdf_throughput, sdf_to_csdf

    lifted = sdf_to_csdf(graph)
    assert (
        csdf_throughput(lifted, auto_concurrency=auto_concurrency).iteration_rate
        == throughput(graph, auto_concurrency=auto_concurrency).iteration_rate
    )


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 100000))
def test_csdf_aggregation_is_conservative(seed):
    """The SDF aggregation of a CSDF graph consumes no later and
    produces no earlier than the phased original... the other way
    around: the phased graph dominates, so aggregation gives a valid
    throughput lower bound usable by the SDF-only allocator."""
    from repro.csdf.convert import aggregate_csdf_to_sdf
    from repro.csdf.random_csdf import random_csdf
    from repro.csdf.throughput import csdf_throughput

    csdf = random_csdf(random.Random(seed))
    aggregated = aggregate_csdf_to_sdf(csdf)
    for auto_concurrency in (True, False):
        phased = csdf_throughput(
            csdf, auto_concurrency=auto_concurrency
        ).iteration_rate
        lower = throughput(
            aggregated, auto_concurrency=auto_concurrency
        ).iteration_rate
        assert lower <= phased


@settings(max_examples=200, deadline=None)
@given(
    st.integers(0, 200),
    st.integers(1, 40),
    st.integers(2, 30),
    st.integers(1, 30),
    st.integers(0, 29),
)
def test_offset_gating_inverts(start, work, wheel, slice_size, slice_start):
    slice_size = min(slice_size, wheel)
    slice_start = min(slice_start, wheel - slice_size)
    finish = gated_finish(start, work, wheel, slice_size, slice_start)
    assert finish is not None
    assert busy_time(start, finish, wheel, slice_size, slice_start) == work
    assert busy_time(start, finish - 1, wheel, slice_size, slice_start) < work


@settings(max_examples=200, deadline=None)
@given(
    st.integers(0, 100),
    st.integers(0, 100),
    st.integers(2, 30),
    st.integers(1, 30),
    st.integers(0, 29),
)
def test_offset_only_shifts_the_window(t0, duration, wheel, slice_size, slice_start):
    """Shifting both the window and the observation interval by the
    offset leaves the busy time unchanged."""
    slice_size = min(slice_size, wheel)
    slice_start = min(slice_start, wheel - slice_size)
    plain = busy_time(t0, t0 + duration, wheel, slice_size, 0)
    shifted = busy_time(
        t0 + slice_start, t0 + slice_start + duration, wheel, slice_size,
        slice_start,
    )
    assert plain == shifted


@settings(max_examples=40, deadline=None)
@given(live_sdfgs())
def test_three_mcr_algorithms_agree(graph):
    """Cycle enumeration, parametric Lawler search and Howard policy
    iteration compute the same maximum cycle ratio on HSDF expansions."""
    from repro.throughput.howard import howard_max_cycle_ratio
    from repro.throughput.mcr import (
        max_cycle_ratio_exact,
        max_cycle_ratio_numeric,
    )

    hsdf = sdf_to_hsdf(graph)
    enumerated = max_cycle_ratio_exact(hsdf, limit=200_000)
    numeric = max_cycle_ratio_numeric(hsdf)
    howard = howard_max_cycle_ratio(hsdf)
    assert enumerated == numeric == howard
