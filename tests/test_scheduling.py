"""Unit tests for list scheduling and schedule compaction (paper §9.2)."""

import pytest

from repro.appmodel.binding import Binding
from repro.appmodel.binding_aware import build_binding_aware_graph
from repro.core.scheduling import (
    SchedulingError,
    build_static_order_schedules,
    compact_schedule,
    minimal_repeating_unit,
)
from repro.throughput.constrained import StaticOrderSchedule


class TestMinimalRepeatingUnit:
    def test_already_minimal(self):
        assert minimal_repeating_unit(["a", "b"]) == ["a", "b"]

    def test_repetition_collapsed(self):
        assert minimal_repeating_unit(["a", "b"] * 4) == ["a", "b"]

    def test_single_symbol(self):
        assert minimal_repeating_unit(["a"] * 7) == ["a"]

    def test_non_divisible_pattern_kept(self):
        assert minimal_repeating_unit(["a", "b", "a"]) == ["a", "b", "a"]

    def test_empty(self):
        assert minimal_repeating_unit([]) == []


class TestCompactSchedule:
    def test_paper_example_17_state_schedule(self):
        # a1 a2 ... a1 (a2 a1 ... a2 a1)* with 17 entries -> (a1 a2)*
        transient = ["a1", "a2"] * 4 + ["a1"]
        periodic = ["a2", "a1"] * 4
        schedule = compact_schedule(transient, periodic)
        assert schedule.transient == ()
        assert set(schedule.periodic) == {"a1", "a2"}
        assert len(schedule.periodic) == 2

    def test_pure_periodic_minimised(self):
        schedule = compact_schedule([], ["x", "y", "x", "y"])
        assert schedule.periodic == ("x", "y")

    def test_genuine_transient_kept(self):
        schedule = compact_schedule(["warmup"], ["x", "y"])
        assert schedule.transient == ("warmup",)
        assert schedule.periodic == ("x", "y")

    def test_empty_periodic_rejected(self):
        with pytest.raises(SchedulingError):
            compact_schedule(["a"], [])

    def test_absorption_preserves_semantics(self):
        # compare the first 20 entries of the infinite schedules
        transient = ["a", "b", "a"]
        periodic = ["b", "a", "b", "a"]
        original = StaticOrderSchedule(
            periodic=tuple(periodic), transient=tuple(transient)
        )
        compacted = compact_schedule(transient, periodic)
        for position in range(20):
            assert compacted.entry(position) == original.entry(position)


class TestListScheduler:
    def test_paper_example_schedules(
        self, example_application, example_architecture, example_binding
    ):
        bag = build_binding_aware_graph(
            example_application,
            example_architecture,
            example_binding,
            slices={"t1": 5, "t2": 5},
        )
        schedules = build_static_order_schedules(bag)
        assert set(schedules) == {"t1", "t2"}
        # the paper's compacted schedules: (a1 a2)* and (a3)*
        assert schedules["t2"].periodic == ("a3",)
        assert set(schedules["t1"].periodic) == {"a1", "a2"}
        assert len(schedules["t1"].periodic) == 2

    def test_schedule_covers_every_bound_actor(
        self, example_application, example_architecture, example_binding
    ):
        bag = build_binding_aware_graph(
            example_application, example_architecture, example_binding
        )
        schedules = build_static_order_schedules(bag)
        scheduled = set()
        for schedule in schedules.values():
            scheduled.update(schedule.actors)
        assert scheduled == {"a1", "a2", "a3"}

    def test_firing_counts_follow_repetition_vector(
        self, example_application, example_architecture
    ):
        # bind everything to t1: the periodic part must fire each actor
        # a multiple of gamma (here gamma is all ones)
        binding = Binding()
        for actor in ("a1", "a2", "a3"):
            binding.bind(actor, "t1")
        bag = build_binding_aware_graph(
            example_application, example_architecture, binding
        )
        schedules = build_static_order_schedules(bag)
        periodic = schedules["t1"].periodic
        counts = {a: periodic.count(a) for a in ("a1", "a2", "a3")}
        assert len(set(counts.values())) == 1

    def test_multirate_schedule_counts(self, example_architecture):
        from repro.appmodel.application import ApplicationGraph
        from repro.appmodel.example import PROCESSOR_P1
        from repro.sdf.graph import SDFGraph

        graph = SDFGraph("mr")
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_channel("ab", "a", "b", 2, 1)
        graph.add_channel("ba", "b", "a", 1, 2, tokens=2)
        app = ApplicationGraph(graph)
        app.set_actor_requirements("a", (PROCESSOR_P1, 1, 1))
        app.set_actor_requirements("b", (PROCESSOR_P1, 1, 1))
        app.set_channel_requirements("ab", buffer_tile=2, bandwidth=1)
        app.set_channel_requirements("ba", buffer_tile=2, bandwidth=1)
        binding = Binding()
        binding.bind("a", "t1")
        binding.bind("b", "t1")
        bag = build_binding_aware_graph(app, example_architecture, binding)
        schedules = build_static_order_schedules(bag)
        periodic = schedules["t1"].periodic
        # gamma = (1, 2): b fires twice as often as a
        assert periodic.count("b") == 2 * periodic.count("a")

    def test_deadlocking_binding_raises(
        self, example_application, example_architecture, example_binding
    ):
        # shrink d1's buffer to zero available space via initial tokens
        example_application.graph.channel("d2").tokens = 0
        example_application.set_channel_requirements(
            "d1", token_size=7, buffer_tile=0, buffer_src=0, buffer_dst=0,
            bandwidth=100,
        )
        bag = build_binding_aware_graph(
            example_application, example_architecture, example_binding
        )
        with pytest.raises(SchedulingError):
            build_static_order_schedules(bag)

    def test_explicit_slices_override(self,
        example_application, example_architecture, example_binding
    ):
        bag = build_binding_aware_graph(
            example_application, example_architecture, example_binding
        )
        schedules = build_static_order_schedules(
            bag, slices={"t1": 10, "t2": 10}
        )
        assert schedules["t2"].periodic == ("a3",)
