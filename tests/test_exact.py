"""Unit tests for the exact branch-and-bound backend.

The fig-5 paper example is small enough to pin the search's exact
outcome: the optimum packs all three actors onto tile ``t1`` with a
2-unit slice (cost 27/50 under the default weights), strictly cheaper
than the greedy flow's two-tile allocation.  The remaining tests cover
the facade knob, the platform layers (budget, metrics, tracing, fault
injection) and the CLI flag.
"""

import json
from fractions import Fraction

import pytest

from repro.appmodel.example import (
    paper_example,
    paper_example_binding,
)
from repro.appmodel.serialization import bundle_to_dict
from repro.core.flow import allocate_until_failure
from repro.core.strategy import AllocationError, ResourceAllocator
from repro.core.tile_cost import CostWeights
from repro.exact import (
    allocation_cost,
    binding_load_cost,
    exact_search,
    partial_throughput_bound,
    slice_cost,
)
from repro.obs import collecting, tracing
from repro.resilience.budget import Budget, BudgetExceededError
from repro.verify import VERDICT_CERTIFIED, certify_allocation

pytestmark = pytest.mark.exact

WEIGHTS = CostWeights.default()


def test_fig5_optimum_is_pinned():
    application, architecture, _ = paper_example()
    result = exact_search(application, architecture, weights=WEIGHTS)
    assert result.feasible
    assert result.cost == Fraction(27, 50)
    allocation = result.allocation
    assert allocation.binding.used_tiles() == ["t1"]
    assert allocation.scheduling.slices == {"t1": 2}
    assert allocation.satisfied
    assert allocation.achieved_throughput >= application.throughput_constraint
    assert result.nodes_explored > 0
    assert result.leaves_evaluated >= 1
    assert allocation.throughput_checks == result.throughput_checks


def test_fig5_exact_beats_greedy():
    application, architecture, _ = paper_example()
    greedy = ResourceAllocator(weights=WEIGHTS).allocate(
        application, architecture
    )
    greedy_cost = allocation_cost(
        application,
        architecture,
        greedy.binding,
        greedy.scheduling.slices,
        WEIGHTS,
    )
    exact = exact_search(application, architecture, weights=WEIGHTS)
    assert exact.cost < greedy_cost


def test_exact_allocation_certificate_replays(example_architecture):
    application, architecture, _ = paper_example()
    result = exact_search(application, architecture, weights=WEIGHTS)
    bundle = json.loads(
        json.dumps(bundle_to_dict(architecture, [result.allocation]))
    )
    report = certify_allocation(bundle)
    assert report.certified
    assert report.verdicts[0].verdict == VERDICT_CERTIFIED


def test_objective_decomposes():
    application, architecture, _ = paper_example()
    result = exact_search(application, architecture, weights=WEIGHTS)
    allocation = result.allocation
    assert result.cost == binding_load_cost(
        application, architecture, allocation.binding, WEIGHTS
    ) + slice_cost(architecture, allocation.scheduling.slices)
    assert result.cost == allocation_cost(
        application,
        architecture,
        allocation.binding,
        allocation.scheduling.slices,
        WEIGHTS,
    )


# -- the facade knob -------------------------------------------------------


def test_backend_knob_dispatches_to_exact():
    application, architecture, _ = paper_example()
    allocator = ResourceAllocator(weights=WEIGHTS, backend="exact")
    allocation = allocator.allocate(application, architecture)
    assert allocation.binding.used_tiles() == ["t1"]
    assert allocation.satisfied
    # the reservation commits like any greedy allocation's
    allocation.reservation.commit(architecture)
    assert architecture.tile("t1").wheel_remaining == 8


def test_unknown_backend_is_rejected():
    application, architecture, _ = paper_example()
    with pytest.raises(ValueError, match="unknown backend"):
        ResourceAllocator(backend="simulated-annealing").allocate(
            application, architecture
        )


def test_exact_backend_with_precomputed_binding():
    application, architecture, _ = paper_example()
    binding = paper_example_binding()
    allocator = ResourceAllocator(weights=WEIGHTS, backend="exact")
    allocation = allocator.allocate(application, architecture, binding=binding)
    # the fixed binding is honoured; only slices were optimised
    assert allocation.binding.assignment == binding.assignment
    assert allocation.satisfied


def test_exact_backend_in_flow():
    application, architecture, _ = paper_example()
    allocator = ResourceAllocator(weights=WEIGHTS, backend="exact")
    result = allocate_until_failure(architecture, [application], allocator=allocator)
    assert result.applications_bound == 1
    # committed: the one-tile optimum occupies only t1's wheel
    assert architecture.tile("t1").wheel_remaining == 8
    assert architecture.tile("t2").wheel_remaining == 10


def test_infeasible_constraint_is_proven():
    application, architecture, _ = paper_example()
    application.throughput_constraint = Fraction(1)  # above any bound
    result = exact_search(application, architecture, weights=WEIGHTS)
    assert not result.feasible
    assert result.cost is None
    # the static pre-gate rejects before any branching
    assert result.nodes_explored == 0
    with pytest.raises(AllocationError, match="proved the constraint"):
        ResourceAllocator(weights=WEIGHTS, backend="exact").allocate(
            application, architecture
        )


def test_infeasible_past_static_gate_is_proven_by_search():
    application, architecture, _ = paper_example()
    # 1/3 clears the static pre-gate (the serialisation bound is 1/2)
    # but no actual allocation reaches it: the search must branch and
    # exhaust the tree to prove infeasibility
    application.throughput_constraint = Fraction(1, 3)
    result = exact_search(application, architecture, weights=WEIGHTS)
    assert not result.feasible
    assert result.nodes_explored > 0


# -- input validation ------------------------------------------------------


def test_negative_weights_are_rejected():
    application, architecture, _ = paper_example()
    with pytest.raises(ValueError, match="non-negative"):
        exact_search(
            application, architecture, weights=CostWeights(-1.0, 1.0, 1.0)
        )


def test_bad_slice_step_is_rejected():
    application, architecture, _ = paper_example()
    with pytest.raises(ValueError, match="slice_step"):
        exact_search(application, architecture, slice_step=0)


def test_coarser_slice_grid_still_allocates():
    application, architecture, _ = paper_example()
    fine = exact_search(application, architecture, weights=WEIGHTS)
    coarse = exact_search(
        application, architecture, weights=WEIGHTS, slice_step=3
    )
    assert coarse.feasible
    # every coarse slice is a grid point: a step multiple or the cap
    for tile, width in coarse.allocation.scheduling.slices.items():
        remaining = architecture.tile(tile).wheel_remaining
        assert width % 3 == 0 or width == remaining
    # a coarser grid can only do as well or worse
    assert coarse.cost >= fine.cost


# -- platform layers -------------------------------------------------------


def test_budget_exhaustion_carries_partial_progress():
    application, architecture, _ = paper_example()
    budget = Budget(max_states=5)
    with pytest.raises(BudgetExceededError) as excinfo:
        exact_search(
            application, architecture, weights=WEIGHTS, budget=budget
        )
    progress = excinfo.value.partial.get("exact")
    assert progress is not None
    assert progress["nodes_explored"] >= 1
    assert "throughput_checks" in progress


def test_budget_propagates_unwrapped_through_facade():
    application, architecture, _ = paper_example()
    allocator = ResourceAllocator(weights=WEIGHTS, backend="exact")
    with pytest.raises(BudgetExceededError):
        allocator.allocate(
            application, architecture, budget=Budget(deadline=0.0)
        )


def test_search_emits_metrics_and_trace():
    application, architecture, _ = paper_example()
    with collecting() as metrics, tracing() as trace:
        exact_search(application, architecture, weights=WEIGHTS)
    counters = metrics.snapshot()["counters"]
    assert counters["exact.searches"] == 1
    assert counters["exact.nodes_explored"] > 0
    assert counters["exact.throughput_checks"] > 0
    assert counters["exact.incumbents"] >= 1
    events = [(e.category, e.name) for e in trace.events()]
    assert ("exact", "search") in events
    assert ("exact", "incumbent") in events


def test_fault_injection_reaches_the_search():
    from repro.resilience.faults import (
        FaultInjector,
        FaultSpec,
        InjectedFaultError,
    )

    application, architecture, _ = paper_example()
    spec = FaultSpec(point="exact.search", error="runtime")
    with pytest.raises(InjectedFaultError):
        with FaultInjector(specs=[spec]):
            exact_search(application, architecture, weights=WEIGHTS)


# -- CLI -------------------------------------------------------------------


def test_cli_example_accepts_exact_backend(capsys):
    from repro.cli import main

    assert main(["example", "--backend", "exact"]) == 0
    out = capsys.readouterr().out
    assert "a1 -> t1" in out
    assert "a3 -> t1" in out


def test_cli_exact_deadline_exhaustion_exits_3(capsys):
    from repro.cli import main

    assert main(["example", "--backend", "exact", "--deadline", "0"]) == 3
