"""The fault-tolerant allocation service (``make test-service``).

The robustness contract of ``docs/SERVICE.md``, piece by piece: durable
admission, supervised retry with quarantine, bounded-queue overload
rejection, journal-replay recovery, cancellation-checkpointing drain,
and a result cache whose hits are re-verified before being served.
"""

import json
import time

import pytest

from repro.resilience.budget import Budget
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.resilience.policy import resilient_allocate
from repro.appmodel.serialization import (
    application_from_dict,
    bundle_to_dict,
)
from repro.arch.serialization import architecture_from_dict
from repro.sdf.serialization import SerializationError
from repro.service import (
    AllocationService,
    DrainingError,
    JobJournal,
    OverloadError,
    RetryPolicy,
    canonicalise_request,
)
from repro.service.journal import STATE_RUNNING, new_job_record

from tests.service_helpers import fast_request, rename_isomorphic, slow_request

pytestmark = pytest.mark.service

FAST_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.01, max_delay=0.05, jitter=0.1
)


@pytest.fixture()
def service(tmp_path):
    instance = AllocationService(
        str(tmp_path / "spool"), workers=2, retry=FAST_RETRY
    ).start()
    yield instance
    instance.drain(cancel_running=True)


# -- happy path and the verified cache -------------------------------------


def test_job_completes_certified_and_journal_is_durable(service):
    application, architecture = fast_request()
    job_id = service.submit(application, architecture)
    record = service.wait(job_id, timeout=60)
    assert record["state"] == "certified"
    assert record["rung"] == "exact"
    assert record["verdict"] == "certified"
    assert record["source"] == "computed"
    assert record["result"]["allocations"][0]["binding"]
    # the journal holds the same terminal state, durably
    on_disk = service.journal.load(job_id)
    assert on_disk["state"] == "certified"


def test_isomorphic_resubmission_served_from_verified_cache(service):
    application, architecture = fast_request()
    first = service.wait(service.submit(application, architecture), 60)
    renamed = rename_isomorphic(application, seed=7)
    second = service.wait(service.submit(renamed, architecture), 60)
    assert second["source"] == "cache"
    assert second["state"] == "certified"
    assert second["verdict"] == "certified"  # re-verified, not trusted
    # the served answer speaks the requester's vocabulary
    renamed_actors = {a["name"] for a in renamed["graph"]["actors"]}
    binding = second["result"]["allocations"][0]["binding"]
    assert set(binding) == renamed_actors
    # and the allocation is materially the first one, renamed
    assert sorted(binding.values()) == sorted(
        first["result"]["allocations"][0]["binding"].values()
    )


def test_tampered_cache_entry_is_refuted_evicted_and_recomputed(service):
    application, architecture = fast_request()
    service.wait(service.submit(application, architecture), 60)
    canonical = canonicalise_request(application, architecture)
    path = service.cache.path(canonical.digest)
    with open(path) as handle:
        entry = json.load(handle)
    # corrupt the certified claim: a periodic phase one time unit longer
    entry["allocation"]["certificate"]["period"] += 1
    with open(path, "w") as handle:
        json.dump(entry, handle)
    record = service.wait(service.submit(application, architecture), 60)
    # the poisoned hit was refuted by re-verification and recomputed
    assert record["source"] == "computed"
    assert record["state"] == "certified"
    # the refuted entry was evicted and replaced by the fresh result
    with open(path) as handle:
        replaced = json.load(handle)
    assert replaced["allocation"]["certificate"]["period"] == (
        entry["allocation"]["certificate"]["period"] - 1
    )


# -- admission control ----------------------------------------------------


def test_overload_rejects_submissions_beyond_queue_depth(tmp_path):
    service = AllocationService(
        str(tmp_path / "spool"),
        workers=1,
        max_queue_depth=1,
        retry=FAST_RETRY,
    ).start()
    try:
        application, architecture = slow_request()
        accepted = service.submit(application, architecture)
        deadline = time.perf_counter() + 30
        while service.stats()["active"] == 0:
            assert time.perf_counter() < deadline, "job never started"
            time.sleep(0.005)
        with pytest.raises(OverloadError):
            service.submit(application, architecture)
        # the accepted job is unaffected by the rejection
        assert service.wait(accepted, 120)["state"] == "certified"
    finally:
        service.drain(cancel_running=True)


def test_malformed_request_rejected_at_admission(service):
    application, architecture = fast_request()
    broken = dict(application)
    del broken["graph"]
    with pytest.raises(SerializationError):
        service.submit(broken, architecture)
    assert service.stats()["jobs"] == {}  # nothing was admitted


def test_draining_service_refuses_submissions(tmp_path):
    service = AllocationService(str(tmp_path / "spool"), workers=1).start()
    service.drain()
    application, architecture = fast_request()
    with pytest.raises(DrainingError):
        service.submit(application, architecture)


# -- retry, backoff, quarantine --------------------------------------------


def test_transient_worker_faults_are_retried_to_success(service):
    application, architecture = fast_request()
    with FaultInjector(
        specs=(
            FaultSpec(
                point="service.worker.run", error="runtime", times=2
            ),
        )
    ) as injector:
        job_id = service.submit(application, architecture)
        record = service.wait(job_id, timeout=60)
    assert record["state"] == "certified"
    assert record["attempts"] == 3  # two crashes + the success
    assert len(injector.injected) == 2


def test_poison_job_is_quarantined_not_retried_forever(service):
    application, architecture = fast_request()
    with FaultInjector(
        specs=(
            FaultSpec(
                point="service.worker.run", error="runtime", times=None
            ),
        )
    ) as injector:
        job_id = service.submit(application, architecture)
        record = service.wait(job_id, timeout=60)
    assert record["state"] == "quarantined"
    assert record["attempts"] == record["max_attempts"] == 3
    assert "InjectedFaultError" in record["reason"]
    assert len(injector.injected) == 3  # exactly max_attempts, then stop


def test_retry_delays_grow_and_carry_deterministic_jitter():
    policy = RetryPolicy(
        max_attempts=5, base_delay=0.1, factor=2.0, max_delay=1.0,
        jitter=0.25,
    )
    delays = [policy.delay(attempt, "job-000001") for attempt in (1, 2, 3)]
    assert delays[0] < delays[1] < delays[2]  # exponential growth
    for attempt, delay in zip((1, 2, 3), delays):
        raw = min(1.0, 0.1 * 2.0 ** (attempt - 1))
        assert raw <= delay <= raw * 1.25  # bounded jitter
        # deterministic: same job + attempt -> same delay
        assert delay == policy.delay(attempt, "job-000001")
    assert policy.delay(1, "job-000002") != delays[0]  # decorrelated
    assert policy.delay(9, "job-000001") <= 1.25  # capped


def test_infeasible_request_fails_terminally_without_retry(service):
    application, architecture = fast_request()
    application = dict(application)
    application["throughput_constraint"] = "1000000"  # absurd demand
    job_id = service.submit(application, architecture)
    record = service.wait(job_id, timeout=60)
    assert record["state"] == "failed"
    assert record["attempts"] == 1  # a genuine negative answer: no retry


# -- crash recovery via the journal ----------------------------------------


def test_queued_jobs_survive_daemon_restart(tmp_path):
    spool = str(tmp_path / "spool")
    application, architecture = fast_request()
    # simulate a daemon that accepted work and died before running it:
    # journal the job directly, then boot a service over the spool
    journal = JobJournal(spool)
    canonical = canonicalise_request(application, architecture)
    record = new_job_record(
        journal.next_id(),
        request={"application": application, "architecture": architecture},
        canonical=canonical.to_dict(),
        max_attempts=3,
    )
    journal.write(record)
    service = AllocationService(spool, workers=1, retry=FAST_RETRY).start()
    try:
        finished = service.wait(record["id"], timeout=60)
        assert finished["state"] == "certified"
    finally:
        service.drain(cancel_running=True)


def test_running_job_from_dead_daemon_is_requeued_and_finishes(tmp_path):
    spool = str(tmp_path / "spool")
    application, architecture = fast_request()
    journal = JobJournal(spool)
    canonical = canonicalise_request(application, architecture)
    record = new_job_record(
        journal.next_id(),
        request={"application": application, "architecture": architecture},
        canonical=canonical.to_dict(),
        max_attempts=3,
    )
    record["state"] = STATE_RUNNING  # the dead daemon was mid-attempt
    record["attempts"] = 1
    journal.write(record)
    service = AllocationService(spool, workers=1, retry=FAST_RETRY).start()
    try:
        finished = service.wait(record["id"], timeout=60)
        assert finished["state"] == "certified"
        assert finished["attempts"] == 2  # the lost attempt stays charged
    finally:
        service.drain(cancel_running=True)


def test_corrupted_journal_record_is_quarantined_not_fatal(tmp_path):
    spool = str(tmp_path / "spool")
    journal = JobJournal(spool)
    bad = tmp_path / "spool" / "jobs" / "job-000042.json"
    bad.write_text("{ truncated nonsense")
    service = AllocationService(spool, workers=1).start()
    try:
        assert service.stats()["jobs"] == {}  # booted cleanly regardless
        assert bad.with_suffix(".json.corrupt").exists()
        assert not bad.exists()
    finally:
        service.drain()


# -- graceful drain --------------------------------------------------------


def test_drain_cancels_running_job_and_restart_completes_identically(
    tmp_path,
):
    application, architecture = slow_request()
    # the uninterrupted reference, computed outside any service
    reference = resilient_allocate(
        application_from_dict(application),
        architecture_from_dict(architecture),
        budget=Budget(),
    )
    reference_bundle = json.loads(
        json.dumps(
            bundle_to_dict(
                architecture_from_dict(architecture),
                [reference.allocation],
                rungs=[reference.rung],
            )
        )
    )

    spool = str(tmp_path / "spool")
    service = AllocationService(spool, workers=1, retry=FAST_RETRY).start()
    job_id = service.submit(application, architecture)
    deadline = time.perf_counter() + 30
    while service.stats()["active"] == 0:
        assert time.perf_counter() < deadline, "job never started"
        time.sleep(0.005)
    time.sleep(0.2)  # let the engine get properly into its search
    outcome = service.drain(cancel_running=True)
    assert outcome["cancelled"] == 1
    parked = service.journal.load(job_id)
    assert parked["state"] == "queued"  # parked durably, not lost
    assert parked["attempts"] == 0  # cancellation refunds the attempt

    restarted = AllocationService(
        spool, workers=1, retry=FAST_RETRY
    ).start()
    try:
        record = restarted.wait(job_id, timeout=120)
        assert record["state"] == "certified"
        # deterministic engines: bit-identical to the uninterrupted run
        assert record["result"] == reference_bundle
    finally:
        restarted.drain(cancel_running=True)


def test_drain_is_idempotent_and_counts_parked_jobs(tmp_path):
    service = AllocationService(str(tmp_path / "spool"), workers=1).start()
    application, architecture = fast_request()
    job_id = service.submit(application, architecture)
    service.wait(job_id, timeout=60)
    first = service.drain()
    assert first == {"parked": 0, "cancelled": 0}
    assert service.drain() == {"parked": 0, "cancelled": 0}
