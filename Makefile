# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install lint lint-source test test-fast test-robustness test-verify test-exact test-service test-telemetry test-chaos test-sanitizer bench bench-tables bench-full experiments examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

# Repository invariants (fault points, trace catalogue, wall-clock
# use, lock registry, exit-code registry), the concurrency rules over
# the package's own source (docs/ANALYSIS.md, "Concurrency rules"),
# plus mypy when it is available (CI installs it; see pyproject.toml
# for the configuration).
lint: lint-source
	$(PYTHON) tools/check_invariants.py
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed; skipping type check"; \
	fi

# The CON001-CON004 static race/deadlock pass alone.
lint-source:
	$(PYTHON) -m repro.cli lint --source

test:
	$(PYTHON) -m pytest tests/

# Skip the @pytest.mark.slow cases (heavy differential comparisons).
test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

# The resilience layer: budgets, degradation ladder, fault injection,
# transactional commits and the hardened CLI (docs/ROBUSTNESS.md).
test-robustness:
	$(PYTHON) -m pytest tests/test_resilience.py tests/test_faults.py tests/test_cli.py

# Checkpoint/resume and the independent verifier (docs/VERIFICATION.md).
test-verify:
	$(PYTHON) -m pytest tests/test_checkpoint.py tests/test_verify.py

# The fault-tolerant allocation service: durable queue, supervised
# retry, crash recovery, verified result cache (docs/SERVICE.md).
# The service soak additionally rides `pytest -m faults`.
test-service:
	$(PYTHON) -m pytest tests/ -m service

# The telemetry plane (docs/OBSERVABILITY.md): Prometheus exposition,
# cross-process telemetry harvest, structured logs, per-job traces —
# unit/e2e pytest cases plus the real-daemon smoke that leaves its
# scrape and merged trace in telemetry-artifacts/.
test-telemetry:
	$(PYTHON) -m pytest tests/ -m "telemetry and not slow"
	$(PYTHON) tools/telemetry_smoke.py --out telemetry-artifacts

# Seeded chaos soak of the process-isolated service: children are
# SIGKILLed/SIGSTOPped, jobs blow their memory caps, journal writes
# drop — and no accepted job may be lost (docs/ROBUSTNESS.md).  Set
# REPRO_CHAOS_ARTIFACTS=DIR to keep failing spools for post-mortem.
test-chaos:
	$(PYTHON) -m pytest tests/ -m "chaos and not slow"

# Runtime lock sanitizer: the dedicated cross-check cases, then the
# whole service + chaos suites replayed under instrumented locks —
# every observed acquisition order is checked against the static
# lock-order graph at each test's teardown (docs/ANALYSIS.md).
test-sanitizer:
	$(PYTHON) -m pytest tests/ -m sanitizer
	REPRO_LOCKCHECK=1 $(PYTHON) -m pytest tests/ -m "(service or chaos) and not slow"

# The exact branch-and-bound backend and its optimality-gap
# differential harness against the greedy flow (docs/EXACT.md).
test-exact:
	$(PYTHON) -m pytest tests/ -m exact

# Curated perf workloads, checked against the committed baseline
# (BENCH_seed.json); a deterministic regression exits 5.
bench:
	$(PYTHON) -m repro.cli bench --label run --compare BENCH_seed.json

# pytest-benchmark tables reproducing the paper's result tables.
bench-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# The paper's full grid: 3 sequences x 3 architecture variants.
bench-full:
	REPRO_BENCH_SEQUENCES=3 REPRO_BENCH_ARCHS=3 REPRO_BENCH_FULL_H263=1 \
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

experiments:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/paper_example.py
	$(PYTHON) examples/throughput_analysis.py
	$(PYTHON) examples/multimedia_system.py
	$(PYTHON) examples/design_space_exploration.py --apps 10
	$(PYTHON) examples/trace_and_buffers.py
	$(PYTHON) examples/csdf_analysis.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
