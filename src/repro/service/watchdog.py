"""Parent-side liveness enforcement for sandboxed workers.

Two small machines keep the daemon healthy no matter what its children
do:

* :class:`Watchdog` — a single monitor thread polling every registered
  :class:`~repro.service.sandbox.SandboxHandle`.  A child that stops
  heartbeating (``stall_timeout``), reports a resident set above its
  memory cap, or runs far past its cooperative deadline is SIGKILLed;
  the kill reason feeds the attempt's
  :class:`~repro.service.sandbox.SandboxVerdict`.  The watchdog never
  touches job state itself — the blocked worker thread observes the
  child's death and routes it through the normal retry/quarantine
  policy.
* :class:`CrashLoopDetector` — a sliding window over terminal job
  outcomes.  When ``threshold`` of the last ``window`` terminal jobs
  were quarantined, the service is crash-looping (poison input storm,
  broken engine build, misconfigured limits) and ``/health`` flips to
  ``degraded`` so load balancers and operators can react before the
  queue fills with corpses.  The flag self-clears once healthy
  completions push the quarantines out of the window.
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.obs import get_metrics
from repro.obs.lockcheck import make_lock
from repro.obs.log import get_logger
from repro.obs.trace import get_trace

HEALTH_OK = "ok"
HEALTH_DEGRADED = "degraded"


class Watchdog:
    """One monitor thread over every live sandboxed child.

    The thread starts lazily at the first :meth:`register` and idles on
    a condition variable when no child is alive, so a thread-isolation
    service never pays for it.  ``poll_interval`` bounds detection
    latency; enforcement itself is delegated to
    :meth:`SandboxHandle.kill`, which records the reason for the
    verdict.
    """

    def __init__(self, poll_interval: float = 0.1) -> None:
        if poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        self.poll_interval = poll_interval
        self._lock = make_lock("repro.service.watchdog.Watchdog._lock")
        self._wake = threading.Condition(self._lock)
        self._handles: List[object] = []  # guarded-by: _lock
        self._thread: Optional[threading.Thread] = None  # guarded-by: _lock
        self._stopped = False  # guarded-by: _lock

    def register(self, handle: object) -> None:
        with self._lock:
            if self._stopped:
                raise RuntimeError("watchdog is stopped")
            if handle not in self._handles:
                self._handles.append(handle)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop,
                    name="repro-service-watchdog",
                    daemon=True,
                )
                self._thread.start()
            self._wake.notify_all()

    def unregister(self, handle: object) -> None:
        with self._lock:
            try:
                self._handles.remove(handle)
            except ValueError:
                pass

    def handles(self) -> List[object]:
        """Snapshot of the currently supervised handles."""
        with self._lock:
            return list(self._handles)

    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-ready digest of every supervised child, for ``stats()``.

        ``heartbeat_age_seconds`` is the time since the beat file last
        grew (``None`` before the first beat); ``states`` is the
        engine's last self-reported states-charged figure.  Heartbeat
        bookkeeping is read through the handle's locked
        ``watch_stats()`` accessor — the worker thread updates those
        fields concurrently, so raw attribute peeks would hand the
        status view torn values.
        """
        now = perf_counter()
        digest: List[Dict[str, Any]] = []
        for handle in self.handles():
            try:
                stats = handle.watch_stats()  # type: ignore[attr-defined]
                beat = stats["last_beat"]
                beats = int(stats["beats"])
                digest.append(
                    {
                        "job": getattr(handle, "job", None),
                        "attempt": getattr(handle, "attempt", None),
                        "pid": getattr(handle, "pid", None),
                        "beats": beats,
                        "states": beat.get("states"),
                        "rss_kb": beat.get("rss_kb"),
                        "heartbeat_age_seconds": (
                            round(now - stats["last_progress"], 3)
                            if beats
                            else None
                        ),
                    }
                )
            except Exception:
                # a racing or torn-down handle must not break stats()
                continue
        return digest

    def stop(self) -> None:
        with self._lock:
            self._stopped = True
            self._wake.notify_all()
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join(timeout=5)

    # -- the monitor loop ---------------------------------------------
    def _loop(self) -> None:
        obs = get_metrics()
        while True:
            with self._lock:
                while not self._handles and not self._stopped:
                    self._wake.wait(timeout=1.0)
                if self._stopped:
                    return
                handles = list(self._handles)
            for handle in handles:
                try:
                    self._inspect(handle, obs)
                except Exception:
                    # a broken handle must never kill the monitor
                    obs.counter("sandbox.watchdog.errors")
            with self._lock:
                if self._stopped:
                    return
                self._wake.wait(timeout=self.poll_interval)

    def _inspect(self, handle, obs) -> None:
        if not handle.alive():
            return
        handle.read_heartbeat()
        if handle.over_memory():
            obs.counter("sandbox.watchdog.oom_kills")
            self._log_kill(handle, "oom")
            handle.kill("oom")
        elif handle.stalled():
            obs.counter("sandbox.watchdog.stall_kills")
            self._log_kill(handle, "stalled")
            handle.kill("stalled")
        elif handle.over_deadline():
            obs.counter("sandbox.watchdog.deadline_kills")
            self._log_kill(handle, "deadline")
            handle.kill("deadline")

    @staticmethod
    def _log_kill(handle, reason: str) -> None:
        get_logger().warning(
            "watchdog.kill",
            job=getattr(handle, "job", None),
            attempt=getattr(handle, "attempt", None),
            pid=getattr(handle, "pid", None),
            reason=reason,
        )


class CrashLoopDetector:
    """Sliding-window quarantine counter behind ``/health``.

    Thread-safe; fed one boolean per *terminal* job transition.  The
    service is ``degraded`` while at least ``threshold`` of the last
    ``window`` terminal jobs were quarantined.
    """

    def __init__(
        self,
        window: int = 10,
        threshold: int = 3,
        on_trip: Optional[Callable[[], None]] = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 1 <= threshold <= window:
            raise ValueError("threshold must be in [1, window]")
        self.window = window
        self.threshold = threshold
        #: invoked (outside the lock) each time the detector newly
        #: flips to degraded — the service hangs its flight-recorder
        #: dump here; exceptions are swallowed
        self.on_trip = on_trip
        self._lock = make_lock(
            "repro.service.watchdog.CrashLoopDetector._lock"
        )
        self._outcomes: Deque[bool] = deque(maxlen=window)  # guarded-by: _lock
        self._degraded_since: Optional[float] = None  # guarded-by: _lock

    def record(self, quarantined: bool) -> None:
        tripped = False
        with self._lock:
            was_degraded = self._count() >= self.threshold
            self._outcomes.append(quarantined)
            now_degraded = self._count() >= self.threshold
            if now_degraded and not was_degraded:
                tripped = True
                self._degraded_since = perf_counter()
                get_metrics().counter("service.crash_loop")
                tr = get_trace()
                if tr.enabled:
                    tr.instant(
                        "service",
                        "crash_loop",
                        quarantined=self._count(),
                        window=self.window,
                    )
            elif not now_degraded:
                self._degraded_since = None
        if tripped:
            get_logger().error(
                "service.crash_loop",
                window=self.window,
                threshold=self.threshold,
            )
            if self.on_trip is not None:
                try:
                    self.on_trip()
                except Exception:
                    # post-mortem capture must never worsen the storm
                    pass

    def _count(self) -> int:  # requires-lock: _lock
        return sum(1 for outcome in self._outcomes if outcome)

    @property
    def degraded(self) -> bool:
        with self._lock:
            return self._count() >= self.threshold

    def health(self) -> str:
        return HEALTH_DEGRADED if self.degraded else HEALTH_OK

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "window": self.window,
                "threshold": self.threshold,
                "recent_quarantines": self._count(),
            }
