"""Minimal stdlib HTTP front end for :class:`AllocationService`.

Transport is deliberately thin — the robustness lives in the service
object, the HTTP layer only translates:

==============================  =========================================
``GET  /health``                service stats (queue depth, job states)
``GET  /metrics``               Prometheus text exposition of the active
                                metrics registry (queue-depth gauges set
                                at scrape time); text/plain, not JSON
``GET  /jobs``                  summary list of every known job
``GET  /jobs/<id>``             full job record (request, state, result)
``GET  /jobs/<id>/timeline``    merged event timeline (service + child)
``GET  /jobs/<id>/trace``       one Chrome/Perfetto trace for the job,
                                parent and sandbox children on distinct
                                pid lanes
``POST /jobs``                  submit ``{"application": ...,
                                "architecture": ..., "deadline"?,
                                "max_states"?, "memory_mb"?,
                                "cpu_seconds"?}`` → 202 with the job id;
                                429 on overload (with a ``Retry-After``
                                hint), 503 while draining, 400 on
                                malformed input, 413 on oversized or
                                length-less bodies
``POST /drain``                 begin a graceful drain, then stop serving
==============================  =========================================

Status codes mirror the CLI exit codes: 429 is exit 7 (overload), 400
is exit 2 (user error) — see ``docs/ROBUSTNESS.md``.

The transport defends itself too: request bodies are bounded
(:data:`MAX_BODY_BYTES`; a client-supplied ``Content-Length`` is never
trusted past it, and a missing one is rejected outright rather than
read-until-EOF), and every connection carries a socket timeout so a
stalled client cannot pin a handler thread forever.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.obs import get_metrics
from repro.obs.log import get_logger
from repro.obs.prom import CONTENT_TYPE as PROM_CONTENT_TYPE
from repro.obs.prom import render_prometheus
from repro.sdf.serialization import SerializationError
from repro.service.service import (
    AllocationService,
    DrainingError,
    OverloadError,
)

#: largest accepted request body; a graph this size is ~10^5 actors,
#: far past anything the engines could chew through anyway
MAX_BODY_BYTES = 8 * 1024 * 1024

#: per-connection socket timeout (seconds): a stalled or byte-dripping
#: client loses its handler thread after this long
SOCKET_TIMEOUT = 30.0


class ServiceHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`AllocationService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self, address: Tuple[str, int], service: AllocationService
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self._drain_started = threading.Event()

    def request_drain(self) -> bool:
        """Drain the service and stop serving, once; False if repeated."""
        if self._drain_started.is_set():
            return False
        self._drain_started.set()

        def _drain() -> None:
            self.service.drain(cancel_running=True)
            self.shutdown()

        threading.Thread(
            target=_drain, name="repro-service-drain", daemon=True
        ).start()
        return True


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    # honoured by BaseRequestHandler.setup(): per-connection socket
    # timeout, so one stalled client cannot pin a handler thread
    timeout = SOCKET_TIMEOUT
    server: ServiceHTTPServer

    # the daemon narrates through repro.obs, not through stderr spam:
    # access lines go to the structured logger at debug level (a no-op
    # until `repro-alloc serve` configures logging)
    def log_message(self, format: str, *args: Any) -> None:
        get_logger().debug(
            "http.access",
            client=self.client_address[0] if self.client_address else None,
            line=format % args,
        )

    def _json(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, indent=2, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Optional[Dict[str, Any]]:
        """The request body as a dict; None when malformed.

        Callers must have validated ``Content-Length`` against
        :data:`MAX_BODY_BYTES` first (:meth:`_body_length`); this
        method never reads more than the validated length.
        """
        length = self._body_length()
        if length is None:
            return None
        try:
            data = json.loads(self.rfile.read(length) or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        return data if isinstance(data, dict) else None

    def _body_length(self) -> Optional[int]:
        """The validated ``Content-Length``, or None when unusable."""
        raw = self.headers.get("Content-Length")
        if raw is None:
            return None
        try:
            length = int(raw)
        except ValueError:
            return None
        if not 0 <= length <= MAX_BODY_BYTES:
            return None
        return length

    def _reject_bad_body(self) -> bool:
        """413 for absent/oversized Content-Length; True when rejected.

        The offending body is never read, so the connection is closed
        after the response — leaving it open would desync keep-alive
        parsing on whatever bytes the client sends next.
        """
        raw = self.headers.get("Content-Length")
        if raw is None:
            self._json(
                413,
                {
                    "error": "Content-Length is required (bodies are "
                    f"bounded at {MAX_BODY_BYTES} bytes)"
                },
                headers={"Connection": "close"},
            )
            self.close_connection = True
            return True
        try:
            length = int(raw)
        except ValueError:
            self._json(
                400,
                {"error": f"malformed Content-Length {raw!r}"},
                headers={"Connection": "close"},
            )
            self.close_connection = True
            return True
        if length < 0 or length > MAX_BODY_BYTES:
            self._json(
                413,
                {
                    "error": f"request body of {length} bytes exceeds "
                    f"the {MAX_BODY_BYTES}-byte limit"
                },
                headers={"Connection": "close"},
            )
            self.close_connection = True
            return True
        return False

    def _text(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _metrics(self) -> None:
        """Prometheus scrape: point-in-time gauges, then the registry.

        Queue depth & co. live in ``stats()`` rather than the metrics
        registry; folding them into gauges at scrape time keeps one
        source of truth while still exposing them to Prometheus.
        """
        service = self.server.service
        obs = get_metrics()
        if obs.enabled:
            stats = service.stats()
            obs.gauge("service.queue_depth", stats["queue_depth"])
            obs.gauge("service.active", stats["active"])
            obs.gauge("service.backing_off", stats["backing_off"])
            obs.gauge(
                "service.healthy", 1 if stats["health"] == "ok" else 0
            )
            obs.gauge("service.accepting", 1 if stats["accepting"] else 0)
        self._text(200, render_prometheus(obs.snapshot()), PROM_CONTENT_TYPE)

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        service = self.server.service
        if path == "/health":
            self._json(200, service.stats())
        elif path == "/metrics":
            self._metrics()
        elif path == "/jobs":
            self._json(200, {"jobs": service.jobs()})
        elif path.startswith("/jobs/") and path.endswith("/timeline"):
            job_id = path[len("/jobs/"):-len("/timeline")]
            if service.job(job_id) is None:
                self._json(404, {"error": "unknown job"})
            else:
                self._json(200, {"job": job_id,
                                 "timeline": service.timeline(job_id)})
        elif path.startswith("/jobs/") and path.endswith("/trace"):
            job_id = path[len("/jobs/"):-len("/trace")]
            if service.job(job_id) is None:
                self._json(404, {"error": "unknown job"})
            else:
                self._json(200, service.job_chrome_trace(job_id))
        elif path.startswith("/jobs/"):
            record = service.job(path[len("/jobs/"):])
            if record is None:
                self._json(404, {"error": "unknown job"})
            else:
                self._json(200, record)
        else:
            self._json(404, {"error": f"unknown path {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        path = self.path.split("?", 1)[0].rstrip("/")
        service = self.server.service
        if path == "/jobs":
            if self._reject_bad_body():
                return
            body = self._read_body()
            if (
                body is None
                or "application" not in body
                or "architecture" not in body
            ):
                self._json(
                    400,
                    {
                        "error": "body must be a JSON object with "
                        "'application' and 'architecture'"
                    },
                )
                return
            try:
                job_id = service.submit(
                    body["application"],
                    body["architecture"],
                    deadline=body.get("deadline"),
                    max_states=body.get("max_states"),
                    memory_mb=body.get("memory_mb"),
                    cpu_seconds=body.get("cpu_seconds"),
                )
            except OverloadError as error:
                retry_after = service.retry_after_hint()
                self._json(
                    429,
                    {"error": str(error), "retry_after": retry_after},
                    headers={"Retry-After": str(retry_after)},
                )
            except DrainingError as error:
                self._json(503, {"error": str(error)})
            except (SerializationError, ValueError, TypeError) as error:
                self._json(400, {"error": str(error)})
            else:
                self._json(202, {"id": job_id, "state": "queued"})
        elif path == "/drain":
            started = self.server.request_drain()
            self._json(202, {"draining": True, "initiated": started})
        else:
            self._json(404, {"error": f"unknown path {path!r}"})
