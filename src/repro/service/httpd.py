"""Minimal stdlib HTTP front end for :class:`AllocationService`.

Transport is deliberately thin — the robustness lives in the service
object, the HTTP layer only translates:

==========================  =============================================
``GET  /health``            service stats (queue depth, job states)
``GET  /jobs``              summary list of every known job
``GET  /jobs/<id>``         full job record (request, state, result)
``POST /jobs``              submit ``{"application": ..., "architecture":
                            ..., "deadline"?, "max_states"?}`` → 202 with
                            the job id; 429 on overload, 503 while
                            draining, 400 on malformed input
``POST /drain``             begin a graceful drain, then stop serving
==========================  =============================================

Status codes mirror the CLI exit codes: 429 is exit 7 (overload), 400
is exit 2 (user error) — see ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.sdf.serialization import SerializationError
from repro.service.service import (
    AllocationService,
    DrainingError,
    OverloadError,
)


class ServiceHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`AllocationService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self, address: Tuple[str, int], service: AllocationService
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self._drain_started = threading.Event()

    def request_drain(self) -> bool:
        """Drain the service and stop serving, once; False if repeated."""
        if self._drain_started.is_set():
            return False
        self._drain_started.set()

        def _drain() -> None:
            self.service.drain(cancel_running=True)
            self.shutdown()

        threading.Thread(
            target=_drain, name="repro-service-drain", daemon=True
        ).start()
        return True


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServiceHTTPServer

    # the daemon narrates through repro.obs, not through stderr spam
    def log_message(self, format: str, *args: Any) -> None:
        pass

    def _json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Optional[Dict[str, Any]]:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            return None
        try:
            data = json.loads(self.rfile.read(length) or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        return data if isinstance(data, dict) else None

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        service = self.server.service
        if path == "/health":
            self._json(200, service.stats())
        elif path == "/jobs":
            self._json(200, {"jobs": service.jobs()})
        elif path.startswith("/jobs/"):
            record = service.job(path[len("/jobs/"):])
            if record is None:
                self._json(404, {"error": "unknown job"})
            else:
                self._json(200, record)
        else:
            self._json(404, {"error": f"unknown path {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        path = self.path.split("?", 1)[0].rstrip("/")
        service = self.server.service
        if path == "/jobs":
            body = self._read_body()
            if (
                body is None
                or "application" not in body
                or "architecture" not in body
            ):
                self._json(
                    400,
                    {
                        "error": "body must be a JSON object with "
                        "'application' and 'architecture'"
                    },
                )
                return
            try:
                job_id = service.submit(
                    body["application"],
                    body["architecture"],
                    deadline=body.get("deadline"),
                    max_states=body.get("max_states"),
                )
            except OverloadError as error:
                self._json(429, {"error": str(error)})
            except DrainingError as error:
                self._json(503, {"error": str(error)})
            except (SerializationError, ValueError, TypeError) as error:
                self._json(400, {"error": str(error)})
            else:
                self._json(202, {"id": job_id, "state": "queued"})
        elif path == "/drain":
            started = self.server.request_drain()
            self._json(202, {"draining": True, "initiated": started})
        else:
            self._json(404, {"error": f"unknown path {path!r}"})
