"""Child-side entry point of the allocation sandbox.

``python -m repro.service.sandbox_child <request.json>`` runs exactly
one allocation attempt inside OS-level containment:

1. **Rlimits first.**  ``resource.setrlimit`` caps the address space
   (``limits.memory_mb``) and CPU time (``limits.cpu_seconds``) before
   any engine code runs.  A blown address space surfaces as
   ``MemoryError`` and exits :data:`~repro.service.sandbox.EXIT_OOM`;
   the CPU soft limit delivers ``SIGXCPU``, which a handler turns into
   :data:`~repro.service.sandbox.EXIT_CPU` (the hard limit, two
   seconds later, would SIGKILL a handler that somehow hangs).
2. **Heartbeats.**  A daemon thread appends one JSON line per interval
   to the beat file — beat counter, ``ru_maxrss`` and the engine's
   ``states_charged`` — so the parent watchdog can tell a working
   child from a stalled one and track its memory without /proc races.
3. **The attempt.**  The same pipeline a thread-mode worker runs:
   ``resilient_allocate`` under a cooperative budget, bundle building
   and (optionally) independent certification.  Typed negative
   answers (infeasibility, budget exhaustion, malformed input,
   refuted certification) are *results*, written to the outcome file
   with ``ok: false`` and exit status 0 — only genuine crashes and
   limit breaches end nonzero.

The outcome file is written atomically, so the parent never reads a
torn result; everything else about the protocol is documented in
:mod:`repro.service.sandbox`.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
from typing import Any, Dict, Optional


def _apply_rlimits(limits: Dict[str, Any]) -> None:
    try:
        import resource
    except ImportError:  # non-POSIX: run uncapped rather than not at all
        return
    memory_mb = limits.get("memory_mb")
    if memory_mb:
        space = int(memory_mb) * 1024 * 1024
        try:
            resource.setrlimit(resource.RLIMIT_AS, (space, space))
        except (ValueError, OSError):
            pass
    cpu_seconds = limits.get("cpu_seconds")
    if cpu_seconds:
        soft = max(1, int(cpu_seconds))
        try:
            resource.setrlimit(resource.RLIMIT_CPU, (soft, soft + 2))
        except (ValueError, OSError):
            pass

        def _cpu_exceeded(signum: int, frame: object) -> None:
            from repro.service.sandbox import EXIT_CPU

            os._exit(EXIT_CPU)

        signal.signal(signal.SIGXCPU, _cpu_exceeded)


def _peak_rss_kb() -> Optional[int]:
    try:
        import resource

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, OSError):
        return None
    # ru_maxrss is KB on Linux, bytes on macOS
    return rss // 1024 if sys.platform == "darwin" else rss


#: telemetry sidecar refresh period, in heartbeats — serialising the
#: metrics snapshot + trace ring is heavier than one beat line, so the
#: spool updates every Nth beat (the parent also gets a final spool
#: after the attempt, whatever the phase)
TELEMETRY_EVERY_BEATS = 4

#: child-side trace ring size: bounded well below the parent's default
#: so the periodic sidecar serialisation stays cheap under rlimits
CHILD_TRACE_CAPACITY = 4096


def _heartbeat_loop(
    path: str,
    interval: float,
    budget: Any,
    stop: threading.Event,
    spool_telemetry: Optional[Any] = None,
) -> None:
    beat = 0
    while True:
        line = json.dumps(
            {
                "beat": beat,
                "rss_kb": _peak_rss_kb(),
                "states": getattr(budget, "states_charged", 0),
            }
        )
        try:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
        except OSError:
            pass
        if spool_telemetry is not None and beat % TELEMETRY_EVERY_BEATS == 0:
            try:
                spool_telemetry()
            except Exception:
                # telemetry is best-effort; the beat line above is the
                # liveness signal and must keep flowing regardless
                pass
        beat += 1
        if stop.wait(interval):
            return


def _write_outcome(path: str, payload: Dict[str, Any]) -> None:
    temp = f"{path}.{os.getpid()}.tmp"
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


def _attempt(spec: Dict[str, Any], budget: Any) -> Dict[str, Any]:
    """The allocation pipeline; returns the outcome payload."""
    from repro.appmodel.serialization import (
        application_from_dict,
        bundle_to_dict,
    )
    from repro.arch.serialization import architecture_from_dict
    from repro.core.strategy import AllocationError, ResourceAllocator
    from repro.resilience.budget import BudgetExceededError
    from repro.resilience.policy import resilient_allocate
    from repro.sdf.serialization import SerializationError
    from repro.verify.allocation import certify_allocation

    try:
        application = application_from_dict(spec["request"]["application"])
        architecture = architecture_from_dict(
            spec["request"]["architecture"]
        )
        allocator = ResourceAllocator(
            backend=spec.get("backend") or "greedy"
        )
        result = resilient_allocate(
            application,
            architecture,
            allocator=allocator,
            budget=budget,
            checkpoint_path=spec.get("checkpoint_path"),
            preflight=True,
        )
        bundle = bundle_to_dict(
            architecture, [result.allocation], rungs=[result.rung]
        )
        verdict = None
        if spec.get("verify_results", True):
            report = certify_allocation(bundle)
            if not report.certified:
                reasons = [
                    reason
                    for refuted in report.refuted
                    for reason in refuted.reasons
                ]
                return {
                    "ok": False,
                    "error": "refuted",
                    "message": "; ".join(reasons) or "unknown refutation",
                }
            verdict = (
                report.verdicts[0].verdict if report.verdicts else None
            )
        return {
            "ok": True,
            "bundle": bundle,
            "rung": result.rung,
            "verdict": verdict,
        }
    except BudgetExceededError as error:
        return {
            "ok": False,
            "error": "budget",
            "reason": error.reason,
            "message": str(error),
        }
    except AllocationError as error:
        return {"ok": False, "error": "allocation", "message": str(error)}
    except SerializationError as error:
        return {
            "ok": False,
            "error": "serialization",
            "message": str(error),
        }


def main(argv: Optional[list] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    from repro.service.sandbox import EXIT_OOM, EXIT_SPEC

    if len(argv) != 1:
        return EXIT_SPEC
    try:
        with open(argv[0], "r", encoding="utf-8") as handle:
            spec = json.load(handle)
        result_path = spec["result_path"]
        heartbeat_path = spec["heartbeat_path"]
    except (OSError, json.JSONDecodeError, KeyError):
        return EXIT_SPEC

    _apply_rlimits(spec.get("limits") or {})

    # from here on every allocation can blow the address-space cap —
    # even an import or a thread start — so one guard covers it all:
    # under memory pressure the outcome write itself may fail, so exit
    # through the dedicated code and let the parent classify it
    try:
        from repro.resilience.budget import Budget

        budget_spec = spec.get("budget") or {}
        budget = Budget(
            deadline=budget_spec.get("deadline"),
            max_states=budget_spec.get("max_states"),
        )

        # Child-local observability: the engines are permanently
        # instrumented against the process-global registries, so
        # enabling fresh ones here captures the attempt's counters,
        # timers and trace events — which would otherwise die with
        # this process.  The heartbeat thread spools them to the
        # telemetry sidecar for the parent to harvest.
        spool_telemetry = None
        telemetry_path = spec.get("telemetry_path")
        if telemetry_path:
            from repro.obs.metrics import Metrics, enable
            from repro.obs.telemetry import capture_clock, write_telemetry
            from repro.obs.trace import TraceBuffer, enable_trace

            child_metrics = enable(Metrics())
            child_trace = enable_trace(
                TraceBuffer(capacity=CHILD_TRACE_CAPACITY)
            )
            clock = capture_clock()

            def spool_telemetry() -> None:
                write_telemetry(
                    telemetry_path, child_metrics, child_trace, clock=clock
                )

        stop = threading.Event()
        beater = threading.Thread(
            target=_heartbeat_loop,
            args=(
                heartbeat_path,
                float(spec.get("heartbeat_interval", 0.25)),
                budget,
                stop,
                spool_telemetry,
            ),
            name="sandbox-heartbeat",
            daemon=True,
        )
        try:
            beater.start()
        except RuntimeError:
            # pthread_create mmaps an ~8 MB stack; under a tight
            # RLIMIT_AS that fails before any engine code runs — the
            # same containment outcome as a MemoryError
            os._exit(EXIT_OOM)
        try:
            payload = _attempt(spec, budget)
        finally:
            stop.set()
        if spool_telemetry is not None:
            try:
                spool_telemetry()  # final snapshot: the complete attempt
            except Exception:
                pass
        _write_outcome(result_path, payload)
    except MemoryError:
        os._exit(EXIT_OOM)
    return 0


if __name__ == "__main__":
    sys.exit(main())
