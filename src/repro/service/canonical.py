"""Isomorphism-stable canonicalisation of allocation requests.

The service's result cache (:mod:`repro.service.cache`) is
content-addressed: two requests share a cache entry exactly when their
canonical forms are identical.  A request is the triple the paper's
flow consumes — an application (SDFG + Γ + Θ + λ), an architecture
(tiles, occupancy, connections) — and its canonical form is computed
by *canonical labelling*: actor, channel and tile names are replaced by
indices chosen from graph structure and attributes alone, so renaming
every actor of a graph consistently (a mode switch re-asking an
isomorphic question, Jung/Oh/Ha style) maps to the same form and the
same SHA-256 digest.

The labelling is the classic refinement/individualisation scheme:

1. every node starts with a colour hashing its local attributes
   (execution times, Γ options, Θ entries, tile capacities *and
   occupancy* — a half-full platform is a different question);
2. Weisfeiler–Leman refinement mixes neighbour colours along
   attributed edges until the partition stabilises;
3. remaining ties are broken by individualising each candidate of the
   first non-singleton colour class in turn and keeping the order whose
   canonical serialisation is lexicographically smallest.

Step 3 is exponential on highly symmetric graphs, so it runs under a
refinement budget; when the budget is exhausted the canonicaliser falls
back to breaking ties with the original names.  The fallback is still
deterministic — the cache then only matches literally identical
requests, never a wrong one.  Correctness never rests on this module:
cache hits compare full canonical payloads (the digest is only the
index) and are re-verified by :mod:`repro.verify` before being served.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

CANONICAL_FORMAT = "repro-canonical-request"
CANONICAL_VERSION = 1

#: refinement passes the individualisation search may spend before the
#: canonicaliser falls back to name-based tie-breaking
DEFAULT_REFINEMENT_LIMIT = 2048


def _digest_of(value: Any) -> str:
    """SHA-256 over the compact, key-sorted JSON form of ``value``."""
    text = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CanonicalRequest:
    """One request in canonical form.

    ``payload`` is the name-free canonical document, ``digest`` its
    SHA-256 (the cache key).  The three ``*_order`` tuples map each
    canonical index back to the request's own name — the bridge the
    cache uses to translate a stored answer into the vocabulary of an
    isomorphic request.  ``exact_names`` is True when the tie-break
    budget was exhausted and original names leaked into the ordering
    (the form is then only stable under literal renames of nothing).
    """

    payload: Dict[str, Any]
    digest: str
    actor_order: Tuple[str, ...]
    channel_order: Tuple[str, ...]
    tile_order: Tuple[str, ...]
    exact_names: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "payload": self.payload,
            "digest": self.digest,
            "actor_order": list(self.actor_order),
            "channel_order": list(self.channel_order),
            "tile_order": list(self.tile_order),
            "exact_names": self.exact_names,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "CanonicalRequest":
        return CanonicalRequest(
            payload=data["payload"],
            digest=data["digest"],
            actor_order=tuple(data["actor_order"]),
            channel_order=tuple(data["channel_order"]),
            tile_order=tuple(data["tile_order"]),
            exact_names=bool(data.get("exact_names", False)),
        )


# ---------------------------------------------------------------------------
# canonical labelling core (attribute-rich WL + individualisation)


class _RefinementBudget:
    __slots__ = ("left",)

    def __init__(self, limit: int) -> None:
        self.left = limit

    def spend(self) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        return True


def _refine_once(
    colors: Dict[str, str],
    adjacency: Dict[str, List[Tuple[str, str]]],
) -> Dict[str, str]:
    return {
        node: _digest_of(
            [
                colors[node],
                sorted(
                    (signature, colors[other])
                    for signature, other in edges
                ),
            ]
        )
        for node, edges in adjacency.items()
    }


def _stable_colors(
    colors: Dict[str, str],
    adjacency: Dict[str, List[Tuple[str, str]]],
) -> Dict[str, str]:
    """WL refinement to a fixed point of the colour partition.

    Each pass maps old colours injectively into new ones, so the
    partition can only refine; an unchanged class count means the
    partition itself is unchanged and the fixed point is reached.
    """
    current = dict(colors)
    for _ in range(len(colors) + 1):
        refined = _refine_once(current, adjacency)
        if len(set(refined.values())) == len(set(current.values())):
            return refined
        current = refined
    return current


def _canonical_order(
    nodes: Sequence[str],
    colors: Dict[str, str],
    adjacency: Dict[str, List[Tuple[str, str]]],
    serialize: Callable[[Sequence[str]], str],
    budget: _RefinementBudget,
) -> Optional[List[str]]:
    """A node order stable under isomorphism, or None on budget blow-up.

    ``serialize`` renders a complete candidate order as the canonical
    document text; among the individualisation branches the
    lexicographically smallest rendering wins, which is exactly the
    property that makes the winner independent of the original names.
    """
    if not budget.spend():
        return None
    stable = _stable_colors(colors, adjacency)
    classes: Dict[str, List[str]] = {}
    for node in nodes:
        classes.setdefault(stable[node], []).append(node)
    ordered_classes = [classes[color] for color in sorted(classes)]
    first_tie = next(
        (members for members in ordered_classes if len(members) > 1), None
    )
    if first_tie is None:
        return [members[0] for members in ordered_classes]
    best_order: Optional[List[str]] = None
    best_key: Optional[str] = None
    for candidate in sorted(first_tie):
        branched = dict(stable)
        branched[candidate] = _digest_of([stable[candidate], "pivot"])
        order = _canonical_order(
            nodes, branched, adjacency, serialize, budget
        )
        if order is None:
            return None
        key = serialize(order)
        if best_key is None or key < best_key:
            best_order, best_key = order, key
    return best_order


# ---------------------------------------------------------------------------
# request-specific attribute extraction


def _actor_attributes(
    application: Dict[str, Any]
) -> Dict[str, List[Any]]:
    graph = application.get("graph", {})
    requirements = application.get("actors", {})
    output = application.get("output_actor")
    attributes: Dict[str, List[Any]] = {}
    for entry in graph.get("actors", []):
        name = entry.get("name")
        options = requirements.get(name, {})
        attributes[name] = [
            entry.get("execution_time"),
            sorted(
                (
                    processor,
                    option.get("execution_time"),
                    option.get("memory", 0),
                )
                for processor, option in options.items()
            ),
            name == output,
        ]
    return attributes


def _channel_attributes(application: Dict[str, Any]) -> List[Dict[str, Any]]:
    graph = application.get("graph", {})
    theta = application.get("channels", {})
    channels = []
    for entry in graph.get("channels", []):
        requirements = theta.get(entry.get("name"), {})
        channels.append(
            {
                "name": entry.get("name"),
                "src": entry.get("src"),
                "dst": entry.get("dst"),
                "attrs": [
                    entry.get("production", 1),
                    entry.get("consumption", 1),
                    entry.get("tokens", 0),
                    requirements.get("token_size", 1),
                    requirements.get("buffer_tile"),
                    requirements.get("buffer_src"),
                    requirements.get("buffer_dst"),
                    requirements.get("bandwidth", 0),
                ],
            }
        )
    return channels


def _tile_attributes(architecture: Dict[str, Any]) -> Dict[str, List[Any]]:
    attributes: Dict[str, List[Any]] = {}
    for entry in architecture.get("tiles", []):
        attributes[entry.get("name")] = [
            entry.get("processor_type"),
            entry.get("wheel"),
            entry.get("memory", 0),
            entry.get("max_connections", 0),
            entry.get("bandwidth_in", 0),
            entry.get("bandwidth_out", 0),
            entry.get("wheel_occupied", 0),
            entry.get("memory_occupied", 0),
            entry.get("connections_occupied", 0),
            entry.get("bandwidth_in_occupied", 0),
            entry.get("bandwidth_out_occupied", 0),
        ]
    return attributes


def _order_channels(
    channels: List[Dict[str, Any]], actor_index: Dict[str, int]
) -> List[Dict[str, Any]]:
    # parallel channels identical in every attribute are automorphic, so
    # the final name tie-break never distinguishes isomorphic requests
    return sorted(
        channels,
        key=lambda channel: (
            actor_index[channel["src"]],
            actor_index[channel["dst"]],
            json.dumps(channel["attrs"]),
            channel["name"],
        ),
    )


def _application_section(
    application: Dict[str, Any],
    actor_order: Sequence[str],
) -> Tuple[Dict[str, Any], List[str]]:
    attributes = _actor_attributes(application)
    actor_index = {name: i for i, name in enumerate(actor_order)}
    channels = _order_channels(
        _channel_attributes(application), actor_index
    )
    section = {
        "constraint": str(application.get("throughput_constraint", "0")),
        "actors": [attributes[name] for name in actor_order],
        "channels": [
            [actor_index[c["src"]], actor_index[c["dst"]], c["attrs"]]
            for c in channels
        ],
    }
    return section, [c["name"] for c in channels]


def _architecture_section(
    architecture: Dict[str, Any],
    tile_order: Sequence[str],
) -> Dict[str, Any]:
    attributes = _tile_attributes(architecture)
    tile_index = {name: i for i, name in enumerate(tile_order)}
    connections = sorted(
        (
            tile_index[entry["src"]],
            tile_index[entry["dst"]],
            entry.get("latency", 1),
        )
        for entry in architecture.get("connections", [])
    )
    return {
        "tiles": [attributes[name] for name in tile_order],
        "connections": [list(connection) for connection in connections],
    }


def canonicalise_request(
    application: Dict[str, Any],
    architecture: Dict[str, Any],
    refinement_limit: int = DEFAULT_REFINEMENT_LIMIT,
) -> CanonicalRequest:
    """Canonical form of one (application, architecture, λ) request.

    ``application`` / ``architecture`` are the plain-dict forms of
    :func:`repro.appmodel.serialization.application_to_dict` and
    :func:`repro.arch.serialization.architecture_to_dict`.
    """
    budget = _RefinementBudget(refinement_limit)
    exact_names = False

    # -- actors --------------------------------------------------------
    actor_attrs = _actor_attributes(application)
    actors = list(actor_attrs)
    adjacency: Dict[str, List[Tuple[str, str]]] = {
        name: [] for name in actors
    }
    for channel in _channel_attributes(application):
        signature = json.dumps(channel["attrs"])
        adjacency[channel["src"]].append((f"out:{signature}", channel["dst"]))
        adjacency[channel["dst"]].append((f"in:{signature}", channel["src"]))
    actor_colors = {
        name: _digest_of(attrs) for name, attrs in actor_attrs.items()
    }

    def actor_signature(order: Sequence[str]) -> str:
        section, _ = _application_section(application, order)
        return json.dumps(section, sort_keys=True, separators=(",", ":"))

    actor_order = _canonical_order(
        actors, actor_colors, adjacency, actor_signature, budget
    )
    if actor_order is None:
        exact_names = True
        stable = _stable_colors(actor_colors, adjacency)
        actor_order = sorted(actors, key=lambda name: (stable[name], name))

    # -- tiles ---------------------------------------------------------
    tile_attrs = _tile_attributes(architecture)
    tiles = list(tile_attrs)
    tile_adjacency: Dict[str, List[Tuple[str, str]]] = {
        name: [] for name in tiles
    }
    for entry in architecture.get("connections", []):
        latency = entry.get("latency", 1)
        tile_adjacency[entry["src"]].append((f"out:{latency}", entry["dst"]))
        tile_adjacency[entry["dst"]].append((f"in:{latency}", entry["src"]))
    tile_colors = {
        name: _digest_of(attrs) for name, attrs in tile_attrs.items()
    }

    def tile_signature(order: Sequence[str]) -> str:
        section = _architecture_section(architecture, order)
        return json.dumps(section, sort_keys=True, separators=(",", ":"))

    tile_order = _canonical_order(
        tiles, tile_colors, tile_adjacency, tile_signature, budget
    )
    if tile_order is None:
        exact_names = True
        stable = _stable_colors(tile_colors, tile_adjacency)
        tile_order = sorted(tiles, key=lambda name: (stable[name], name))

    # -- assemble ------------------------------------------------------
    application_section, channel_order = _application_section(
        application, actor_order
    )
    payload = {
        "format": CANONICAL_FORMAT,
        "version": CANONICAL_VERSION,
        "application": application_section,
        "architecture": _architecture_section(architecture, tile_order),
    }
    # normalise through JSON so the payload compares equal to its own
    # persisted form (tuples inside attribute lists become lists)
    payload = json.loads(
        json.dumps(payload, sort_keys=True, separators=(",", ":"))
    )
    if exact_names:
        # name-based tie-breaks leaked original names into the ordering;
        # record them so literal re-submissions still match while merely
        # isomorphic ones miss (deterministic, never wrong)
        payload["names"] = {
            "actors": list(actor_order),
            "tiles": list(tile_order),
        }
    return CanonicalRequest(
        payload=payload,
        digest=_digest_of(payload),
        actor_order=tuple(actor_order),
        channel_order=tuple(channel_order),
        tile_order=tuple(tile_order),
        exact_names=exact_names,
    )


# ---------------------------------------------------------------------------
# translating a cached answer into an isomorphic request's vocabulary


def name_maps(
    cached: CanonicalRequest, fresh: CanonicalRequest
) -> Tuple[Dict[str, str], Dict[str, str], Dict[str, str]]:
    """(actor, channel, tile) maps from ``cached`` names to ``fresh`` ones.

    Valid only when both requests share the same canonical payload —
    the cache checks that before calling.
    """
    return (
        dict(zip(cached.actor_order, fresh.actor_order)),
        dict(zip(cached.channel_order, fresh.channel_order)),
        dict(zip(cached.tile_order, fresh.tile_order)),
    )


def _remap_name(
    name: str, actor_map: Dict[str, str], channel_map: Dict[str, str]
) -> str:
    """Remap one (possibly synthetic) binding-aware graph name.

    The binding-aware construction derives synthetic actors/channels by
    prefixing base names (``self:a1``, ``buf:d1``, ``con0-ni:d1``,
    ``syn:d1`` ...), so unknown names are remapped by peeling prefixes
    until a base actor or channel name appears.
    """
    if name in actor_map:
        return actor_map[name]
    if name in channel_map:
        return channel_map[name]
    head, sep, rest = name.partition(":")
    if sep:
        return f"{head}:{_remap_name(rest, actor_map, channel_map)}"
    return name


def remap_certificate(
    certificate: Optional[Dict[str, Any]],
    actor_map: Dict[str, str],
    channel_map: Dict[str, str],
    tile_map: Dict[str, str],
    graph_name: Optional[str] = None,
) -> Optional[Dict[str, Any]]:
    """A periodic-phase certificate renamed into the fresh vocabulary.

    Index-aligned numeric vectors (execution times, tokens, active
    firings) are positional and survive renaming untouched; only name
    lists, firing maps and per-tile schedules change.  A field this
    misses cannot corrupt an answer: the remapped certificate is always
    re-verified by :mod:`repro.verify` before anything is served.
    """
    if not isinstance(certificate, dict):
        return certificate

    def remap(name: str) -> str:
        return _remap_name(name, actor_map, channel_map)

    remapped = dict(certificate)
    if graph_name is not None:
        remapped["graph"] = graph_name
    if isinstance(certificate.get("actors"), list):
        remapped["actors"] = [remap(a) for a in certificate["actors"]]
    if isinstance(certificate.get("channels"), list):
        remapped["channels"] = [remap(c) for c in certificate["channels"]]
    if isinstance(certificate.get("firings"), dict):
        remapped["firings"] = {
            remap(actor): count
            for actor, count in certificate["firings"].items()
        }
    if isinstance(certificate.get("tiles"), list):
        remapped["tiles"] = [
            {
                **tile,
                "name": tile_map.get(tile.get("name"), tile.get("name")),
                "periodic": [remap(a) for a in tile.get("periodic", [])],
                "transient": [remap(a) for a in tile.get("transient", [])],
            }
            for tile in certificate["tiles"]
        ]
    return remapped


def remap_allocation(
    allocation: Dict[str, Any],
    application: Dict[str, Any],
    actor_map: Dict[str, str],
    channel_map: Dict[str, str],
    tile_map: Dict[str, str],
) -> Dict[str, Any]:
    """A cached allocation dict translated for an isomorphic request.

    ``application`` is the *fresh* request's application document — the
    answer is about the requester's graph, so their own application
    replaces the cached one wholesale; binding, slices, schedules,
    reservation and certificate are renamed via the maps.
    """

    def tile(name: str) -> str:
        return tile_map.get(name, name)

    def actor(name: str) -> str:
        return actor_map.get(name, name)

    remapped = dict(allocation)
    remapped["application"] = application
    remapped["binding"] = {
        actor(a): tile(t) for a, t in allocation.get("binding", {}).items()
    }
    remapped["slices"] = {
        tile(t): size for t, size in allocation.get("slices", {}).items()
    }
    remapped["schedules"] = {
        tile(t): {
            "transient": [actor(a) for a in entry.get("transient", [])],
            "periodic": [actor(a) for a in entry.get("periodic", [])],
        }
        for t, entry in allocation.get("schedules", {}).items()
    }
    remapped["reservation"] = {
        tile(t): dict(claim)
        for t, claim in allocation.get("reservation", {}).items()
    }
    remapped["certificate"] = remap_certificate(
        allocation.get("certificate"),
        actor_map,
        channel_map,
        tile_map,
        graph_name=f"{application.get('name')}-bound",
    )
    return remapped
