"""Durable job journal for the allocation service.

Every job the service accepts is persisted as one JSON file under
``<spool>/jobs/`` before the submitter gets an id back, and re-written
on every state transition, using the same atomic write-to-temp +
``os.replace`` idiom as :mod:`repro.resilience.checkpoint`.  A crash at
any instant therefore leaves each job either absent (never accepted) or
in its last durable state — a job is never half-written and never lost.

Recovery (:meth:`JobJournal.recover`) is deliberately forgiving: a
record that fails to parse is renamed to ``<file>.corrupt`` and skipped
rather than wedging the daemon, and a job found in state ``running``
(the daemon died mid-attempt) is demoted back to ``queued`` so the
worker pool re-runs it.  The engines are deterministic, so the re-run
reproduces the interrupted answer bit-identically.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import get_metrics
from repro.obs.lockcheck import make_lock
from repro.obs.log import get_logger
from repro.resilience.faults import fault_point
from repro.sdf.serialization import SerializationError

JOB_FORMAT = "repro-service-job"
#: version 2 adds per-job resource ``limits`` (``memory_mb`` /
#: ``cpu_seconds``) and the ``sandbox_verdict`` of the last
#: process-isolated attempt; version-1 records are still readable
#: (the new fields default to empty) and are upgraded in place on the
#: next write.
JOB_VERSION = 2
_READABLE_VERSIONS = (1, JOB_VERSION)

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_CERTIFIED = "certified"
STATE_DEGRADED = "degraded"
STATE_FAILED = "failed"
STATE_QUARANTINED = "quarantined"

#: states a job can never leave
TERMINAL_STATES = frozenset(
    (STATE_CERTIFIED, STATE_DEGRADED, STATE_FAILED, STATE_QUARANTINED)
)
#: every state a journal record may carry
JOB_STATES = frozenset((STATE_QUEUED, STATE_RUNNING)) | TERMINAL_STATES


class JournalError(SerializationError):
    """A job record is missing, malformed or of an unknown version."""


def new_job_record(
    job_id: str,
    request: Dict[str, Any],
    canonical: Dict[str, Any],
    max_attempts: int,
    budget: Optional[Dict[str, Any]] = None,
    limits: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A fresh ``queued`` job record carrying the full request."""
    return {
        "format": JOB_FORMAT,
        "version": JOB_VERSION,
        "id": job_id,
        "state": STATE_QUEUED,
        "attempts": 0,
        "max_attempts": max_attempts,
        "request": request,
        "canonical": canonical,
        "budget": budget or {},
        "limits": limits or {},
        "rung": None,
        "verdict": None,
        "source": None,
        "reason": None,
        "result": None,
        "sandbox_verdict": None,
    }


def validate_job_record(data: Any, source: str) -> Dict[str, Any]:
    """Envelope + shape check for one journal record."""
    if not isinstance(data, dict) or data.get("format") != JOB_FORMAT:
        raise JournalError(
            "not a repro service job record", source=source, field="format"
        )
    if data.get("version") not in _READABLE_VERSIONS:
        raise JournalError(
            f"unsupported job record version {data.get('version')!r} "
            f"(this build reads versions {_READABLE_VERSIONS})",
            source=source,
            field="version",
        )
    if data["version"] < JOB_VERSION:
        # forward-compatible read: older records gain the version-2
        # fields with their defaults and are re-stamped on next write
        data.setdefault("limits", {})
        data.setdefault("sandbox_verdict", None)
        data["version"] = JOB_VERSION
    for key in ("id", "state", "attempts", "max_attempts", "request"):
        if key not in data:
            raise JournalError(
                f"job record is missing required field {key!r}",
                source=source,
                field=key,
            )
    if data["state"] not in JOB_STATES:
        raise JournalError(
            f"unknown job state {data['state']!r}",
            source=source,
            field="state",
        )
    return data


class JobJournal:
    """Atomic per-job persistence under ``<root>/jobs/``.

    Job ids are sequential (``job-000001`` ...); the counter resumes
    past the highest id found on disk so ids stay unique across daemon
    restarts.  No wall-clock timestamps are recorded — the journal, like
    every other artefact in the stack, is bit-reproducible.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.jobs_dir = os.path.join(root, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self._lock = make_lock("repro.service.journal.JobJournal._lock")
        # the id counter is the journal's only cross-thread state
        self._next = 1 + max(  # guarded-by: _lock
            (
                int(name[4:10])
                for name in os.listdir(self.jobs_dir)
                if name.startswith("job-")
                and name.endswith(".json")
                and name[4:10].isdigit()
            ),
            default=0,
        )

    def next_id(self) -> str:
        with self._lock:
            job_id = f"job-{self._next:06d}"
            self._next += 1
        return job_id

    def path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def write(self, record: Dict[str, Any]) -> str:
        """Atomically persist one record; returns its path.

        ``service.journal.write`` fires after the temp file is durable
        but before the rename — exactly like ``checkpoint.write`` — so
        an injected fault can never leave a truncated record behind.
        """
        validate_job_record(record, source=self.path(record.get("id", "?")))
        path = self.path(record["id"])
        text = json.dumps(record, indent=2)
        temp = path + ".tmp"
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
                fault_point(
                    "service.journal.write",
                    job=record["id"],
                    state=record["state"],
                )
            os.replace(temp, path)
        except BaseException as error:
            try:
                os.unlink(temp)
            except OSError:
                pass
            get_logger().error(
                "journal.write_failed",
                job=record.get("id"),
                state=record.get("state"),
                detail=str(error),
            )
            raise
        get_metrics().counter("service.journal.writes")
        get_logger().debug(
            "journal.written", job=record["id"], state=record["state"]
        )
        return path

    def load(self, job_id: str) -> Dict[str, Any]:
        path = self.path(job_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as error:
            raise JournalError(
                f"cannot read job record: {error}", source=path
            ) from error
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise JournalError(
                f"job record is corrupted: {error}", source=path
            ) from error
        return validate_job_record(data, source=path)

    def recover(self) -> Tuple[List[Dict[str, Any]], List[str]]:
        """All readable records (id order) plus quarantined file names.

        Unreadable record files are renamed to ``<file>.corrupt`` so the
        daemon keeps starting; the rename preserves the bytes for
        post-mortem inspection.
        """
        records: List[Dict[str, Any]] = []
        corrupted: List[str] = []
        for name in sorted(os.listdir(self.jobs_dir)):
            if name.endswith(".tmp"):
                # a crash inside the atomic-rename window leaves the
                # temp file behind; the real record (old state) is
                # intact, so the partial write is safe to discard
                try:
                    os.unlink(os.path.join(self.jobs_dir, name))
                except OSError:
                    pass
                get_metrics().counter("service.journal.stale_tmp")
                continue
            if not (name.startswith("job-") and name.endswith(".json")):
                continue
            job_id = name[: -len(".json")]
            try:
                records.append(self.load(job_id))
            except JournalError as error:
                path = os.path.join(self.jobs_dir, name)
                try:
                    os.replace(path, path + ".corrupt")
                except OSError:
                    pass
                corrupted.append(name)
                get_metrics().counter("service.journal.corrupt")
                get_logger().warning(
                    "journal.corrupt_record",
                    file=name,
                    detail=str(error),
                )
        return records, corrupted
