"""``repro.service`` — fault-tolerant allocation-as-a-service.

The robustness spine on top of the paper's batch flow: a durable job
queue with supervised workers (:mod:`repro.service.service`), an
atomic-write journal (:mod:`repro.service.journal`), an
isomorphism-stable canonical hash (:mod:`repro.service.canonical`), a
verified result cache (:mod:`repro.service.cache`) and a thin stdlib
HTTP front end (:mod:`repro.service.httpd`).  See ``docs/SERVICE.md``.
"""

from repro.service.cache import CacheError, ResultCache
from repro.service.canonical import (
    CanonicalRequest,
    canonicalise_request,
    name_maps,
    remap_allocation,
    remap_certificate,
)
from repro.service.journal import (
    JOB_STATES,
    STATE_CERTIFIED,
    STATE_DEGRADED,
    STATE_FAILED,
    STATE_QUARANTINED,
    STATE_QUEUED,
    STATE_RUNNING,
    TERMINAL_STATES,
    JobJournal,
    JournalError,
)
from repro.service.sandbox import (
    SandboxFailure,
    SandboxVerdict,
    VERDICT_KINDS,
    harvest_telemetry,
)
from repro.service.service import (
    AllocationService,
    DrainingError,
    OverloadError,
    ResultRefutedError,
    RetryPolicy,
)
from repro.service.watchdog import CrashLoopDetector, Watchdog

__all__ = [
    "AllocationService",
    "CacheError",
    "CanonicalRequest",
    "DrainingError",
    "JOB_STATES",
    "JobJournal",
    "JournalError",
    "CrashLoopDetector",
    "OverloadError",
    "ResultCache",
    "ResultRefutedError",
    "RetryPolicy",
    "SandboxFailure",
    "SandboxVerdict",
    "VERDICT_KINDS",
    "Watchdog",
    "STATE_CERTIFIED",
    "STATE_DEGRADED",
    "STATE_FAILED",
    "STATE_QUARANTINED",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "TERMINAL_STATES",
    "canonicalise_request",
    "harvest_telemetry",
    "name_maps",
    "remap_allocation",
    "remap_certificate",
]
