"""Supervised allocation service: durable queue + worker pool.

:class:`AllocationService` turns the paper's batch allocation flow into
a long-running, fault-tolerant job service.  The robustness contract,
piece by piece:

* **Nothing accepted is ever lost.**  :meth:`~AllocationService.submit`
  journals the job (atomic write) *before* returning its id; every
  state transition re-journals.  :meth:`~AllocationService.start`
  replays the journal, demoting ``running`` jobs (a previous daemon
  died mid-attempt) back to ``queued``.
* **Workers are supervised.**  Each attempt runs under a fresh per-job
  :class:`~repro.resilience.budget.Budget`; an unexpected exception
  (including injected ``service.worker.run`` faults) never kills the
  worker thread — the job is retried with capped exponential backoff
  and deterministic jitter, and quarantined once ``max_attempts`` is
  reached (poison jobs cannot loop forever).
* **Budget exhaustion is not a failure.**  Deadlines fall through the
  four-rung degradation ladder (:func:`repro.resilience.policy.
  resilient_allocate`) and surface as a *degraded* — still sound —
  answer; only a fully exhausted ladder fails the job.
* **Overload is rejected, not absorbed.**  A bounded queue raises
  :class:`OverloadError` at admission (HTTP 429 / exit code 7) instead
  of letting latency grow without bound.
* **Drain is graceful.**  :meth:`~AllocationService.drain` stops
  intake, cancels the running jobs' budgets cooperatively
  (:meth:`Budget.cancel`), persists each interrupted exploration
  frontier through the existing ``--checkpoint`` machinery and parks
  the jobs as ``queued`` for the next daemon.
* **The blast radius is a child process.**  With
  ``isolation="process"`` every compute attempt runs in a dedicated
  subprocess under ``resource.setrlimit`` caps
  (:mod:`repro.service.sandbox`), heartbeat-monitored by a parent-side
  :class:`~repro.service.watchdog.Watchdog` that SIGKILLs stalled or
  limit-breaching children.  A dead child is a retryable attempt with
  a typed :class:`~repro.service.sandbox.SandboxVerdict`; a
  reproducible one quarantines with the verdict in the job record; the
  daemon itself never dies.  A quarantine storm flips ``/health`` to
  ``degraded`` (:class:`~repro.service.watchdog.CrashLoopDetector`).
* **Cached answers are re-proved.**  Hits from the
  :class:`~repro.service.cache.ResultCache` are remapped into the
  requester's vocabulary and replayed through
  :func:`repro.verify.certify_allocation` before being served; a
  refuted entry is evicted and the job recomputed.

Terminal job states: ``certified`` (exact rung, certificate checked),
``degraded`` (a lower rung or a sound-lower-bound verdict), ``failed``
(genuine infeasibility or exhausted ladder) and ``quarantined``
(poison).  Every accepted job reaches exactly one of them — the soak
test under ``pytest -m faults`` asserts this across injected crashes,
daemon restarts and drains.
"""

from __future__ import annotations

import os
import random
import threading
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Deque, Dict, List, Optional

from repro.appmodel.serialization import (
    BUNDLE_FORMAT,
    BUNDLE_VERSION,
    application_from_dict,
    bundle_to_dict,
)
from repro.arch.serialization import architecture_from_dict
from repro.core.strategy import AllocationError, ResourceAllocator
from repro.obs import get_metrics
from repro.obs.lockcheck import make_lock
from repro.obs.log import get_logger
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS
from repro.obs.telemetry import FlightRecorder, JobTelemetry
from repro.obs.trace import get_trace
from repro.resilience.budget import Budget, BudgetExceededError
from repro.resilience.faults import InjectedFaultError, fault_point
from repro.resilience.policy import DEFAULT_LADDER, resilient_allocate
from repro.sdf.serialization import SerializationError
from repro.service.cache import ResultCache
from repro.service.sandbox import SandboxFailure, run_sandboxed
from repro.service.watchdog import CrashLoopDetector, Watchdog
from repro.service.canonical import (
    CanonicalRequest,
    canonicalise_request,
    name_maps,
    remap_allocation,
)
from repro.service.journal import (
    STATE_CERTIFIED,
    STATE_DEGRADED,
    STATE_FAILED,
    STATE_QUARANTINED,
    STATE_QUEUED,
    STATE_RUNNING,
    TERMINAL_STATES,
    JobJournal,
    new_job_record,
)
from repro.verify.allocation import (
    VERDICT_SOUND_LOWER_BOUND,
    certify_allocation,
)


class OverloadError(RuntimeError):
    """The bounded job queue is full; the submission was rejected."""


class DrainingError(RuntimeError):
    """The service is draining and no longer accepts submissions."""


class ResultRefutedError(RuntimeError):
    """A freshly computed result failed independent certification.

    Treated as transient (the engines are deterministic, but the
    failure may stem from an injected fault or environmental
    corruption); retries eventually quarantine the job.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    Delays: ``base_delay * factor**(attempt-1)`` capped at
    ``max_delay``, stretched by up to ``jitter`` (relative) using a
    PRNG seeded from the job id and attempt — reproducible across
    runs, decorrelated across jobs.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.factor < 1:
            raise ValueError("factor must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    def delay(self, attempt: int, token: str) -> float:
        raw = min(
            self.max_delay,
            self.base_delay * self.factor ** max(0, attempt - 1),
        )
        if not self.jitter:
            return raw
        stretch = random.Random(f"{token}:{attempt}").random()
        return raw * (1.0 + self.jitter * stretch)


class AllocationService:
    """Durable job queue + supervised worker pool over one spool dir.

    The spool directory holds everything the service needs to survive
    a crash: ``jobs/`` (the journal), ``checkpoints/`` (interrupted
    exploration frontiers) and ``cache/`` (the verified result cache).
    """

    def __init__(
        self,
        spool: str,
        workers: int = 2,
        max_queue_depth: int = 64,
        retry: Optional[RetryPolicy] = None,
        allocator: Optional[ResourceAllocator] = None,
        ladder=DEFAULT_LADDER,
        deadline: Optional[float] = None,
        max_states: Optional[int] = None,
        verify_results: bool = True,
        isolation: str = "thread",
        memory_mb: Optional[int] = None,
        cpu_seconds: Optional[float] = None,
        stall_timeout: float = 10.0,
        heartbeat_interval: float = 0.25,
        crash_loop_window: int = 10,
        crash_loop_threshold: int = 3,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if isolation not in ("thread", "process"):
            raise ValueError(
                f"isolation must be 'thread' or 'process', got {isolation!r}"
            )
        self.spool = spool
        os.makedirs(spool, exist_ok=True)
        self.journal = JobJournal(spool)
        self.cache = ResultCache(spool)
        self.checkpoints_dir = os.path.join(spool, "checkpoints")
        os.makedirs(self.checkpoints_dir, exist_ok=True)
        self.sandbox_dir = os.path.join(spool, "sandbox")
        self.retry = retry or RetryPolicy()
        self.allocator = allocator or ResourceAllocator()
        self.ladder = ladder
        self.deadline = deadline
        self.max_states = max_states
        self.verify_results = verify_results
        self.max_queue_depth = max_queue_depth
        self.worker_count = workers
        self.isolation = isolation
        self.memory_mb = memory_mb
        self.cpu_seconds = cpu_seconds
        self.stall_timeout = stall_timeout
        self.heartbeat_interval = heartbeat_interval
        self.watchdog = Watchdog()
        #: harvested child telemetry segments, per job (timeline/trace)
        self.telemetry = JobTelemetry()
        #: post-mortem dumps on quarantine / crash-loop trip
        self.flight_recorder = FlightRecorder(
            os.path.join(spool, "flightrec")
        )
        self.crash_loop = CrashLoopDetector(
            window=crash_loop_window,
            threshold=crash_loop_threshold,
            on_trip=self._flight_dump_crash_loop,
        )
        if isolation == "process":
            os.makedirs(self.sandbox_dir, exist_ok=True)

        self._lock = make_lock(
            "repro.service.service.AllocationService._lock"
        )
        self._changed = threading.Condition(self._lock)
        self._jobs: Dict[str, Dict[str, Any]] = {}  # guarded-by: _lock
        self._queue: Deque[str] = deque()  # guarded-by: _lock
        #: perf-clock enqueue instants behind the queue-wait histogram
        self._enqueued: Dict[str, float] = {}  # guarded-by: _lock
        self._budgets: Dict[str, Budget] = {}  # guarded-by: _lock
        self._timers: Dict[str, threading.Timer] = {}  # guarded-by: _lock
        self._workers: List[threading.Thread] = []  # guarded-by: _lock
        self._accepting = False  # guarded-by: _lock
        self._draining = False  # guarded-by: _lock
        self._stopped = False  # guarded-by: _lock
        self._active = 0  # guarded-by: _lock

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "AllocationService":
        """Replay the journal and launch the worker pool."""
        records, corrupted = self.journal.recover()
        obs = get_metrics()
        tr = get_trace()
        # no worker exists yet: recovery runs lock-free, the journal
        # writes included (taking self._lock here would deadlock)
        for record in records:
            if record["state"] == STATE_RUNNING:
                # a previous daemon died mid-attempt; the attempt was
                # charged, the work was not lost — re-queue and the
                # deterministic engines reproduce it bit-identically
                record["state"] = STATE_QUEUED
                obs.counter("service.recovered")
                if tr.enabled:
                    tr.instant("service", "recovered", job=record["id"])
                try:
                    self.journal.write(record)
                except (OSError, InjectedFaultError, SerializationError):
                    obs.counter("service.journal.errors")
        with self._lock:
            for record in records:
                self._jobs[record["id"]] = record
                if record["state"] == STATE_QUEUED:
                    self._queue.append(record["id"])
                    self._enqueued[record["id"]] = perf_counter()
            self._accepting = True
            self._changed.notify_all()
        get_logger().info(
            "service.started",
            workers=self.worker_count,
            isolation=self.isolation,
            recovered=len(records),
            corrupt=len(corrupted),
        )
        if corrupted:
            obs.counter("service.journal.corrupt_on_recover", len(corrupted))
        threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            for index in range(self.worker_count)
        ]
        # registered under the lock: a concurrent drain() must see the
        # full pool before it starts joining
        with self._lock:
            self._workers.extend(threads)
        for thread in threads:
            thread.start()
        return self

    def drain(
        self, cancel_running: bool = True, timeout: float = 30.0
    ) -> Dict[str, Any]:
        """Gracefully stop: no intake, park pending, checkpoint running.

        With ``cancel_running`` the active jobs' budgets are cancelled
        cooperatively; each engine persists its exploration frontier
        (via the rung's ``--checkpoint`` machinery) and the job is
        parked as ``queued`` with its attempt refunded, ready for the
        next daemon.  Pending/backing-off jobs stay ``queued`` in the
        journal untouched.  Idempotent.
        """
        with self._lock:
            self._accepting = False
            self._draining = True
            for timer in self._timers.values():
                timer.cancel()
            self._timers.clear()
            parked = len(self._queue)
            self._queue.clear()
            self._enqueued.clear()
            cancelled = 0
            if cancel_running:
                for budget in self._budgets.values():
                    budget.cancel()
                    cancelled += 1
            self._changed.notify_all()
            deadline = timeout
            while self._active > 0 and deadline > 0:
                before = self._active
                self._changed.wait(timeout=min(0.5, deadline))
                deadline -= 0.5 if before == self._active else 0
                if self._active < before:
                    continue
            self._stopped = True
            self._changed.notify_all()
            # claim the pool under the lock so two concurrent drains
            # never join (or double-clear) the same threads
            workers = self._workers
            self._workers = []
        for thread in workers:
            thread.join(timeout=timeout)
        self.watchdog.stop()
        obs = get_metrics()
        obs.counter("service.drains")
        tr = get_trace()
        if tr.enabled:
            tr.instant(
                "service", "drain", parked=parked, cancelled=cancelled
            )
        get_logger().info(
            "service.drained", parked=parked, cancelled=cancelled
        )
        return {"parked": parked, "cancelled": cancelled}

    def close(self) -> None:
        self.drain(cancel_running=True)

    # -- submission ----------------------------------------------------
    def submit(
        self,
        application: Dict[str, Any],
        architecture: Dict[str, Any],
        deadline: Optional[float] = None,
        max_states: Optional[int] = None,
        memory_mb: Optional[int] = None,
        cpu_seconds: Optional[float] = None,
    ) -> str:
        """Accept one job; returns its id once durably journaled.

        ``application``/``architecture`` are the plain-dict request
        forms; ``memory_mb``/``cpu_seconds`` cap this job's sandboxed
        attempts (process isolation only), overriding the service-wide
        defaults.  Raises :class:`SerializationError` on malformed
        input, :class:`OverloadError` when the queue is full and
        :class:`DrainingError` after :meth:`drain` began.  The journal
        write happens *before* the id is returned: an accepted job is
        durable or the submitter gets an error — never a silent loss.
        """
        if memory_mb is not None and (
            not isinstance(memory_mb, int) or memory_mb < 1
        ):
            raise ValueError("memory_mb must be a positive integer")
        if cpu_seconds is not None and (
            not isinstance(cpu_seconds, (int, float)) or cpu_seconds <= 0
        ):
            raise ValueError("cpu_seconds must be a positive number")
        # parse eagerly: malformed requests are the submitter's fault
        # and must be rejected at admission, not poison a worker
        application_from_dict(application)
        architecture_from_dict(architecture)
        canonical = canonicalise_request(application, architecture)
        obs = get_metrics()
        with self._lock:
            if not self._accepting:
                raise DrainingError(
                    "service is draining and not accepting jobs"
                )
            depth = len(self._queue) + len(self._timers) + self._active
            if depth >= self.max_queue_depth:
                obs.counter("service.overloaded")
                tr = get_trace()
                if tr.enabled:
                    tr.instant("service", "overload", depth=depth)
                raise OverloadError(
                    f"job queue is full ({depth} jobs in flight, "
                    f"max {self.max_queue_depth}); retry later"
                )
            job_id = self.journal.next_id()
            budget = {}
            if deadline is not None or self.deadline is not None:
                budget["deadline"] = (
                    deadline if deadline is not None else self.deadline
                )
            if max_states is not None or self.max_states is not None:
                budget["max_states"] = (
                    max_states if max_states is not None else self.max_states
                )
            limits = {}
            if memory_mb is not None:
                limits["memory_mb"] = memory_mb
            if cpu_seconds is not None:
                limits["cpu_seconds"] = cpu_seconds
            record = new_job_record(
                job_id,
                request={
                    "application": application,
                    "architecture": architecture,
                },
                canonical=canonical.to_dict(),
                max_attempts=self.retry.max_attempts,
                budget=budget,
                limits=limits,
            )
            self._jobs[job_id] = record
        # strict write outside the lock: admission requires durability
        try:
            self.journal.write(record)
        except BaseException:
            with self._lock:
                self._jobs.pop(job_id, None)
            raise
        with self._lock:
            self._queue.append(job_id)
            self._enqueued[job_id] = perf_counter()
            self._changed.notify_all()
        obs.counter("service.submitted")
        tr = get_trace()
        if tr.enabled:
            tr.instant("service", "submit", job=job_id)
        get_logger().info("job.submitted", job=job_id)
        return job_id

    # -- introspection -------------------------------------------------
    def job(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            record = self._jobs.get(job_id)
            return dict(record) if record is not None else None

    def jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                {
                    "id": record["id"],
                    "state": record["state"],
                    "attempts": record["attempts"],
                    "rung": record.get("rung"),
                    "verdict": record.get("verdict"),
                    "source": record.get("source"),
                }
                for record in sorted(
                    self._jobs.values(), key=lambda r: r["id"]
                )
            ]

    def stats(self) -> Dict[str, Any]:
        # watchdog snapshot first: it takes only the watchdog's own
        # lock, so ordering keeps the lock graph acyclic
        running = self.watchdog.snapshot()
        with self._lock:
            states: Dict[str, int] = {}
            for record in self._jobs.values():
                states[record["state"]] = states.get(record["state"], 0) + 1
            return {
                "accepting": self._accepting,
                "workers": self.worker_count,
                "isolation": self.isolation,
                "health": self.crash_loop.health(),
                "crash_loop": self.crash_loop.snapshot(),
                "queue_depth": len(self._queue),
                "backing_off": len(self._timers),
                "active": self._active,
                "max_queue_depth": self.max_queue_depth,
                "jobs": states,
                "running": running,
            }

    def retry_after_hint(self) -> int:
        """Seconds an overloaded submitter should wait before retrying.

        One base backoff per job already in flight, floored at one
        second — crude, but it scales the advertised wait with the
        actual backlog instead of hard-coding a constant.
        """
        with self._lock:
            depth = len(self._queue) + len(self._timers) + self._active
        return max(1, int(depth * self.retry.base_delay + 0.999))

    def wait(self, job_id: str, timeout: float = 60.0) -> Dict[str, Any]:
        """Block until ``job_id`` reaches a terminal state."""
        with self._lock:
            remaining = timeout
            while remaining > 0:
                record = self._jobs.get(job_id)
                if record is None:
                    raise KeyError(f"unknown job {job_id!r}")
                if record["state"] in TERMINAL_STATES:
                    return dict(record)
                self._changed.wait(timeout=min(0.2, remaining))
                remaining -= 0.2
        raise TimeoutError(
            f"job {job_id!r} not terminal after {timeout:g}s"
        )

    def wait_idle(self, timeout: float = 60.0) -> None:
        """Block until no job is queued, backing off or running."""
        with self._lock:
            remaining = timeout
            while remaining > 0:
                if (
                    not self._queue
                    and not self._timers
                    and self._active == 0
                ):
                    return
                self._changed.wait(timeout=min(0.2, remaining))
                remaining -= 0.2
        raise TimeoutError(f"service not idle after {timeout:g}s")

    # -- worker pool ---------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while (
                    not self._queue
                    and not self._stopped
                    and not self._draining
                ):
                    self._changed.wait(timeout=0.5)
                if self._stopped or self._draining:
                    return
                job_id = self._queue.popleft()
                enqueued_at = self._enqueued.pop(job_id, None)
                record = self._jobs[job_id]
                record["state"] = STATE_RUNNING
                record["attempts"] += 1
                budget = Budget(
                    deadline=record.get("budget", {}).get("deadline"),
                    max_states=record.get("budget", {}).get("max_states"),
                )
                self._budgets[job_id] = budget
                self._active += 1
            if enqueued_at is not None:
                popped_at = perf_counter()
                obs = get_metrics()
                if obs.enabled:
                    obs.histogram(
                        "service.queue_wait_seconds", popped_at - enqueued_at
                    )
                tr = get_trace()
                if tr.enabled:
                    tr.complete(
                        "service",
                        "queue.wait",
                        enqueued_at,
                        popped_at,
                        job=job_id,
                    )
            try:
                self._write_forgiving(record)
                self._run_attempt(record, budget)
            finally:
                with self._lock:
                    self._budgets.pop(job_id, None)
                    self._active -= 1
                    self._changed.notify_all()

    def _run_attempt(self, record: Dict[str, Any], budget: Budget) -> None:
        tr = get_trace()
        obs = get_metrics()
        log = get_logger()
        if log.enabled:
            log = log.bind(job=record["id"], attempt=record["attempts"])
        log.info("attempt.start")
        span = tr.span(
            "service",
            "job",
            job=record["id"],
            attempt=record["attempts"],
        )
        started = perf_counter()
        try:
            with span:
                fault_point(
                    "service.worker.run",
                    job=record["id"],
                    attempt=record["attempts"],
                )
                canonical = CanonicalRequest.from_dict(record["canonical"])
                if not self._serve_from_cache(record, canonical):
                    self._compute(record, canonical, budget)
        except BudgetExceededError as error:
            if error.reason == "cancelled":
                self._park_cancelled(record)
            else:
                self._terminal(
                    record,
                    STATE_FAILED,
                    reason=f"budget exhausted: {error}",
                )
        except (AllocationError, SerializationError) as error:
            # genuine negative answers: retrying cannot change them
            self._terminal(record, STATE_FAILED, reason=str(error))
        except SandboxFailure as error:
            # the child died (oom / cpu / stall / crash) but the daemon
            # did not: retry, and carry the typed verdict so a
            # reproducible crash quarantines with its evidence attached
            self._retry_or_quarantine(
                record, error, sandbox_verdict=error.verdict.to_dict()
            )
        except Exception as error:  # supervision boundary
            self._retry_or_quarantine(record, error)
        finally:
            if obs.enabled:
                obs.histogram(
                    "service.attempt_seconds", perf_counter() - started
                )
                charged = getattr(budget, "states_charged", 0)
                if charged:
                    obs.histogram(
                        "service.states_explored",
                        float(charged),
                        buckets=DEFAULT_SIZE_BUCKETS,
                    )
            log.info(
                "attempt.end",
                state=record["state"],
                states=getattr(budget, "states_charged", 0),
            )

    # -- attempt phases ------------------------------------------------
    def _serve_from_cache(
        self, record: Dict[str, Any], canonical: CanonicalRequest
    ) -> bool:
        obs = get_metrics()
        try:
            entry = self.cache.lookup(canonical)
        except (InjectedFaultError, OSError, SerializationError, ValueError):
            obs.counter("service.cache.errors")
            entry = None
        if entry is None:
            obs.counter("service.cache.miss")
            return False
        application = record["request"]["application"]
        architecture = record["request"]["architecture"]
        try:
            cached = CanonicalRequest(
                payload=entry["payload"],
                digest=entry["digest"],
                actor_order=tuple(entry["actor_order"]),
                channel_order=tuple(entry["channel_order"]),
                tile_order=tuple(entry["tile_order"]),
            )
            actor_map, channel_map, tile_map = name_maps(cached, canonical)
            allocation = remap_allocation(
                entry["allocation"],
                application,
                actor_map,
                channel_map,
                tile_map,
            )
            bundle = {
                "format": BUNDLE_FORMAT,
                "version": BUNDLE_VERSION,
                "architecture": architecture,
                "allocations": [allocation],
            }
            report = certify_allocation(bundle)
            certified = report.certified and bool(report.verdicts)
        except Exception:
            # a broken entry must never break the job — recompute
            certified = False
            report = None
            bundle = None
        if not certified:
            obs.counter("service.cache.refuted")
            tr = get_trace()
            if tr.enabled:
                tr.instant(
                    "service",
                    "cache.refuted",
                    job=record["id"],
                    key=canonical.digest,
                )
            self.cache.evict(canonical.digest)
            return False
        obs.counter("service.cache.hit")
        tr = get_trace()
        if tr.enabled:
            tr.instant(
                "service",
                "cache.hit",
                job=record["id"],
                key=canonical.digest,
            )
        self._finish(
            record,
            bundle=bundle,
            rung=entry.get("rung"),
            verdict=report.verdicts[0].verdict,
            source="cache",
        )
        return True

    def _compute(
        self,
        record: Dict[str, Any],
        canonical: CanonicalRequest,
        budget: Budget,
    ) -> None:
        if self.isolation == "process":
            self._compute_sandboxed(record, canonical, budget)
        else:
            self._compute_in_thread(record, canonical, budget)

    def _effective_limits(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Per-job limits over the service-wide defaults, Nones dropped."""
        limits: Dict[str, Any] = {}
        if self.memory_mb is not None:
            limits["memory_mb"] = self.memory_mb
        if self.cpu_seconds is not None:
            limits["cpu_seconds"] = self.cpu_seconds
        for key, value in (record.get("limits") or {}).items():
            if value is not None:
                limits[key] = value
        return limits

    def _compute_sandboxed(
        self,
        record: Dict[str, Any],
        canonical: CanonicalRequest,
        budget: Budget,
    ) -> None:
        """One attempt in a dedicated child process (see ``sandbox.py``).

        The child runs the same pipeline as :meth:`_compute_in_thread`
        — ladder, bundle, certification — under ``setrlimit`` caps and
        watchdog supervision.  Typed negative answers come back in the
        outcome payload and are re-raised here so the ordinary
        supervision boundary routes them; a dead child surfaces as
        :class:`SandboxFailure` with its verdict.
        """
        checkpoint_path = os.path.join(
            self.checkpoints_dir, f"{record['id']}.engine.json"
        )
        payload = run_sandboxed(
            self.sandbox_dir,
            job=record["id"],
            attempt=record["attempts"],
            request=record["request"],
            budget_spec=record.get("budget", {}),
            limits=self._effective_limits(record),
            verify_results=self.verify_results,
            backend=self.allocator.backend,
            watchdog=self.watchdog,
            budget=budget,
            checkpoint_path=checkpoint_path,
            heartbeat_interval=self.heartbeat_interval,
            stall_timeout=self.stall_timeout,
            telemetry=self.telemetry,
        )
        if not payload.get("ok"):
            kind = payload.get("error")
            message = payload.get("message", "sandboxed attempt failed")
            if kind == "budget":
                raise BudgetExceededError(
                    message, reason=payload.get("reason") or "deadline"
                )
            if kind == "allocation":
                raise AllocationError(message)
            if kind == "serialization":
                raise SerializationError(message)
            if kind == "refuted":
                get_metrics().counter("service.refuted")
                raise ResultRefutedError(
                    f"computed allocation for job {record['id']!r} failed "
                    f"certification: {message}"
                )
            raise RuntimeError(
                f"sandboxed attempt returned unknown error {kind!r}: "
                f"{message}"
            )
        bundle = payload["bundle"]
        try:
            self.cache.store(
                canonical, bundle["allocations"][0], payload["rung"]
            )
        except (OSError, InjectedFaultError):
            get_metrics().counter("service.cache.write_errors")
        self._finish(
            record,
            bundle=bundle,
            rung=payload["rung"],
            verdict=payload["verdict"],
            source="computed",
            sandbox_verdict=payload.get("sandbox_verdict"),
        )

    def _compute_in_thread(
        self,
        record: Dict[str, Any],
        canonical: CanonicalRequest,
        budget: Budget,
    ) -> None:
        application = application_from_dict(
            record["request"]["application"]
        )
        architecture = architecture_from_dict(
            record["request"]["architecture"]
        )
        checkpoint_path = os.path.join(
            self.checkpoints_dir, f"{record['id']}.engine.json"
        )
        result = resilient_allocate(
            application,
            architecture,
            allocator=self.allocator,
            budget=budget,
            ladder=self.ladder,
            checkpoint_path=checkpoint_path,
            preflight=True,
        )
        bundle = bundle_to_dict(
            architecture, [result.allocation], rungs=[result.rung]
        )
        verdict = None
        if self.verify_results:
            report = certify_allocation(bundle)
            if not report.certified:
                get_metrics().counter("service.refuted")
                reasons = [
                    reason
                    for v in report.refuted
                    for reason in v.reasons
                ]
                raise ResultRefutedError(
                    f"computed allocation for job {record['id']!r} failed "
                    f"certification: {'; '.join(reasons) or 'unknown'}"
                )
            verdict = report.verdicts[0].verdict if report.verdicts else None
        try:
            self.cache.store(
                canonical, bundle["allocations"][0], result.rung
            )
        except (OSError, InjectedFaultError):
            get_metrics().counter("service.cache.write_errors")
        self._finish(
            record,
            bundle=bundle,
            rung=result.rung,
            verdict=verdict,
            source="computed",
        )

    # -- transitions ---------------------------------------------------
    def _finish(
        self,
        record: Dict[str, Any],
        bundle: Dict[str, Any],
        rung: Optional[str],
        verdict: Optional[str],
        source: str,
        sandbox_verdict: Optional[Dict[str, Any]] = None,
    ) -> None:
        degraded = (
            (rung is not None and rung != "exact")
            or verdict == VERDICT_SOUND_LOWER_BOUND
        )
        state = STATE_DEGRADED if degraded else STATE_CERTIFIED
        obs = get_metrics()
        obs.counter("service.completed")
        obs.counter(f"service.{state}")
        updates: Dict[str, Any] = {
            "state": state,
            "rung": rung,
            "verdict": verdict,
            "source": source,
            "result": bundle,
            "reason": None,
        }
        if sandbox_verdict is not None:
            updates["sandbox_verdict"] = sandbox_verdict
        get_logger().info(
            "job.finished",
            job=record["id"],
            state=state,
            rung=rung,
            verdict=verdict,
            source=source,
        )
        self.crash_loop.record(quarantined=False)
        self._transition(record, **updates)

    def _terminal(
        self,
        record: Dict[str, Any],
        state: str,
        reason: str,
        **extra: Any,
    ) -> None:
        get_metrics().counter(f"service.{state}")
        get_logger().warning(
            "job.terminal", job=record["id"], state=state, reason=reason
        )
        self.crash_loop.record(quarantined=state == STATE_QUARANTINED)
        self._transition(record, state=state, reason=reason, **extra)

    def _park_cancelled(self, record: Dict[str, Any]) -> None:
        """A drain interrupted this attempt; park it for the next daemon.

        The attempt is refunded — cancellation is the service's doing,
        not the job's — and the engine checkpoint (if the rung got far
        enough to write one) already sits in ``checkpoints/``.
        """
        get_metrics().counter("service.parked")
        self._transition(
            record,
            state=STATE_QUEUED,
            attempts=max(0, record["attempts"] - 1),
        )

    def _retry_or_quarantine(
        self,
        record: Dict[str, Any],
        error: Exception,
        sandbox_verdict: Optional[Dict[str, Any]] = None,
    ) -> None:
        reason = f"{type(error).__name__}: {error}"
        extra: Dict[str, Any] = {}
        if sandbox_verdict is not None:
            extra["sandbox_verdict"] = sandbox_verdict
        obs = get_metrics()
        tr = get_trace()
        if record["attempts"] >= record["max_attempts"]:
            obs.counter("service.quarantined_total")
            if tr.enabled:
                tr.instant(
                    "service",
                    "quarantine",
                    job=record["id"],
                    attempts=record["attempts"],
                    reason=reason,
                )
            self._flight_dump(record["id"], "quarantine", reason=reason)
            self._terminal(record, STATE_QUARANTINED, reason=reason, **extra)
            return
        delay = self.retry.delay(record["attempts"], record["id"])
        obs.counter("service.retries")
        get_logger().warning(
            "job.retry",
            job=record["id"],
            attempt=record["attempts"],
            delay_seconds=round(delay, 4),
            reason=reason,
        )
        if tr.enabled:
            tr.instant(
                "service",
                "retry",
                job=record["id"],
                attempt=record["attempts"],
                delay_seconds=delay,
                reason=reason,
            )
        self._transition(record, state=STATE_QUEUED, reason=reason, **extra)
        with self._lock:
            if self._draining or self._stopped:
                return  # stays queued in the journal for the next daemon
            timer = threading.Timer(
                delay, self._requeue_after_backoff, args=(record["id"],)
            )
            timer.daemon = True
            self._timers[record["id"]] = timer
            timer.start()

    def _requeue_after_backoff(self, job_id: str) -> None:
        with self._lock:
            self._timers.pop(job_id, None)
            if self._draining or self._stopped:
                return
            self._queue.append(job_id)
            self._enqueued[job_id] = perf_counter()
            self._changed.notify_all()

    def _transition(self, record: Dict[str, Any], **updates: Any) -> None:
        """Journal a state change *before* making it observable.

        The durable write happens first, so a waiter that sees a
        terminal state can rely on the journal already carrying it.
        Write failures are tolerated (counter ``service.journal.
        errors``): the in-memory record stays authoritative for this
        daemon, and a crash merely replays the job from an older
        journaled state — at-least-once semantics, never loss.
        """
        with self._lock:
            staged = {**record, **updates}
        try:
            self.journal.write(staged)
        except (OSError, InjectedFaultError, SerializationError):
            get_metrics().counter("service.journal.errors")
        with self._lock:
            record.update(updates)
            self._changed.notify_all()

    def _write_forgiving(self, record: Dict[str, Any]) -> None:
        """Journal the record as-is, tolerating write failures."""
        with self._lock:
            snapshot = dict(record)
        try:
            self.journal.write(snapshot)
        except (OSError, InjectedFaultError, SerializationError):
            get_metrics().counter("service.journal.errors")

    # -- telemetry -----------------------------------------------------
    def timeline(self, job_id: str) -> List[Dict[str, Any]]:
        """The job's merged event timeline (parent + harvested children).

        Empty when tracing is disabled and no child telemetry was
        harvested; the HTTP front end serves this on
        ``/jobs/<id>/timeline``.
        """
        return self.telemetry.timeline(job_id, get_trace().events())

    def job_chrome_trace(self, job_id: str) -> Dict[str, Any]:
        """One Chrome trace for the job: service + child pid lanes."""
        return self.telemetry.chrome_trace(job_id, get_trace().events())

    def _flight_dump(self, job_id: str, tag: str, **extra: Any) -> None:
        """Best-effort post-mortem bundle for a quarantine/crash-loop."""
        segments = self.telemetry.segments(job_id)
        path = self.flight_recorder.dump(
            job_id,
            tag,
            metrics=get_metrics().snapshot(),
            events=get_trace().events(),
            extra={
                "segments": [
                    {
                        "attempt": segment["attempt"],
                        "pid": segment["pid"],
                        "events": [
                            event.to_dict() for event in segment["events"]
                        ],
                        "metrics": segment["metrics"],
                    }
                    for segment in segments
                ],
                **extra,
            },
        )
        if path is not None:
            get_logger().info("flightrec.dumped", job=job_id, path=path)

    def _flight_dump_crash_loop(self) -> None:
        self._flight_dump("service", "crash-loop")
