"""Process-isolated execution of one allocation attempt.

The worker threads of :class:`~repro.service.service.AllocationService`
supervise *retries*, but a thread cannot contain a runaway search: one
state-space exploration that eats all memory or spins forever takes the
whole daemon — and every in-flight job — down with it.  This module
moves the blast radius to the OS: each attempt runs in a dedicated
child process (:mod:`repro.service.sandbox_child`) under
``resource.setrlimit`` caps, reporting liveness and progress through a
heartbeat spool file, while the parent-side
:class:`~repro.service.watchdog.Watchdog` SIGKILLs children that stall
or breach their limits.

The contract, per attempt:

* The parent writes a **request spec** (`<job>.a<n>.request.json`) and
  spawns ``python -m repro.service.sandbox_child`` on it
  (``service.sandbox.spawn`` fault point fires just before the spawn).
* The child applies its rlimits, then appends **heartbeat** lines
  (`<job>.a<n>.beat`: beat counter, ``ru_maxrss``, states charged) from
  a daemon thread while the engine runs.
* The child writes its **outcome** (`<job>.a<n>.result.json`,
  atomic) and exits 0; dedicated exit codes distinguish OOM
  (:data:`EXIT_OOM`), CPU-limit breach (:data:`EXIT_CPU`) and a
  malformed spec (:data:`EXIT_SPEC`).
* The parent classifies the exit into a typed
  :class:`SandboxVerdict` — ``completed`` / ``oom`` / ``cpu-exceeded``
  / ``stalled`` / ``crashed`` — with the exit status, last-seen peak
  RSS and beat count attached.  Non-``completed`` verdicts raise
  :class:`SandboxFailure`, which the service's supervision boundary
  turns into a retry (transient crash) or a quarantine carrying the
  verdict (reproducible crash).  The daemon itself never dies.

Everything on disk is written atomically and named per (job, attempt),
so an orphaned child from a SIGKILLed daemon can never clobber the
files of the retried attempt.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
from dataclasses import dataclass, field
from time import perf_counter, sleep
from typing import Any, Dict, Optional

from repro.exitcodes import EXIT_CPU, EXIT_OOM, EXIT_SPEC
from repro.obs import get_metrics
from repro.obs.lockcheck import make_lock
from repro.obs.log import get_logger
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS
from repro.obs.telemetry import (
    JobTelemetry,
    TelemetryError,
    capture_clock,
    events_from_dicts,
    read_telemetry,
    rebase_events,
)
from repro.obs.trace import get_trace
from repro.resilience.budget import Budget, BudgetExceededError
from repro.resilience.faults import fault_point

SANDBOX_FORMAT = "repro-sandbox-request"
SANDBOX_VERSION = 1

# EXIT_OOM / EXIT_CPU / EXIT_SPEC are defined in repro.exitcodes (the
# single exit-code registry) and re-exported here for the child and the
# existing importers.
__all__ = [
    "EXIT_CPU",
    "EXIT_OOM",
    "EXIT_SPEC",
    "SandboxFailure",
    "SandboxHandle",
    "SandboxVerdict",
    "classify_exit",
    "harvest_telemetry",
    "run_sandboxed",
    "write_request_spec",
]

VERDICT_COMPLETED = "completed"
VERDICT_OOM = "oom"
VERDICT_CPU = "cpu-exceeded"
VERDICT_STALLED = "stalled"
VERDICT_CRASHED = "crashed"

#: every kind a :class:`SandboxVerdict` may carry
VERDICT_KINDS = frozenset(
    (
        VERDICT_COMPLETED,
        VERDICT_OOM,
        VERDICT_CPU,
        VERDICT_STALLED,
        VERDICT_CRASHED,
    )
)


@dataclass(frozen=True)
class SandboxVerdict:
    """How one sandboxed attempt ended, as the parent saw it.

    ``exit_status`` is the raw :attr:`subprocess.Popen.returncode`
    (negative = killed by that signal, ``None`` = never exited);
    ``peak_rss_kb`` is the child's last self-reported ``ru_maxrss``;
    ``beats`` counts heartbeat lines observed.  ``reason`` is a short
    human-readable sentence for the job record.
    """

    kind: str
    exit_status: Optional[int] = None
    peak_rss_kb: Optional[int] = None
    beats: int = 0
    reason: str = ""

    def __post_init__(self) -> None:
        if self.kind not in VERDICT_KINDS:
            raise ValueError(f"unknown sandbox verdict kind {self.kind!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "exit_status": self.exit_status,
            "peak_rss_kb": self.peak_rss_kb,
            "beats": self.beats,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SandboxVerdict":
        return cls(
            kind=data["kind"],
            exit_status=data.get("exit_status"),
            peak_rss_kb=data.get("peak_rss_kb"),
            beats=int(data.get("beats", 0)),
            reason=data.get("reason", ""),
        )


class SandboxFailure(RuntimeError):
    """A sandboxed attempt did not complete; carries the verdict.

    Raised for every non-``completed`` verdict.  The service treats it
    like any other unexpected worker exception — retry, then quarantine
    with the verdict attached to the job record.
    """

    def __init__(self, verdict: SandboxVerdict) -> None:
        super().__init__(
            f"sandboxed attempt {verdict.kind}: {verdict.reason}"
        )
        self.verdict = verdict


def write_request_spec(
    path: str,
    job: str,
    attempt: int,
    request: Dict[str, Any],
    budget: Dict[str, Any],
    limits: Dict[str, Any],
    verify_results: bool,
    backend: str,
    heartbeat_path: str,
    result_path: str,
    checkpoint_path: Optional[str],
    heartbeat_interval: float,
    telemetry_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Atomically persist the child's request spec; returns the dict."""
    spec = {
        "format": SANDBOX_FORMAT,
        "version": SANDBOX_VERSION,
        "job": job,
        "attempt": attempt,
        "request": request,
        "budget": budget,
        "limits": limits,
        "verify_results": verify_results,
        "backend": backend,
        "heartbeat_path": heartbeat_path,
        "result_path": result_path,
        "checkpoint_path": checkpoint_path,
        "heartbeat_interval": heartbeat_interval,
        "telemetry_path": telemetry_path,
    }
    temp = path + ".tmp"
    with open(temp, "w", encoding="utf-8") as handle:
        json.dump(spec, handle, indent=2)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    return spec


def _child_env() -> Dict[str, str]:
    """The daemon's environment with ``repro`` importable by the child."""
    import repro

    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{src}{os.pathsep}{existing}" if existing else src
    )
    return env


@dataclass
class SandboxHandle:
    """One live sandboxed child, as tracked by the watchdog.

    The handle is shared between the worker thread that spawned the
    child (which blocks in :func:`run_sandboxed`) and the watchdog
    thread (which polls heartbeats and may kill); ``kill`` records the
    *first* reason only, so the eventual verdict names whichever
    enforcement fired first.
    """

    job: str
    attempt: int
    process: subprocess.Popen
    heartbeat_path: str
    memory_mb: Optional[int] = None
    deadline: Optional[float] = None
    stall_timeout: float = 10.0
    spawn_grace: float = 15.0
    spawned_at: float = field(default_factory=perf_counter)
    last_beat: Dict[str, Any] = field(default_factory=dict)  # guarded-by: _lock
    beats: int = 0  # guarded-by: _lock
    _beat_size: int = 0  # guarded-by: _lock
    _last_progress: float = field(default_factory=perf_counter)  # guarded-by: _lock
    _kill_reason: Optional[str] = None  # guarded-by: _lock
    _lock: threading.Lock = field(
        default_factory=lambda: make_lock(
            "repro.service.sandbox.SandboxHandle._lock"
        )
    )

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def kill_reason(self) -> Optional[str]:
        with self._lock:
            return self._kill_reason

    def alive(self) -> bool:
        return self.process.poll() is None

    def read_heartbeat(self) -> None:
        """Poll the beat file; update progress/rss bookkeeping.

        Called from both the watchdog thread and the worker thread (the
        final post-exit snapshot), so every bookkeeping update happens
        in one locked step — the file I/O itself stays outside the
        lock.  ``service.sandbox.heartbeat`` fires before the read so
        tests can deterministically blind the watchdog (an injected
        fault is indistinguishable from a child that stopped beating).
        """
        fault_point(
            "service.sandbox.heartbeat", job=self.job, attempt=self.attempt
        )
        with self._lock:
            known_size = self._beat_size
        try:
            size = os.path.getsize(self.heartbeat_path)
            if size == known_size:
                return
            with open(self.heartbeat_path, "r", encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError:
            return
        beat: Optional[Dict[str, Any]] = None
        for line in reversed(lines):
            try:
                beat = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail write; use the previous full line
            break
        with self._lock:
            self._beat_size = size
            self._last_progress = perf_counter()
            if beat is not None:
                self.last_beat = beat
                self.beats = max(self.beats, int(beat.get("beat", 0)) + 1)

    def watch_stats(self) -> Dict[str, Any]:
        """Locked snapshot of the heartbeat bookkeeping.

        The watchdog's status digest and the post-exit classification
        read through this instead of peeking at attributes the polling
        thread may be mid-update on.
        """
        with self._lock:
            return {
                "last_beat": dict(self.last_beat),
                "beats": self.beats,
                "last_progress": self._last_progress,
            }

    def stalled(self) -> bool:
        """No fresh heartbeat within the stall window.

        Children get ``spawn_grace`` to boot the interpreter and write
        their first beat; after that, silence for ``stall_timeout``
        seconds counts as a stall.
        """
        now = perf_counter()
        with self._lock:
            beats = self.beats
            last_progress = self._last_progress
        if beats == 0:
            return now - self.spawned_at > max(
                self.spawn_grace, self.stall_timeout
            )
        return now - last_progress > self.stall_timeout

    def over_memory(self) -> bool:
        if self.memory_mb is None:
            return False
        with self._lock:
            rss_kb = self.last_beat.get("rss_kb")
        return rss_kb is not None and rss_kb > self.memory_mb * 1024

    def over_deadline(self) -> bool:
        """Far past the cooperative deadline: the child ignored it."""
        if self.deadline is None:
            return False
        grace = max(10.0, self.deadline)
        return perf_counter() - self.spawned_at > self.deadline + grace

    def peak_rss_kb(self) -> Optional[int]:
        with self._lock:
            rss = self.last_beat.get("rss_kb")
        return int(rss) if rss is not None else None

    def kill(self, reason: str) -> None:
        """SIGKILL the child, recording the first kill reason."""
        with self._lock:
            if self._kill_reason is None:
                self._kill_reason = reason
        try:
            self.process.kill()
        except OSError:
            pass
        get_metrics().counter("sandbox.killed")
        tr = get_trace()
        if tr.enabled:
            tr.instant(
                "sandbox",
                "kill",
                job=self.job,
                attempt=self.attempt,
                reason=reason,
            )


def classify_exit(handle: SandboxHandle) -> SandboxVerdict:
    """Turn an exited child's status + kill bookkeeping into a verdict."""
    status = handle.process.returncode
    stats = handle.watch_stats()
    peak_rss = stats["last_beat"].get("rss_kb")
    peak = int(peak_rss) if peak_rss is not None else None
    beats = int(stats["beats"])
    reason = handle.kill_reason
    if reason == "stalled":
        return SandboxVerdict(
            VERDICT_STALLED,
            exit_status=status,
            peak_rss_kb=peak,
            beats=beats,
            reason=(
                f"no heartbeat for {handle.stall_timeout:g}s; "
                "killed by the watchdog"
            ),
        )
    if reason == "oom":
        return SandboxVerdict(
            VERDICT_OOM,
            exit_status=status,
            peak_rss_kb=peak,
            beats=beats,
            reason=(
                f"resident set exceeded {handle.memory_mb} MB; "
                "killed by the watchdog"
            ),
        )
    if reason == "deadline":
        return SandboxVerdict(
            VERDICT_STALLED,
            exit_status=status,
            peak_rss_kb=peak,
            beats=beats,
            reason=(
                f"ran {handle.deadline:g}s past its deadline grace; "
                "killed by the watchdog"
            ),
        )
    if status == EXIT_OOM:
        return SandboxVerdict(
            VERDICT_OOM,
            exit_status=status,
            peak_rss_kb=peak,
            beats=beats,
            reason="child hit its address-space limit (MemoryError)",
        )
    if status == EXIT_CPU or (
        status is not None and status == -int(signal.SIGXCPU)
    ):
        return SandboxVerdict(
            VERDICT_CPU,
            exit_status=status,
            peak_rss_kb=peak,
            beats=beats,
            reason="child exhausted its CPU-seconds limit",
        )
    if status == 0:
        return SandboxVerdict(
            VERDICT_COMPLETED,
            exit_status=0,
            peak_rss_kb=peak,
            beats=beats,
            reason="",
        )
    if status is not None and status < 0:
        return SandboxVerdict(
            VERDICT_CRASHED,
            exit_status=status,
            peak_rss_kb=peak,
            beats=beats,
            reason=f"child killed by signal {-status}",
        )
    return SandboxVerdict(
        VERDICT_CRASHED,
        exit_status=status,
        peak_rss_kb=peak,
        beats=beats,
        reason=f"child exited with status {status}",
    )


def harvest_telemetry(
    telemetry_path: str,
    job: str,
    attempt: int,
    telemetry: Optional[JobTelemetry] = None,
) -> bool:
    """Fold a child's telemetry sidecar into the parent's registries.

    Counters/timers/histograms merge into the active metrics registry
    under the ``child.`` namespace; trace events are rebased into this
    process's clock domain and recorded against the job in
    ``telemetry`` (when given).  Best-effort: a child that crashed
    before its first spool leaves no sidecar
    (``service.telemetry.missing``), a torn or alien file counts as
    ``service.telemetry.errors`` — neither fails the attempt.  Returns
    ``True`` when a sidecar was harvested.
    """
    obs = get_metrics()
    log = get_logger()
    try:
        payload = read_telemetry(telemetry_path)
    except TelemetryError as error:
        if os.path.exists(telemetry_path):
            obs.counter("service.telemetry.errors")
            log.warning(
                "telemetry.harvest_failed",
                job=job,
                attempt=attempt,
                detail=str(error),
            )
        else:
            obs.counter("service.telemetry.missing")
            log.debug("telemetry.missing", job=job, attempt=attempt)
        return False
    child_clock = payload["clock"]
    obs.merge_snapshot(payload["metrics"], prefix="child.")
    events = rebase_events(
        events_from_dicts(payload["trace"].get("events", [])),
        child_clock,
        capture_clock(),
    )
    if telemetry is not None:
        telemetry.record(
            job,
            attempt,
            pid=int(child_clock.get("pid", 0)),
            events=events,
            metrics=payload["metrics"],
        )
    obs.counter("service.telemetry.harvested")
    log.debug(
        "telemetry.harvested",
        job=job,
        attempt=attempt,
        events=len(events),
        dropped=payload["trace"].get("dropped", 0),
    )
    return True


def run_sandboxed(
    sandbox_dir: str,
    job: str,
    attempt: int,
    request: Dict[str, Any],
    budget_spec: Dict[str, Any],
    limits: Dict[str, Any],
    verify_results: bool,
    backend: str,
    watchdog: "Any",
    budget: Optional[Budget] = None,
    checkpoint_path: Optional[str] = None,
    heartbeat_interval: float = 0.25,
    stall_timeout: float = 10.0,
    poll_interval: float = 0.05,
    telemetry: Optional[JobTelemetry] = None,
) -> Dict[str, Any]:
    """Run one attempt in a sandboxed child; return its outcome payload.

    Blocks the calling worker thread until the child exits (or the
    watchdog / a cancelled ``budget`` kills it).  Returns the child's
    result payload (``{"ok": True, "bundle": ..., "rung": ...,
    "verdict": ...}`` or a typed ``{"ok": False, "error": ...}``) when
    the verdict is ``completed``; raises :class:`SandboxFailure` with
    the verdict otherwise, and ``BudgetExceededError(reason=
    "cancelled")`` when the parent cancelled the attempt (drain).
    """
    os.makedirs(sandbox_dir, exist_ok=True)
    stem = os.path.join(sandbox_dir, f"{job}.a{attempt}")
    request_path = stem + ".request.json"
    heartbeat_path = stem + ".beat"
    result_path = stem + ".result.json"
    telemetry_path = stem + ".telemetry.json"
    for stale in (heartbeat_path, result_path, telemetry_path):
        try:
            os.unlink(stale)
        except OSError:
            pass
    write_request_spec(
        request_path,
        job=job,
        attempt=attempt,
        request=request,
        budget=budget_spec,
        limits=limits,
        verify_results=verify_results,
        backend=backend,
        heartbeat_path=heartbeat_path,
        result_path=result_path,
        checkpoint_path=checkpoint_path,
        heartbeat_interval=heartbeat_interval,
        telemetry_path=telemetry_path,
    )
    fault_point("service.sandbox.spawn", job=job, attempt=attempt)
    obs = get_metrics()
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service.sandbox_child", request_path],
        env=_child_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    obs.counter("sandbox.spawned")
    handle = SandboxHandle(
        job=job,
        attempt=attempt,
        process=process,
        heartbeat_path=heartbeat_path,
        memory_mb=limits.get("memory_mb"),
        deadline=budget_spec.get("deadline"),
        stall_timeout=stall_timeout,
    )
    watchdog.register(handle)
    tr = get_trace()
    span = tr.span("sandbox", "attempt", job=job, attempt=attempt)
    try:
        with span:
            while process.poll() is None:
                if budget is not None and budget.cancelled:
                    handle.kill("cancelled")
                    process.wait(timeout=30)
                    break
                sleep(poll_interval)
            process.wait()
    finally:
        watchdog.unregister(handle)
    try:
        handle.read_heartbeat()  # final progress/rss snapshot
    except Exception:
        # best-effort bookkeeping: an injected heartbeat fault (or a
        # vanished beat file) must not fail an attempt that completed
        pass
    # Harvest whatever telemetry the child managed to spool — failed
    # and killed attempts especially, since their sidecar is the only
    # surviving record of where the engine's time and states went.
    try:
        harvest_telemetry(telemetry_path, job, attempt, telemetry)
    except Exception:
        get_metrics().counter("service.telemetry.errors")
    if obs.enabled:
        # the parent budget is never charged in process isolation, so
        # the states-explored histogram feeds from the child's last
        # self-reported figure instead
        states = handle.watch_stats()["last_beat"].get("states")
        if states:
            obs.histogram(
                "service.states_explored",
                float(states),
                buckets=DEFAULT_SIZE_BUCKETS,
            )
    if handle.kill_reason == "cancelled":
        raise BudgetExceededError(
            f"sandboxed attempt for {job!r} cancelled by the service",
            reason="cancelled",
        )
    verdict = classify_exit(handle)
    if tr.enabled:
        tr.instant(
            "sandbox",
            "verdict",
            job=job,
            attempt=attempt,
            kind=verdict.kind,
            exit_status=verdict.exit_status,
        )
    if verdict.kind != VERDICT_COMPLETED:
        obs.counter(f"sandbox.{verdict.kind.replace('-', '_')}")
        raise SandboxFailure(verdict)
    try:
        with open(result_path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as error:
        crashed = SandboxVerdict(
            VERDICT_CRASHED,
            exit_status=0,
            peak_rss_kb=verdict.peak_rss_kb,
            beats=verdict.beats,
            reason=f"child exited 0 but its result is unreadable: {error}",
        )
        obs.counter("sandbox.crashed")
        raise SandboxFailure(crashed) from error
    obs.counter("sandbox.completed")
    payload["sandbox_verdict"] = verdict.to_dict()
    return payload
