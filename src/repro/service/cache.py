"""Verified, content-addressed result cache for the allocation service.

Entries are keyed by the SHA-256 digest of the request's canonical form
(:mod:`repro.service.canonical`), so isomorphic requests — same graph
and platform under renamed actors/channels/tiles — share one entry.
The digest is only the index, never the proof: a lookup compares the
stored canonical payload with the requester's byte-for-byte, so a hash
collision degrades to a miss instead of a wrong answer.

The cache is deliberately untrusted.  The service replays every hit
through :func:`repro.verify.certify_allocation` against the requester's
own application and architecture before serving it; a stored answer
that fails re-verification (bit rot, a stale format, a remapping bug)
is evicted and the job recomputed from scratch.  Read and write
failures — including injected ``service.cache.read`` faults — degrade
to misses: the cache can slow the service down, never corrupt it.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from repro.obs import get_metrics
from repro.resilience.faults import fault_point
from repro.sdf.serialization import SerializationError
from repro.service.canonical import CanonicalRequest

CACHE_FORMAT = "repro-service-cache-entry"
CACHE_VERSION = 1


class CacheError(SerializationError):
    """A cache entry is malformed or of an unknown version."""


class ResultCache:
    """One JSON file per canonical digest under ``<root>/cache/``."""

    def __init__(self, root: str) -> None:
        self.cache_dir = os.path.join(root, "cache")
        os.makedirs(self.cache_dir, exist_ok=True)

    def path(self, digest: str) -> str:
        return os.path.join(self.cache_dir, f"{digest}.json")

    def lookup(
        self, canonical: CanonicalRequest
    ) -> Optional[Dict[str, Any]]:
        """The stored entry for ``canonical``, or None.

        Raises :class:`CacheError` (or the injected fault) on a
        corrupted/faulted read; the service treats every lookup failure
        as a miss.
        """
        path = self.path(canonical.digest)
        fault_point("service.cache.read", key=canonical.digest)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as error:
            raise CacheError(
                f"cannot read cache entry: {error}", source=path
            ) from error
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise CacheError(
                f"cache entry is corrupted: {error}", source=path
            ) from error
        if not isinstance(data, dict) or data.get("format") != CACHE_FORMAT:
            raise CacheError(
                "not a repro cache entry", source=path, field="format"
            )
        if data.get("version") != CACHE_VERSION:
            raise CacheError(
                f"unsupported cache entry version {data.get('version')!r}",
                source=path,
                field="version",
            )
        if data.get("payload") != canonical.payload:
            # digest collision between non-identical canonical forms:
            # astronomically unlikely, but the comparison makes serving
            # a wrong answer impossible rather than improbable
            get_metrics().counter("service.cache.collisions")
            return None
        return data

    def store(
        self,
        canonical: CanonicalRequest,
        allocation: Dict[str, Any],
        rung: Optional[str],
    ) -> str:
        """Atomically persist one answer under its canonical digest."""
        path = self.path(canonical.digest)
        entry = {
            "format": CACHE_FORMAT,
            "version": CACHE_VERSION,
            "digest": canonical.digest,
            "payload": canonical.payload,
            "actor_order": list(canonical.actor_order),
            "channel_order": list(canonical.channel_order),
            "tile_order": list(canonical.tile_order),
            "rung": rung,
            "allocation": allocation,
        }
        text = json.dumps(entry, indent=2)
        temp = path + ".tmp"
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, path)
        except BaseException:
            try:
                os.unlink(temp)
            except OSError:
                pass
            raise
        get_metrics().counter("service.cache.stores")
        return path

    def evict(self, digest: str) -> None:
        try:
            os.unlink(self.path(digest))
        except OSError:
            pass
        get_metrics().counter("service.cache.evictions")
