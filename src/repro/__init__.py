"""repro: SDFG multiprocessor resource allocation with throughput guarantees.

A faithful, pure-Python reproduction of

    S. Stuijk, T. Basten, M.C.W. Geilen, H. Corporaal,
    "Multiprocessor Resource Allocation for Throughput-Constrained
    Synchronous Dataflow Graphs", DAC 2007

including every substrate it builds on: the SDFG model and its
classical analyses, self-timed and schedule/TDMA-constrained
state-space throughput computation, the tile-based MP-SoC architecture
model, the application model with resource requirements, random
benchmark generation, and HSDF-based baselines.

Quickstart::

    from repro import (
        SDFGraph, ApplicationGraph, ResourceAllocator, CostWeights,
        mesh_architecture, ProcessorType,
    )

    proc = ProcessorType("dsp")
    graph = SDFGraph("app")
    graph.add_actor("src"); graph.add_actor("sink")
    graph.add_channel("d", "src", "sink", 2, 1)
    app = ApplicationGraph(graph, throughput_constraint=0, output_actor="sink")
    app.set_actor_requirements("src", (proc, 5, 100))
    app.set_actor_requirements("sink", (proc, 3, 100))
    app.set_channel_requirements("d", token_size=32, bandwidth=64)
    platform = mesh_architecture(2, 2, [proc])
    allocation = ResourceAllocator(weights=CostWeights.default()).allocate(
        app, platform
    )

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.sdf import (
    Actor,
    Channel,
    SDFGraph,
    repetition_vector,
    is_consistent,
    is_deadlock_free,
    sdf_to_hsdf,
    validate_graph,
)
from repro.throughput import (
    throughput,
    constrained_throughput,
    reference_throughput,
    TileConstraints,
)
from repro.throughput.constrained import StaticOrderSchedule
from repro.arch import (
    ArchitectureGraph,
    Connection,
    ProcessorType,
    Tile,
    mesh_architecture,
    benchmark_architectures,
    multimedia_architecture,
)
from repro.appmodel import (
    ActorRequirements,
    Allocation,
    ApplicationGraph,
    Binding,
    ChannelRequirements,
    SchedulingFunction,
    build_binding_aware_graph,
)
from repro.core import (
    AllocationError,
    CostWeights,
    FlowResult,
    ResourceAllocator,
    allocate_until_failure,
    bind_application,
)
from repro.exact import ExactSearchResult, allocation_cost, exact_search
from repro.generate import (
    generate_benchmark_set,
    h263_decoder,
    mp3_decoder,
    random_sdfg,
)

__version__ = "1.0.0"

__all__ = [
    "Actor",
    "Channel",
    "SDFGraph",
    "repetition_vector",
    "is_consistent",
    "is_deadlock_free",
    "sdf_to_hsdf",
    "validate_graph",
    "throughput",
    "constrained_throughput",
    "reference_throughput",
    "TileConstraints",
    "StaticOrderSchedule",
    "ArchitectureGraph",
    "Connection",
    "ProcessorType",
    "Tile",
    "mesh_architecture",
    "benchmark_architectures",
    "multimedia_architecture",
    "ActorRequirements",
    "Allocation",
    "ApplicationGraph",
    "Binding",
    "ChannelRequirements",
    "SchedulingFunction",
    "build_binding_aware_graph",
    "AllocationError",
    "CostWeights",
    "FlowResult",
    "ResourceAllocator",
    "allocate_until_failure",
    "bind_application",
    "ExactSearchResult",
    "allocation_cost",
    "exact_search",
    "generate_benchmark_set",
    "h263_decoder",
    "mp3_decoder",
    "random_sdfg",
    "__version__",
]
