"""Application model (paper Section 6) and binding-aware graphs (§8.1).

An :class:`~repro.appmodel.application.ApplicationGraph` couples an SDFG
with its resource requirements — the paper's functions ``Gamma`` (per
actor and processor type: execution time and memory) and ``Theta`` (per
channel: token size, buffer requirements, bandwidth) — and a throughput
constraint ``lambda`` on a designated output actor.

:mod:`repro.appmodel.binding_aware` turns an application plus a binding
into the binding-aware SDFG whose self-timed execution conservatively
models the mapped system (self-edges, buffer back-edges, connection
actors *c* and TDMA-alignment actors *s*).
"""

from repro.appmodel.application import (
    ActorRequirements,
    ApplicationGraph,
    ChannelRequirements,
)
from repro.appmodel.binding import Binding, SchedulingFunction, Allocation
from repro.appmodel.binding_aware import (
    BindingAwareGraph,
    build_binding_aware_graph,
    InfeasibleBindingError,
)
from repro.appmodel.example import paper_example_application, paper_example_architecture
from repro.appmodel.serialization import (
    application_to_dict,
    application_from_dict,
    application_to_json,
    application_from_json,
)

__all__ = [
    "ActorRequirements",
    "ApplicationGraph",
    "ChannelRequirements",
    "Binding",
    "SchedulingFunction",
    "Allocation",
    "BindingAwareGraph",
    "build_binding_aware_graph",
    "InfeasibleBindingError",
    "paper_example_application",
    "paper_example_architecture",
    "application_to_dict",
    "application_from_dict",
    "application_to_json",
    "application_from_json",
]
