"""Application graphs: SDFG + resource requirements + throughput constraint.

Implements Definition 5 of the paper.  ``Gamma`` maps (actor, processor
type) to (execution time, memory) — or "unsupported" — and ``Theta``
maps each channel to ``(sz, alpha_tile, alpha_src, alpha_dst, beta)``:
token size in bits, buffer requirement (in tokens) when both endpoints
share a tile, buffer requirements in the source/destination tiles when
they do not, and the bandwidth (bits per time unit) a tile-crossing
binding needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from repro.arch.tile import ProcessorType
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector
from repro.sdf.validate import validate_graph

Rate = Union[Fraction, float]


@dataclass
class ActorRequirements:
    """The paper's ``Gamma(a, .)``: per processor type (tau, mu).

    Processor types absent from ``options`` cannot run the actor
    (``Gamma = (inf, inf)`` in the paper).
    """

    options: Dict[ProcessorType, Tuple[int, int]] = field(default_factory=dict)

    def add(self, processor_type: ProcessorType, execution_time: int, memory: int) -> None:
        if execution_time < 1:
            raise ValueError("execution time must be >= 1 time unit")
        if memory < 0:
            raise ValueError("memory requirement must be >= 0")
        self.options[processor_type] = (execution_time, memory)

    def supports(self, processor_type: ProcessorType) -> bool:
        return processor_type in self.options

    def execution_time(self, processor_type: ProcessorType) -> int:
        return self.options[processor_type][0]

    def memory(self, processor_type: ProcessorType) -> int:
        return self.options[processor_type][1]

    @property
    def worst_case_execution_time(self) -> int:
        """``max over supported pt of tau`` (used by Eqn. 1 and ``l_p``)."""
        if not self.options:
            raise ValueError("actor supports no processor type")
        return max(tau for tau, _ in self.options.values())

    @property
    def supported_types(self) -> List[ProcessorType]:
        return list(self.options)


@dataclass
class ChannelRequirements:
    """The paper's ``Theta(d)``: (sz, alpha_tile, alpha_src, alpha_dst, beta)."""

    token_size: int = 1
    buffer_tile: int = 1
    buffer_src: int = 1
    buffer_dst: int = 1
    bandwidth: int = 0

    def __post_init__(self) -> None:
        if self.token_size < 0:
            raise ValueError("token size must be >= 0")
        for label in ("buffer_tile", "buffer_src", "buffer_dst", "bandwidth"):
            if getattr(self, label) < 0:
                raise ValueError(f"{label} must be >= 0")

    @property
    def crossable(self) -> bool:
        """Whether the channel may be mapped across tiles at all.

        A channel with zero bandwidth (like ``d3`` in the paper's
        Table 2) can only live inside a tile.
        """
        return self.bandwidth > 0


class ApplicationGraph:
    """An SDFG plus ``Gamma``, ``Theta`` and a throughput constraint.

    ``throughput_constraint`` is the required steady-state firing rate
    (firings per time unit) of ``output_actor``.
    """

    def __init__(
        self,
        graph: SDFGraph,
        throughput_constraint: Rate = Fraction(0),
        output_actor: Optional[str] = None,
    ) -> None:
        validate_graph(graph)
        self.graph = graph
        self.name = graph.name
        self.throughput_constraint = throughput_constraint
        # Parse origin for lint locations, stamped by the serializer
        # (None for API-built applications).  Keys are
        # ("application", field) / ("requirements", actor-or-channel).
        self.source: Optional[str] = None
        self.provenance: Dict[Tuple[str, str], str] = {}
        self.output_actor = output_actor or graph.actor_names[-1]
        if not graph.has_actor(self.output_actor):
            raise KeyError(f"unknown output actor {self.output_actor!r}")
        self._gamma = repetition_vector(graph)
        self.actor_requirements: Dict[str, ActorRequirements] = {
            a: ActorRequirements() for a in graph.actor_names
        }
        # Default buffers hold one iteration of traffic plus the initial
        # tokens: large enough that no binding can deadlock on buffer
        # capacity.  Callers with real memory budgets override them.
        self.channel_requirements: Dict[str, ChannelRequirements] = {}
        for channel in graph.channels:
            default_buffer = (
                channel.production * self._gamma[channel.src] + channel.tokens
            )
            self.channel_requirements[channel.name] = ChannelRequirements(
                buffer_tile=default_buffer,
                buffer_src=default_buffer,
                buffer_dst=default_buffer,
            )

    # -- declaration helpers -------------------------------------------
    def set_actor_requirements(
        self,
        actor: str,
        *options: Tuple[ProcessorType, int, int],
    ) -> None:
        """Declare supported processor types for ``actor``.

        Each option is ``(processor_type, execution_time, memory)``.
        """
        if not self.graph.has_actor(actor):
            raise KeyError(f"unknown actor {actor!r}")
        requirements = ActorRequirements()
        for processor_type, execution_time, memory in options:
            requirements.add(processor_type, execution_time, memory)
        self.actor_requirements[actor] = requirements

    def set_channel_requirements(
        self,
        channel: str,
        token_size: int = 1,
        buffer_tile: Optional[int] = None,
        buffer_src: Optional[int] = None,
        buffer_dst: Optional[int] = None,
        bandwidth: int = 0,
    ) -> None:
        """Declare ``Theta`` for one channel.

        Buffer sizes left as ``None`` keep the liveness-safe default of
        one iteration of traffic plus the initial tokens.
        """
        if not self.graph.has_channel(channel):
            raise KeyError(f"unknown channel {channel!r}")
        edge = self.graph.channel(channel)
        default_buffer = edge.production * self._gamma[edge.src] + edge.tokens
        self.channel_requirements[channel] = ChannelRequirements(
            token_size,
            default_buffer if buffer_tile is None else buffer_tile,
            default_buffer if buffer_src is None else buffer_src,
            default_buffer if buffer_dst is None else buffer_dst,
            bandwidth,
        )

    # -- queries ----------------------------------------------------------
    @property
    def gamma(self) -> Dict[str, int]:
        """The repetition vector of the application SDFG."""
        return dict(self._gamma)

    def requirements(self, actor: str) -> ActorRequirements:
        return self.actor_requirements[actor]

    def channel(self, channel: str) -> ChannelRequirements:
        return self.channel_requirements[channel]

    def check_complete(self) -> None:
        """Raise when any actor supports no processor type.

        Called by the allocator before binding; an unsatisfiable actor
        makes the problem trivially infeasible.
        """
        missing = [
            a
            for a, requirements in self.actor_requirements.items()
            if not requirements.options
        ]
        if missing:
            raise ValueError(
                f"application {self.name!r}: actors with no supported "
                f"processor type: {missing}"
            )

    def total_worst_case_work(self) -> int:
        """``sum over a of gamma(a) * tau_max(a)`` (denominator of ``l_p``)."""
        return sum(
            self._gamma[a] * self.actor_requirements[a].worst_case_execution_time
            for a in self.graph.actor_names
        )

    def copy(self) -> "ApplicationGraph":
        """An independent copy (graph, requirements and constraint).

        Useful before operations that rewrite ``Theta`` in place, such
        as :func:`repro.extensions.buffer_sizing.minimise_buffers`.
        """
        clone = ApplicationGraph(
            self.graph.copy(),
            throughput_constraint=self.throughput_constraint,
            output_actor=self.output_actor,
        )
        clone.source = self.source
        clone.provenance = dict(self.provenance)
        for actor, requirements in self.actor_requirements.items():
            clone.actor_requirements[actor] = ActorRequirements(
                dict(requirements.options)
            )
        for channel, requirements in self.channel_requirements.items():
            clone.channel_requirements[channel] = ChannelRequirements(
                requirements.token_size,
                requirements.buffer_tile,
                requirements.buffer_src,
                requirements.buffer_dst,
                requirements.bandwidth,
            )
        return clone

    def __repr__(self) -> str:
        return (
            f"ApplicationGraph({self.name!r}, actors={len(self.graph)}, "
            f"lambda={self.throughput_constraint})"
        )
