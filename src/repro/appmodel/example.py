"""The paper's running example (Fig. 2, Fig. 3, Tables 1 and 2).

The example platform has two tiles connected in both directions with
latency 1; the example application has three actors in a chain
``a1 -d1-> a2 -d2-> a3`` plus a self-edge ``d3`` on ``a1`` carrying one
initial token (``d3``'s zero alpha_src/alpha_dst/beta in Table 2 show it
can never cross tiles, which identifies it as the self-edge).

The figure defining the edge rates is not reproducible from the text;
we use rate-1 edges, which is consistent with every number the text
states (see DESIGN.md "Known deltas").  The Section 8 discussion binds
``a1, a2`` to ``t1`` and ``a3`` to ``t2``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Tuple

from repro.appmodel.application import ApplicationGraph
from repro.appmodel.binding import Binding
from repro.arch.architecture import ArchitectureGraph
from repro.arch.tile import ProcessorType, Tile
from repro.sdf.graph import SDFGraph

PROCESSOR_P1 = ProcessorType("p1")
PROCESSOR_P2 = ProcessorType("p2")


def paper_example_architecture() -> ArchitectureGraph:
    """The two-tile platform of Fig. 2 / Table 1."""
    architecture = ArchitectureGraph("paper-example-platform")
    architecture.add_tile(
        Tile(
            name="t1",
            processor_type=PROCESSOR_P1,
            wheel=10,
            memory=700,
            max_connections=5,
            bandwidth_in=100,
            bandwidth_out=100,
        )
    )
    architecture.add_tile(
        Tile(
            name="t2",
            processor_type=PROCESSOR_P2,
            wheel=10,
            memory=500,
            max_connections=7,
            bandwidth_in=100,
            bandwidth_out=100,
        )
    )
    architecture.add_connection("t1", "t2", 1)  # c1
    architecture.add_connection("t2", "t1", 1)  # c2
    return architecture


def paper_example_application(
    throughput_constraint: Fraction = Fraction(1, 40),
) -> ApplicationGraph:
    """The application of Fig. 3 / Table 2 with output actor ``a3``.

    The default throughput constraint is loose enough for the example
    platform; callers exploring the slice binary search can tighten it.
    """
    graph = SDFGraph("paper-example-app")
    graph.add_actor("a1", 1)
    graph.add_actor("a2", 1)
    graph.add_actor("a3", 2)
    graph.add_channel("d1", "a1", "a2")
    graph.add_channel("d2", "a2", "a3")
    graph.add_channel("d3", "a1", "a1", tokens=1)

    application = ApplicationGraph(
        graph, throughput_constraint=throughput_constraint, output_actor="a3"
    )
    application.set_actor_requirements(
        "a1", (PROCESSOR_P1, 1, 10), (PROCESSOR_P2, 4, 15)
    )
    application.set_actor_requirements(
        "a2", (PROCESSOR_P1, 1, 7), (PROCESSOR_P2, 7, 19)
    )
    application.set_actor_requirements(
        "a3", (PROCESSOR_P1, 3, 13), (PROCESSOR_P2, 2, 10)
    )
    application.set_channel_requirements(
        "d1", token_size=7, buffer_tile=1, buffer_src=2, buffer_dst=2, bandwidth=100
    )
    application.set_channel_requirements(
        "d2", token_size=100, buffer_tile=2, buffer_src=2, buffer_dst=2, bandwidth=10
    )
    application.set_channel_requirements(
        "d3", token_size=1, buffer_tile=1, buffer_src=0, buffer_dst=0, bandwidth=0
    )
    return application


def paper_example_binding() -> Binding:
    """The Section 8 binding: ``a1, a2 -> t1`` and ``a3 -> t2``."""
    binding = Binding()
    binding.bind("a1", "t1")
    binding.bind("a2", "t1")
    binding.bind("a3", "t2")
    return binding


def paper_example() -> Tuple[ApplicationGraph, ArchitectureGraph, Binding]:
    """Application, platform and Section 8 binding in one call."""
    return (
        paper_example_application(),
        paper_example_architecture(),
        paper_example_binding(),
    )
