"""Binding-aware SDFG construction (paper Section 8.1).

Given an application graph, an architecture graph and a binding, the
binding-aware SDFG models every binding decision so that its self-timed
execution conservatively predicts the mapped system's timing:

* every bound actor gets the execution time of its tile's processor
  type and a self-edge with one initial token (a processor runs one
  instance of an actor at a time);
* a channel bound inside a tile keeps its edge and gains a reverse edge
  with ``alpha_tile - Tok(d)`` initial tokens, limiting its storage to
  the declared buffer;
* a channel crossing tiles is replaced by the path
  ``a -(p,1)-> c -(1,1)-> s -(1,q)-> b`` where the *connection actor*
  ``c`` (execution time ``L + ceil(sz/beta)``, self-edge) sends tokens
  sequentially over the connection and the *alignment actor* ``s``
  (execution time ``w_dst - omega_dst``) makes the analysis conservative
  with respect to the unknown relative TDMA wheel positions.  Reverse
  edges ``c -> a`` (``alpha_src`` tokens) and ``b -> c``
  (``alpha_dst - Tok(d)`` tokens) bound the source and destination
  buffers; the channel's initial tokens start in the destination buffer.

The slice sizes ``omega`` only affect the alignment actors, so the same
:class:`BindingAwareGraph` is re-used across the slice-allocation binary
search via :meth:`BindingAwareGraph.update_slices`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.appmodel.application import ApplicationGraph
from repro.appmodel.binding import Binding, SchedulingFunction
from repro.arch.architecture import ArchitectureGraph
from repro.sdf.graph import SDFGraph
from repro.throughput.constrained import StaticOrderSchedule, TileConstraints


class InfeasibleBindingError(ValueError):
    """Raised when a binding cannot be modelled (unsupported processor,
    missing connection, buffer smaller than the initial tokens, ...)."""


def _ceil_div(numerator: int, denominator: int) -> int:
    return -(-numerator // denominator)


@dataclass(frozen=True)
class ConnectionStage:
    """One dataflow actor of a connection model's pipeline.

    ``sequential`` adds a self-edge with one token (tokens traverse the
    stage one at a time, like the paper's actor *c*).
    """

    suffix: str
    execution_time: int
    sequential: bool = True


class ConnectionModel:
    """Turns a tile-crossing channel into a pipeline of actors (§8.1).

    The paper models a connection with a single actor *c* of execution
    time ``L + ceil(sz/beta)`` and notes it "can be replaced with a more
    detailed model if available" (e.g. the NoC model of its ref [14]).
    Subclasses override :meth:`stages`; the returned actors are chained
    single-rate between the producer and the TDMA-alignment actor *s*.
    """

    def stages(self, connection, requirements) -> List[ConnectionStage]:
        raise NotImplementedError


class SimpleConnectionModel(ConnectionModel):
    """The paper's default: one sequential actor of time ``L + ceil(sz/beta)``."""

    def stages(self, connection, requirements) -> List[ConnectionStage]:
        return [
            ConnectionStage(
                suffix="",
                execution_time=connection.latency
                + _ceil_div(requirements.token_size, requirements.bandwidth),
                sequential=True,
            )
        ]


@dataclass
class BindingAwareGraph:
    """A binding-aware SDFG plus the bookkeeping to keep it in sync."""

    graph: SDFGraph
    application: ApplicationGraph
    binding: Binding
    architecture: ArchitectureGraph
    #: application channel name -> connection actor name (cross-tile only)
    connection_actors: Dict[str, str] = field(default_factory=dict)
    #: application channel name -> alignment actor name (cross-tile only)
    sync_actors: Dict[str, str] = field(default_factory=dict)
    #: alignment actor name -> destination tile name
    _sync_tile: Dict[str, str] = field(default_factory=dict)
    #: current slice assumption per tile
    slices: Dict[str, int] = field(default_factory=dict)

    @property
    def cross_channels(self) -> List[str]:
        """Application channels bound across tiles."""
        return list(self.connection_actors)

    def update_slices(self, slices: Dict[str, int]) -> None:
        """Re-target the alignment actors to new slice sizes.

        ``Y(s) = w_dst - omega_dst``; nothing else in the graph depends
        on the slice allocation, which is what makes the binary search
        of §9.3 cheap.
        """
        self.slices.update(slices)
        for sync_actor, tile_name in self._sync_tile.items():
            tile = self.architecture.tile(tile_name)
            omega = self.slices[tile_name]
            if not 0 <= omega <= tile.wheel:
                raise ValueError(
                    f"slice {omega} outside wheel of tile {tile_name!r}"
                )
            self.graph.actor(sync_actor).execution_time = tile.wheel - omega

    def tile_constraints(
        self, scheduling: SchedulingFunction
    ) -> List[TileConstraints]:
        """Constraints for the §8.2 engine from a scheduling function.

        Also synchronises the alignment actors with the scheduling
        function's slices.
        """
        self.update_slices(dict(scheduling.slices))
        constraints = []
        for tile_name in self.binding.used_tiles():
            tile = self.architecture.tile(tile_name)
            constraints.append(
                TileConstraints(
                    name=tile_name,
                    wheel=tile.wheel,
                    slice_size=scheduling.slice_of(tile_name),
                    schedule=scheduling.schedule_of(tile_name),
                )
            )
        return constraints

    def default_tile_constraints(self) -> List[TileConstraints]:
        """Constraints using current slices and round-robin-free schedules.

        Used before static-order schedules exist: every tile gets the
        trivial schedule enumerating its actors in binding order,
        repeated according to the repetition vector.  Mostly useful for
        diagnostics; the strategy builds real schedules in §9.2.
        """
        gamma = self.application.gamma
        constraints = []
        for tile_name in self.binding.used_tiles():
            tile = self.architecture.tile(tile_name)
            entries = []
            for actor in self.binding.actors_on(tile_name):
                entries.extend([actor] * gamma[actor])
            constraints.append(
                TileConstraints(
                    name=tile_name,
                    wheel=tile.wheel,
                    slice_size=self.slices[tile_name],
                    schedule=StaticOrderSchedule(periodic=tuple(entries)),
                )
            )
        return constraints


def build_binding_aware_graph(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    binding: Binding,
    slices: Optional[Dict[str, int]] = None,
    connection_model: Optional[ConnectionModel] = None,
) -> BindingAwareGraph:
    """Construct the binding-aware SDFG for ``binding``.

    ``slices`` fixes the TDMA slice assumed per used tile; the default
    is 50% of the remaining wheel (the assumption of §9.2's scheduler).
    ``connection_model`` replaces the paper's single-actor connection
    model (see :class:`ConnectionModel`); the default is
    :class:`SimpleConnectionModel`.  Raises
    :class:`InfeasibleBindingError` for structurally impossible
    bindings.
    """
    model = connection_model or SimpleConnectionModel()
    app_graph = application.graph
    for actor in app_graph.actor_names:
        if not binding.is_bound(actor):
            raise InfeasibleBindingError(f"actor {actor!r} is not bound")
        tile_name = binding.tile_of(actor)
        if not architecture.has_tile(tile_name):
            raise InfeasibleBindingError(f"unknown tile {tile_name!r}")
        tile = architecture.tile(tile_name)
        if not application.requirements(actor).supports(tile.processor_type):
            raise InfeasibleBindingError(
                f"actor {actor!r} cannot run on processor type "
                f"{tile.processor_type.name!r} of tile {tile_name!r}"
            )

    if slices is None:
        slices = {}
        for tile_name in binding.used_tiles():
            tile = architecture.tile(tile_name)
            slices[tile_name] = max(tile.wheel_remaining // 2, 1)

    graph = SDFGraph(f"{application.name}-bound")
    result = BindingAwareGraph(
        graph=graph,
        application=application,
        binding=binding,
        architecture=architecture,
        slices=dict(slices),
    )

    for actor in app_graph.actors:
        tile = architecture.tile(binding.tile_of(actor.name))
        execution_time = application.requirements(actor.name).execution_time(
            tile.processor_type
        )
        graph.add_actor(actor.name, execution_time)
        graph.add_channel(f"self:{actor.name}", actor.name, actor.name, 1, 1, 1)

    for channel in app_graph.channels:
        requirements = application.channel(channel.name)
        src_tile = binding.tile_of(channel.src)
        dst_tile = binding.tile_of(channel.dst)
        if channel.is_self_loop or src_tile == dst_tile:
            if requirements.buffer_tile < channel.tokens:
                raise InfeasibleBindingError(
                    f"channel {channel.name!r}: alpha_tile "
                    f"({requirements.buffer_tile}) smaller than its "
                    f"initial tokens ({channel.tokens})"
                )
            graph.add_channel(
                channel.name,
                channel.src,
                channel.dst,
                channel.production,
                channel.consumption,
                channel.tokens,
            )
            if not channel.is_self_loop:
                graph.add_channel(
                    f"buf:{channel.name}",
                    channel.dst,
                    channel.src,
                    channel.consumption,
                    channel.production,
                    requirements.buffer_tile - channel.tokens,
                )
            continue

        # -- channel crosses tiles -------------------------------------
        if not requirements.crossable:
            raise InfeasibleBindingError(
                f"channel {channel.name!r} has no bandwidth requirement "
                f"(beta = 0) and cannot be bound across tiles "
                f"({src_tile!r} -> {dst_tile!r})"
            )
        connection = architecture.connection(src_tile, dst_tile)
        if connection is None:
            raise InfeasibleBindingError(
                f"no connection from tile {src_tile!r} to {dst_tile!r} "
                f"for channel {channel.name!r}"
            )
        if requirements.buffer_dst < channel.tokens:
            raise InfeasibleBindingError(
                f"channel {channel.name!r}: alpha_dst "
                f"({requirements.buffer_dst}) smaller than its initial "
                f"tokens ({channel.tokens})"
            )
        stages = model.stages(connection, requirements)
        if not stages:
            raise InfeasibleBindingError(
                f"connection model produced no stages for {channel.name!r}"
            )
        stage_names = []
        for index, stage in enumerate(stages):
            if stage.execution_time < 0:
                raise InfeasibleBindingError(
                    f"connection model stage {stage.suffix!r} of "
                    f"{channel.name!r} has negative execution time"
                )
            name = (
                f"con:{channel.name}"
                if index == 0
                else f"con{index}{stage.suffix and '-' + stage.suffix}:"
                f"{channel.name}"
            )
            graph.add_actor(name, stage.execution_time)
            if stage.sequential:
                graph.add_channel(f"self:{name}", name, name, 1, 1, 1)
            stage_names.append(name)
        sync_actor = f"syn:{channel.name}"
        dst_wheel = architecture.tile(dst_tile).wheel
        graph.add_actor(sync_actor, dst_wheel - slices[dst_tile])

        graph.add_channel(
            f"src:{channel.name}",
            channel.src,
            stage_names[0],
            channel.production,
            1,
            0,
        )
        for index in range(len(stage_names) - 1):
            graph.add_channel(
                f"hop{index}:{channel.name}",
                stage_names[index],
                stage_names[index + 1],
                1,
                1,
                0,
            )
        graph.add_channel(
            f"lat:{channel.name}", stage_names[-1], sync_actor, 1, 1, 0
        )
        graph.add_channel(
            f"dst:{channel.name}",
            sync_actor,
            channel.dst,
            1,
            channel.consumption,
            channel.tokens,
        )
        graph.add_channel(
            f"buf_src:{channel.name}",
            stage_names[0],
            channel.src,
            1,
            channel.production,
            requirements.buffer_src,
        )
        graph.add_channel(
            f"buf_dst:{channel.name}",
            channel.dst,
            stage_names[0],
            channel.consumption,
            1,
            requirements.buffer_dst - channel.tokens,
        )
        result.connection_actors[channel.name] = stage_names[0]
        result.sync_actors[channel.name] = sync_actor
        result._sync_tile[sync_actor] = dst_tile

    return result
