"""JSON serialisation of application graphs (SDFG + Gamma + Theta + lambda).

Lets users define complete applications in files and run the allocator
from the command line (``repro-alloc allocate-file``).  Throughput
constraints are stored exactly as ``"numerator/denominator"`` strings,
so guarantees survive the round trip bit-for-bit.

Schema::

    {
      "name": "...",
      "graph": { ... repro.sdf.serialization dialect ... },
      "throughput_constraint": "1/40",
      "output_actor": "a3",
      "actors": {
        "a1": {"p1": {"execution_time": 1, "memory": 10}, ...},
        ...
      },
      "channels": {
        "d1": {"token_size": 7, "buffer_tile": 1, "buffer_src": 2,
                "buffer_dst": 2, "bandwidth": 100},
        ...
      }
    }
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict, Optional

from repro.appmodel.application import ApplicationGraph
from repro.arch.tile import ProcessorType
from repro.sdf.serialization import (
    SerializationError,
    graph_from_dict,
    graph_to_dict,
)


def application_to_dict(application: ApplicationGraph) -> Dict[str, Any]:
    """A JSON-serialisable dictionary capturing the full application."""
    actors: Dict[str, Any] = {}
    for name, requirements in application.actor_requirements.items():
        actors[name] = {
            processor.name: {"execution_time": tau, "memory": mu}
            for processor, (tau, mu) in requirements.options.items()
        }
    channels: Dict[str, Any] = {}
    for name, theta in application.channel_requirements.items():
        channels[name] = {
            "token_size": theta.token_size,
            "buffer_tile": theta.buffer_tile,
            "buffer_src": theta.buffer_src,
            "buffer_dst": theta.buffer_dst,
            "bandwidth": theta.bandwidth,
        }
    return {
        "name": application.name,
        "graph": graph_to_dict(application.graph),
        "throughput_constraint": str(
            Fraction(application.throughput_constraint)
        ),
        "output_actor": application.output_actor,
        "actors": actors,
        "channels": channels,
    }


def application_from_dict(
    data: Dict[str, Any], source: Optional[str] = None
) -> ApplicationGraph:
    """Inverse of :func:`application_to_dict`.

    Raises :class:`~repro.sdf.serialization.SerializationError` (with
    file/field context) for malformed documents.
    """
    if not isinstance(data, dict):
        raise SerializationError(
            f"application document must be a JSON object, "
            f"got {type(data).__name__}",
            source=source,
        )
    if "graph" not in data:
        raise SerializationError(
            "application document missing 'graph'",
            source=source,
            field="graph",
        )
    graph = graph_from_dict(data["graph"], source=source)
    try:
        constraint = Fraction(data.get("throughput_constraint", "0"))
    except (TypeError, ValueError, ZeroDivisionError) as error:
        raise SerializationError(
            f"bad throughput constraint: {error}",
            source=source,
            field="throughput_constraint",
        ) from error
    application = ApplicationGraph(
        graph,
        throughput_constraint=constraint,
        output_actor=data.get("output_actor"),
    )
    for actor, options in data.get("actors", {}).items():
        try:
            application.set_actor_requirements(
                actor,
                *(
                    (
                        ProcessorType(processor),
                        int(entry["execution_time"]),
                        int(entry.get("memory", 0)),
                    )
                    for processor, entry in options.items()
                ),
            )
        except KeyError as error:
            raise SerializationError(
                f"actor requirements missing key {error}",
                source=source,
                field=f"actors[{actor}]",
            ) from error
        except (TypeError, ValueError) as error:
            raise SerializationError(
                f"bad actor requirements: {error}",
                source=source,
                field=f"actors[{actor}]",
            ) from error
    for channel, entry in data.get("channels", {}).items():
        try:
            application.set_channel_requirements(
                channel,
                token_size=int(entry.get("token_size", 1)),
                buffer_tile=entry.get("buffer_tile"),
                buffer_src=entry.get("buffer_src"),
                buffer_dst=entry.get("buffer_dst"),
                bandwidth=int(entry.get("bandwidth", 0)),
            )
        except (KeyError, AttributeError, TypeError, ValueError) as error:
            raise SerializationError(
                f"bad channel requirements: {error}",
                source=source,
                field=f"channels[{channel}]",
            ) from error
    return application


def application_to_json(application: ApplicationGraph, indent: int = 2) -> str:
    return json.dumps(application_to_dict(application), indent=indent)


def application_from_json(
    text: str, source: Optional[str] = None
) -> ApplicationGraph:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(
            f"invalid JSON: {error}", source=source
        ) from error
    return application_from_dict(data, source=source)
