"""JSON serialisation of application graphs (SDFG + Gamma + Theta + lambda).

Lets users define complete applications in files and run the allocator
from the command line (``repro-alloc allocate-file``).  Throughput
constraints are stored exactly as ``"numerator/denominator"`` strings,
so guarantees survive the round trip bit-for-bit.

Schema::

    {
      "name": "...",
      "graph": { ... repro.sdf.serialization dialect ... },
      "throughput_constraint": "1/40",
      "output_actor": "a3",
      "actors": {
        "a1": {"p1": {"execution_time": 1, "memory": 10}, ...},
        ...
      },
      "channels": {
        "d1": {"token_size": 7, "buffer_tile": 1, "buffer_src": 2,
                "buffer_dst": 2, "bandwidth": 100},
        ...
      }
    }
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict, Optional

from repro.appmodel.application import ApplicationGraph
from repro.arch.tile import ProcessorType
from repro.sdf.serialization import (
    SerializationError,
    graph_from_dict,
    graph_to_dict,
)


def application_to_dict(application: ApplicationGraph) -> Dict[str, Any]:
    """A JSON-serialisable dictionary capturing the full application."""
    actors: Dict[str, Any] = {}
    for name, requirements in application.actor_requirements.items():
        actors[name] = {
            processor.name: {"execution_time": tau, "memory": mu}
            for processor, (tau, mu) in requirements.options.items()
        }
    channels: Dict[str, Any] = {}
    for name, theta in application.channel_requirements.items():
        channels[name] = {
            "token_size": theta.token_size,
            "buffer_tile": theta.buffer_tile,
            "buffer_src": theta.buffer_src,
            "buffer_dst": theta.buffer_dst,
            "bandwidth": theta.bandwidth,
        }
    return {
        "name": application.name,
        "graph": graph_to_dict(application.graph),
        "throughput_constraint": str(
            Fraction(application.throughput_constraint)
        ),
        "output_actor": application.output_actor,
        "actors": actors,
        "channels": channels,
    }


def application_from_dict(
    data: Dict[str, Any], source: Optional[str] = None
) -> ApplicationGraph:
    """Inverse of :func:`application_to_dict`.

    Raises :class:`~repro.sdf.serialization.SerializationError` (with
    file/field context) for malformed documents.
    """
    if not isinstance(data, dict):
        raise SerializationError(
            f"application document must be a JSON object, "
            f"got {type(data).__name__}",
            source=source,
        )
    if "graph" not in data:
        raise SerializationError(
            "application document missing 'graph'",
            source=source,
            field="graph",
        )
    graph = graph_from_dict(data["graph"], source=source)
    try:
        constraint = Fraction(data.get("throughput_constraint", "0"))
    except (TypeError, ValueError, ZeroDivisionError) as error:
        raise SerializationError(
            f"bad throughput constraint: {error}",
            source=source,
            field="throughput_constraint",
        ) from error
    application = ApplicationGraph(
        graph,
        throughput_constraint=constraint,
        output_actor=data.get("output_actor"),
    )
    application.source = source
    application.provenance[("application", "throughput_constraint")] = (
        "throughput_constraint"
    )
    for actor, options in data.get("actors", {}).items():
        try:
            application.set_actor_requirements(
                actor,
                *(
                    (
                        ProcessorType(processor),
                        int(entry["execution_time"]),
                        int(entry.get("memory", 0)),
                    )
                    for processor, entry in options.items()
                ),
            )
        except KeyError as error:
            raise SerializationError(
                f"actor requirements missing key {error}",
                source=source,
                field=f"actors[{actor}]",
            ) from error
        except (TypeError, ValueError) as error:
            raise SerializationError(
                f"bad actor requirements: {error}",
                source=source,
                field=f"actors[{actor}]",
            ) from error
        application.provenance[("requirements", actor)] = f"actors[{actor}]"
    for channel, entry in data.get("channels", {}).items():
        try:
            application.set_channel_requirements(
                channel,
                token_size=int(entry.get("token_size", 1)),
                buffer_tile=entry.get("buffer_tile"),
                buffer_src=entry.get("buffer_src"),
                buffer_dst=entry.get("buffer_dst"),
                bandwidth=int(entry.get("bandwidth", 0)),
            )
        except (KeyError, AttributeError, TypeError, ValueError) as error:
            raise SerializationError(
                f"bad channel requirements: {error}",
                source=source,
                field=f"channels[{channel}]",
            ) from error
        application.provenance[("requirements", channel)] = (
            f"channels[{channel}]"
        )
    return application


def application_to_json(application: ApplicationGraph, indent: int = 2) -> str:
    return json.dumps(application_to_dict(application), indent=indent)


def application_from_json(
    text: str, source: Optional[str] = None
) -> ApplicationGraph:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(
            f"invalid JSON: {error}", source=source
        ) from error
    return application_from_dict(data, source=source)


# ---------------------------------------------------------------------------
# Allocations and allocation bundles (the unit `repro.verify` certifies)

BUNDLE_FORMAT = "repro-allocation-bundle"
BUNDLE_VERSION = 1


def allocation_to_dict(
    allocation: "Allocation", rung: Optional[str] = None
) -> Dict[str, Any]:
    """One allocation (plus the ladder rung that produced it) as a dict."""
    return {
        "application": application_to_dict(allocation.application),
        "binding": dict(allocation.binding.assignment),
        "slices": dict(allocation.scheduling.slices),
        "schedules": {
            tile: {
                "transient": list(schedule.transient),
                "periodic": list(schedule.periodic),
            }
            for tile, schedule in allocation.scheduling.schedules.items()
        },
        "reservation": {
            tile: {
                "time_slice": claim.time_slice,
                "memory": claim.memory,
                "connections": claim.connections,
                "bandwidth_in": claim.bandwidth_in,
                "bandwidth_out": claim.bandwidth_out,
            }
            for tile, claim in allocation.reservation.tiles.items()
        },
        "achieved_throughput": str(Fraction(allocation.achieved_throughput)),
        "throughput_checks": allocation.throughput_checks,
        "rung": rung,
        "certificate": allocation.certificate,
    }


def allocation_from_dict(
    data: Dict[str, Any], source: Optional[str] = None
) -> "Allocation":
    """Inverse of :func:`allocation_to_dict` (the rung rides separately)."""
    # deferred imports: binding pulls in the throughput engines, which
    # this module's application half does not need
    from repro.appmodel.binding import (
        Allocation,
        Binding,
        SchedulingFunction,
    )
    from repro.arch.resources import ResourceReservation, TileReservation
    from repro.throughput.constrained import StaticOrderSchedule

    if not isinstance(data, dict):
        raise SerializationError(
            f"allocation must be a JSON object, got {type(data).__name__}",
            source=source,
        )
    try:
        application = application_from_dict(data["application"], source=source)
        binding = Binding(dict(data["binding"]))
        scheduling = SchedulingFunction()
        for tile, size in data.get("slices", {}).items():
            scheduling.set_slice(tile, int(size))
        for tile, entry in data.get("schedules", {}).items():
            scheduling.set_schedule(
                tile,
                StaticOrderSchedule(
                    periodic=tuple(entry["periodic"]),
                    transient=tuple(entry.get("transient", ())),
                ),
            )
        reservation = ResourceReservation()
        for tile, claim in data.get("reservation", {}).items():
            reservation.tiles[tile] = TileReservation(
                time_slice=int(claim.get("time_slice", 0)),
                memory=int(claim.get("memory", 0)),
                connections=int(claim.get("connections", 0)),
                bandwidth_in=int(claim.get("bandwidth_in", 0)),
                bandwidth_out=int(claim.get("bandwidth_out", 0)),
            )
        achieved = Fraction(data["achieved_throughput"])
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError, ZeroDivisionError) as error:
        raise SerializationError(
            f"bad allocation: {type(error).__name__}: {error}", source=source
        ) from error
    return Allocation(
        application=application,
        binding=binding,
        scheduling=scheduling,
        reservation=reservation,
        achieved_throughput=achieved,
        throughput_checks=int(data.get("throughput_checks", 0)),
        certificate=data.get("certificate"),
    )


def bundle_to_dict(
    architecture: "ArchitectureGraph",
    allocations: Any,
    rungs: Optional[Any] = None,
) -> Dict[str, Any]:
    """A verifiable bundle: pre-flow architecture + committed allocations.

    ``architecture`` must be the architecture *before* the flow committed
    anything (the verifier checks claims against the then-remaining
    capacity); ``rungs`` optionally names the ladder rung per allocation.
    """
    from repro.arch.serialization import architecture_to_dict

    allocations = list(allocations)
    rungs = list(rungs) if rungs is not None else [None] * len(allocations)
    if len(rungs) != len(allocations):
        raise ValueError("rungs and allocations differ in length")
    return {
        "format": BUNDLE_FORMAT,
        "version": BUNDLE_VERSION,
        "architecture": architecture_to_dict(architecture),
        "allocations": [
            allocation_to_dict(allocation, rung=rung)
            for allocation, rung in zip(allocations, rungs)
        ],
    }


def bundle_from_dict(
    data: Dict[str, Any], source: Optional[str] = None
) -> Dict[str, Any]:
    """Validate the bundle envelope; returns the (still plain) dict.

    The verifier deliberately works on the plain-dict form — it must not
    trust the library's own object model — so this only checks the
    envelope and leaves the payload untouched.
    """
    if not isinstance(data, dict) or data.get("format") != BUNDLE_FORMAT:
        raise SerializationError(
            "not a repro allocation bundle", source=source, field="format"
        )
    if data.get("version") != BUNDLE_VERSION:
        raise SerializationError(
            f"unsupported bundle version {data.get('version')!r} "
            f"(this build reads version {BUNDLE_VERSION})",
            source=source,
            field="version",
        )
    return data


def bundle_to_json(
    architecture: "ArchitectureGraph",
    allocations: Any,
    rungs: Optional[Any] = None,
    indent: int = 2,
) -> str:
    return json.dumps(
        bundle_to_dict(architecture, allocations, rungs=rungs), indent=indent
    )


def bundle_from_json(text: str, source: Optional[str] = None) -> Dict[str, Any]:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(
            f"invalid JSON: {error}", source=source
        ) from error
    return bundle_from_dict(data, source=source)
