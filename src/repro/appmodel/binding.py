"""Binding and scheduling functions, and the combined allocation result.

These are the paper's Definitions 6 and 7: the binding function maps
every actor of the application to a tile; the scheduling function maps
every used tile to a TDMA slice size and a static-order schedule.  An
:class:`Allocation` bundles both with the resource reservation that a
successful run of the strategy commits to the architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.arch.resources import ResourceReservation
from repro.throughput.constrained import StaticOrderSchedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.appmodel.application import ApplicationGraph


@dataclass
class Binding:
    """The binding function ``B : A -> T`` (actor name -> tile name)."""

    assignment: Dict[str, str] = field(default_factory=dict)

    def bind(self, actor: str, tile: str) -> None:
        self.assignment[actor] = tile

    def unbind(self, actor: str) -> None:
        self.assignment.pop(actor, None)

    def tile_of(self, actor: str) -> str:
        return self.assignment[actor]

    def is_bound(self, actor: str) -> bool:
        return actor in self.assignment

    def actors_on(self, tile: str) -> List[str]:
        """The paper's ``A_t`` (insertion order)."""
        return [a for a, t in self.assignment.items() if t == tile]

    def used_tiles(self) -> List[str]:
        """Tiles with at least one bound actor (first-use order)."""
        seen: Dict[str, None] = {}
        for tile in self.assignment.values():
            seen.setdefault(tile)
        return list(seen)

    def copy(self) -> "Binding":
        return Binding(dict(self.assignment))

    def __len__(self) -> int:
        return len(self.assignment)


@dataclass
class SchedulingFunction:
    """The scheduling function ``S : T -> (omega, static order)``."""

    slices: Dict[str, int] = field(default_factory=dict)
    schedules: Dict[str, StaticOrderSchedule] = field(default_factory=dict)

    def set_slice(self, tile: str, size: int) -> None:
        self.slices[tile] = size

    def set_schedule(self, tile: str, schedule: StaticOrderSchedule) -> None:
        self.schedules[tile] = schedule

    def slice_of(self, tile: str) -> int:
        return self.slices[tile]

    def schedule_of(self, tile: str) -> StaticOrderSchedule:
        return self.schedules[tile]

    def copy(self) -> "SchedulingFunction":
        return SchedulingFunction(dict(self.slices), dict(self.schedules))


@dataclass
class Allocation:
    """A complete, validated resource allocation for one application.

    ``achieved_throughput`` is the constrained steady-state rate of the
    application's output actor; ``throughput_checks`` counts how many
    state-space explorations the strategy ran to find the allocation
    (reported in the paper's §10: 16.1 on average, 8 for H.263).
    """

    application: "ApplicationGraph"
    binding: Binding
    scheduling: SchedulingFunction
    reservation: ResourceReservation
    achieved_throughput: Fraction
    throughput_checks: int = 0
    #: periodic-phase certificate backing ``achieved_throughput``
    #: (``repro.verify`` replays it independently); None for
    #: baseline-rung allocations, whose bound is structural
    certificate: Optional[Dict[str, Any]] = None

    @property
    def satisfied(self) -> bool:
        """Whether the throughput constraint is met."""
        return self.achieved_throughput >= self.application.throughput_constraint
