"""The four benchmark sets of the paper's Section 10.1.

Set 1 is processing intensive (large execution times, little
communication, small tokens and state); sets 2 and 3 are memory and
communication intensive; set 4 mixes all profiles.  Each generated
application carries a throughput constraint expressed as a small
fraction of its ideal (resource-unconstrained) throughput, so that many
applications can share the platform — the paper's metric is how many.

All sampling is driven by a seeded ``random.Random``, so sequences are
reproducible; the paper's "3 different sequences per set" correspond to
three seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction
from math import gcd
from typing import Dict, List, Sequence, Tuple

from repro.appmodel.application import ApplicationGraph
from repro.arch.tile import ProcessorType
from repro.generate.random_sdf import RandomSDFParameters, random_sdfg
from repro.throughput.state_space import throughput


@dataclass
class BenchmarkSetProfile:
    """Distribution knobs of one benchmark set."""

    name: str
    structure: RandomSDFParameters = field(default_factory=RandomSDFParameters)
    execution_time: Tuple[int, int] = (10, 40)
    #: per-processor-type slowdown/speedup factor range around the base
    type_speed_spread: float = 1.5
    #: probability that an actor supports each additional processor type
    #: (one random type is always supported)
    support_probability: float = 0.8
    actor_memory: Tuple[int, int] = (50, 200)
    token_size: Tuple[int, int] = (1, 8)
    buffer_tokens: Tuple[int, int] = (1, 3)
    bandwidth: Tuple[int, int] = (2, 10)
    #: throughput constraint as percent of the ideal rate
    constraint_percent: Tuple[int, int] = (1, 3)


SET_PROFILES: Dict[str, BenchmarkSetProfile] = {
    "processing": BenchmarkSetProfile(
        name="processing",
        structure=RandomSDFParameters(
            actors_min=4, actors_max=7, extra_channel_fraction=0.3
        ),
        execution_time=(40, 150),
        actor_memory=(50, 200),
        token_size=(1, 8),
        buffer_tokens=(1, 3),
        bandwidth=(2, 10),
        constraint_percent=(5, 12),
    ),
    "memory": BenchmarkSetProfile(
        name="memory",
        structure=RandomSDFParameters(
            actors_min=4, actors_max=7, extra_channel_fraction=0.5
        ),
        execution_time=(5, 15),
        actor_memory=(40_000, 90_000),
        token_size=(1_500, 5_000),
        buffer_tokens=(2, 4),
        bandwidth=(400, 1_200),
        constraint_percent=(4, 10),
    ),
    "communication": BenchmarkSetProfile(
        name="communication",
        structure=RandomSDFParameters(
            actors_min=4, actors_max=8, extra_channel_fraction=0.8
        ),
        execution_time=(5, 15),
        actor_memory=(50, 200),
        token_size=(100, 400),
        buffer_tokens=(1, 3),
        bandwidth=(600, 2_000),
        constraint_percent=(4, 10),
    ),
}


def generate_application(
    profile: BenchmarkSetProfile,
    processor_types: Sequence[ProcessorType],
    rng: random.Random,
    name: str,
) -> ApplicationGraph:
    """One random application following ``profile``."""
    graph = random_sdfg(profile.structure, rng, name=name)

    # Worst-case execution times decide the ideal throughput used to
    # scale the constraint, so requirements are drawn first.
    requirement_plan: Dict[str, List[Tuple[ProcessorType, int, int]]] = {}
    worst_case: Dict[str, int] = {}
    for actor in graph.actor_names:
        base_time = rng.randint(*profile.execution_time)
        supported = [rng.choice(list(processor_types))]
        for processor_type in processor_types:
            if processor_type not in supported and (
                rng.random() < profile.support_probability
            ):
                supported.append(processor_type)
        options = []
        for processor_type in supported:
            factor = rng.uniform(1.0, profile.type_speed_spread)
            if rng.random() < 0.5:
                execution_time = max(1, round(base_time / factor))
            else:
                execution_time = max(1, round(base_time * factor))
            memory = rng.randint(*profile.actor_memory)
            options.append((processor_type, execution_time, memory))
        requirement_plan[actor] = options
        worst_case[actor] = max(t for _, t, _ in options)

    ideal = throughput(
        graph, execution_times=worst_case, auto_concurrency=False
    )
    output_actor = graph.actor_names[-1]
    percent = rng.randint(*profile.constraint_percent)
    constraint = ideal.of(output_actor) * Fraction(percent, 100)

    application = ApplicationGraph(
        graph, throughput_constraint=constraint, output_actor=output_actor
    )
    for actor, options in requirement_plan.items():
        application.set_actor_requirements(actor, *options)
    gamma = application.gamma
    for channel in graph.channels:
        # Buffers hold one full iteration of traffic
        # (p * gamma(src) tokens) on top of the initial tokens: with
        # that floor an entire iteration can execute without blocking
        # on space, so no binding can deadlock on buffer capacity
        # (multi-channel cycles make the classical single-channel bound
        # p + q - gcd insufficient).
        floor = max(
            channel.production
            + channel.consumption
            - gcd(channel.production, channel.consumption),
            channel.production * gamma[channel.src],
        )
        buffer_tile = max(rng.randint(*profile.buffer_tokens), floor) + channel.tokens
        application.set_channel_requirements(
            channel.name,
            token_size=rng.randint(*profile.token_size),
            buffer_tile=buffer_tile,
            buffer_src=buffer_tile + rng.randint(0, 1),
            buffer_dst=buffer_tile + rng.randint(0, 1),
            bandwidth=0 if channel.is_self_loop else rng.randint(*profile.bandwidth),
        )
    return application


def generate_benchmark_set(
    set_name: str,
    count: int,
    processor_types: Sequence[ProcessorType],
    seed: int = 0,
) -> List[ApplicationGraph]:
    """A sequence of ``count`` applications from one benchmark set.

    ``set_name`` is one of ``processing``, ``memory``, ``communication``
    or ``mixed``; the mixed set draws each application's profile
    uniformly from the three pure sets (paper: graphs "balanced wrt
    their requirements and graphs dominated by one or two aspects").
    """
    rng = random.Random(seed)
    applications = []
    pure = list(SET_PROFILES.values())
    for index in range(count):
        if set_name == "mixed":
            profile = rng.choice(pure)
        else:
            try:
                profile = SET_PROFILES[set_name]
            except KeyError:
                raise KeyError(
                    f"unknown benchmark set {set_name!r}; expected one of "
                    f"{sorted(SET_PROFILES)} or 'mixed'"
                ) from None
        applications.append(
            generate_application(
                profile,
                processor_types,
                rng,
                name=f"{set_name}-{seed}-{index}",
            )
        )
    return applications
