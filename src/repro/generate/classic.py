"""Classic SDF benchmark applications from the literature.

Reconstructions of the standard examples that ship with SDF3 and the
Bhattacharyya/Sriram scheduling literature; the rate structure (and
hence the repetition vectors and HSDF sizes, which is what matters for
the paper's scaling arguments) follows the published models, while the
execution times are representative.

* :func:`samplerate_converter` — the CD-to-DAT converter: a 6-actor
  multirate chain whose repetition vector is
  ``(147, 147, 98, 28, 32, 160)`` (HSDFG: 612 actors).
* :func:`modem` — a 16-actor single-rate modem loop.
* :func:`satellite_receiver` — a 22-actor dual-channel receiver with
  down-sampling filter banks.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.appmodel.application import ApplicationGraph
from repro.arch.tile import ProcessorType
from repro.sdf.graph import SDFGraph


def samplerate_converter(
    name: str = "cd2dat",
    processor: Optional[ProcessorType] = None,
    throughput_constraint: Optional[Fraction] = None,
) -> ApplicationGraph:
    """The CD (44.1 kHz) to DAT (48 kHz) sample-rate converter.

    The conversion ratio 160/147 factors into the classic filter chain
    ``1/1 -> 2/3 -> 2/7 -> 8/7 -> 5/1``; double-buffered feedback from
    the DAT sink to the CD source bounds the pipeline.
    """
    processor = processor or ProcessorType("dsp")
    graph = SDFGraph(name)
    stages = ["cd", "fir1", "fir2", "fir3", "fir4", "dat"]
    times = {"cd": 1, "fir1": 4, "fir2": 9, "fir3": 6, "fir4": 3, "dat": 1}
    for stage in stages:
        graph.add_actor(stage, times[stage])
    graph.add_channel("c1", "cd", "fir1", 1, 1)
    graph.add_channel("c2", "fir1", "fir2", 2, 3)
    graph.add_channel("c3", "fir2", "fir3", 2, 7)
    graph.add_channel("c4", "fir3", "fir4", 8, 7)
    graph.add_channel("c5", "fir4", "dat", 5, 1)
    # feedback with two iterations' worth of tokens (double buffering)
    graph.add_channel("fb", "dat", "cd", 147, 160, tokens=2 * 160 * 147)

    if throughput_constraint is None:
        # dat emits 160 samples per iteration; leave ample headroom so
        # the converter shares a platform with other applications
        throughput_constraint = Fraction(1, 1500)
    application = ApplicationGraph(
        graph, throughput_constraint=throughput_constraint, output_actor="dat"
    )
    for stage in stages:
        application.set_actor_requirements(
            stage, (processor, times[stage], 200 + 100 * times[stage])
        )
    for channel in graph.channels:
        application.set_channel_requirements(
            channel.name, token_size=16, bandwidth=1_000
        )
    return application


def modem(
    name: str = "modem",
    processor: Optional[ProcessorType] = None,
    throughput_constraint: Optional[Fraction] = None,
) -> ApplicationGraph:
    """A 16-actor modem (equaliser loop + decoder chain), single-rate.

    Follows the topology of the classic modem example: an input chain
    feeds an adaptive equaliser loop (with unit-delay feedback) and a
    decision/decoder chain that also updates the equaliser.
    """
    processor = processor or ProcessorType("dsp")
    graph = SDFGraph(name)
    stages = {
        "in": 2,
        "filt": 9,
        "conv1": 4,
        "conv2": 4,
        "sum": 2,
        "equal": 12,
        "decim": 3,
        "deriv": 3,
        "loop": 5,
        "decide": 4,
        "fork": 1,
        "conj1": 2,
        "conj2": 2,
        "diff": 3,
        "deco": 6,
        "out": 1,
    }
    for stage, time in stages.items():
        graph.add_actor(stage, time)
    forward = [
        ("in", "filt"),
        ("filt", "conv1"),
        ("conv1", "sum"),
        ("sum", "equal"),
        ("equal", "decim"),
        ("decim", "deriv"),
        ("deriv", "loop"),
        ("loop", "decide"),
        ("decide", "fork"),
        ("fork", "conj1"),
        ("conj1", "diff"),
        ("diff", "deco"),
        ("deco", "out"),
        ("fork", "conj2"),
    ]
    for src, dst in forward:
        graph.add_channel(f"{src}-{dst}", src, dst)
    # feedback loops (all with unit delays, as in the original)
    graph.add_channel("conj2-sum", "conj2", "sum", tokens=1)
    graph.add_channel("loop-conv2", "loop", "conv2", tokens=1)
    graph.add_channel("conv2-equal", "conv2", "equal", tokens=1)
    graph.add_channel("out-in", "out", "in", tokens=2)

    if throughput_constraint is None:
        throughput_constraint = Fraction(1, 200)
    application = ApplicationGraph(
        graph, throughput_constraint=throughput_constraint, output_actor="out"
    )
    for stage, time in stages.items():
        application.set_actor_requirements(
            stage, (processor, time, 100 + 50 * time)
        )
    for channel in graph.channels:
        application.set_channel_requirements(
            channel.name, token_size=32, bandwidth=500
        )
    return application


def satellite_receiver(
    name: str = "satellite",
    processor: Optional[ProcessorType] = None,
    throughput_constraint: Optional[Fraction] = None,
) -> ApplicationGraph:
    """A 22-actor dual-channel satellite receiver with filter banks.

    Two identical I/Q channels, each a chain of down-sampling FIR
    stages (11 actors per channel including the shared source/sink),
    joined at a demodulator; the down-sampling gives a strongly
    multirate repetition vector like the published model.
    """
    processor = processor or ProcessorType("dsp")
    graph = SDFGraph(name)
    graph.add_actor("source", 1)
    graph.add_actor("demod", 4)
    times = {"frontend": 2, "chain1": 3, "chain2": 3, "fir1": 5, "fir2": 5,
             "down1": 2, "down2": 2, "mf": 6, "sync": 4, "dec": 3}
    for channel_id in ("i", "q"):
        for stage, time in times.items():
            graph.add_actor(f"{stage}_{channel_id}", time)
        prefix = lambda s: f"{s}_{channel_id}"
        graph.add_channel(
            f"src-{channel_id}", "source", prefix("frontend"), 1, 1
        )
        chain = [
            ("frontend", "chain1", 1, 1),
            ("chain1", "chain2", 1, 1),
            ("chain2", "fir1", 1, 1),
            ("fir1", "down1", 1, 4),  # 4:1 decimation
            ("down1", "fir2", 1, 1),
            ("fir2", "down2", 1, 4),  # 4:1 decimation
            ("down2", "mf", 1, 1),
            ("mf", "sync", 1, 1),
            ("sync", "dec", 1, 1),
        ]
        for src, dst, p, q in chain:
            graph.add_channel(
                f"{src}-{dst}-{channel_id}", prefix(src), prefix(dst), p, q
            )
        graph.add_channel(
            f"dec-demod-{channel_id}", prefix("dec"), "demod", 1, 1
        )
    # rate-control feedback keeps the graph bounded (the source runs 16
    # firings per demodulated symbol; double-buffered control)
    graph.add_channel("demod-source", "demod", "source", 16, 1, tokens=32)

    if throughput_constraint is None:
        # one demodulated symbol needs 16 front-end firings per channel
        throughput_constraint = Fraction(1, 2500)
    application = ApplicationGraph(
        graph, throughput_constraint=throughput_constraint, output_actor="demod"
    )
    for actor in graph.actor_names:
        time = graph.actor(actor).execution_time
        application.set_actor_requirements(
            actor, (processor, time, 100 + 40 * time)
        )
    for channel in graph.channels:
        application.set_channel_requirements(
            channel.name, token_size=24, bandwidth=800
        )
    return application
