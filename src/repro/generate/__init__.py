"""Workload generation: random SDFGs, benchmark sets, multimedia models.

The paper evaluates on a benchmark of four sets of random application
graphs generated with SDF3 (processing-, memory-, communication-
intensive and mixed) plus a multimedia use case of three H.263 decoders
and an MP3 decoder.  This package provides seeded, reproducible
equivalents (see DESIGN.md "Substitutions").
"""

from repro.generate.random_sdf import RandomSDFParameters, random_sdfg
from repro.generate.benchmark import (
    BenchmarkSetProfile,
    SET_PROFILES,
    generate_application,
    generate_benchmark_set,
)
from repro.generate.multimedia import h263_decoder, mp3_decoder
from repro.generate.classic import (
    modem,
    samplerate_converter,
    satellite_receiver,
)

__all__ = [
    "RandomSDFParameters",
    "random_sdfg",
    "BenchmarkSetProfile",
    "SET_PROFILES",
    "generate_application",
    "generate_benchmark_set",
    "h263_decoder",
    "mp3_decoder",
    "modem",
    "samplerate_converter",
    "satellite_receiver",
]
