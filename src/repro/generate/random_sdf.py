"""Seeded random generation of consistent, live SDFGs (SDF3-style).

Construction guarantees the two properties the allocator requires:

* **consistency** — a repetition vector is drawn first and the rates of
  every channel ``(a, b)`` are derived from it
  (``p = gamma(b)/g, q = gamma(a)/g`` with ``g = gcd``), so the drawn
  vector is a valid repetition vector by construction;
* **liveness** — actors are kept in a creation order; forward channels
  need no tokens, while every backward or self channel receives enough
  initial tokens for one full iteration of its consumer, which makes a
  complete iteration executable (and hence the graph live).

The generator is deliberately parameter-light: the benchmark set
profiles (:mod:`repro.generate.benchmark`) provide the distributions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from math import gcd
from typing import Optional, Tuple

from repro.sdf.graph import SDFGraph
from repro.sdf.validate import validate_graph


@dataclass
class RandomSDFParameters:
    """Structural knobs of :func:`random_sdfg`."""

    actors_min: int = 4
    actors_max: int = 8
    #: repetition-vector entries are drawn uniformly from this range
    repetition_min: int = 1
    repetition_max: int = 3
    #: extra channels beyond the connecting spanning structure,
    #: as a fraction of the actor count
    extra_channel_fraction: float = 0.5
    #: probability that an extra channel points backwards (creating a
    #: cycle and pipelining opportunities)
    back_edge_probability: float = 0.5
    #: fraction of actors receiving a self-edge (bounding their
    #: auto-concurrency in the application model itself)
    self_edge_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.actors_min < 1 or self.actors_max < self.actors_min:
            raise ValueError("invalid actor count range")
        if self.repetition_min < 1 or self.repetition_max < self.repetition_min:
            raise ValueError("invalid repetition-vector range")


def _rates(gamma_src: int, gamma_dst: int) -> Tuple[int, int]:
    g = gcd(gamma_src, gamma_dst)
    return gamma_dst // g, gamma_src // g


def random_sdfg(
    parameters: Optional[RandomSDFParameters] = None,
    rng: Optional[random.Random] = None,
    name: str = "random",
) -> SDFGraph:
    """Generate one consistent, live, connected SDFG.

    ``rng`` supplies determinism; the same generator state yields the
    same graph.
    """
    parameters = parameters or RandomSDFParameters()
    rng = rng or random.Random()

    count = rng.randint(parameters.actors_min, parameters.actors_max)
    gamma = [
        rng.randint(parameters.repetition_min, parameters.repetition_max)
        for _ in range(count)
    ]
    graph = SDFGraph(name)
    for i in range(count):
        graph.add_actor(f"a{i}")

    channel_id = 0

    def add(src: int, dst: int) -> None:
        nonlocal channel_id
        if src == dst:
            production = consumption = 1
            tokens = 1
        else:
            production, consumption = _rates(gamma[src], gamma[dst])
            tokens = consumption * gamma[dst] if src > dst else 0
        graph.add_channel(
            f"d{channel_id}", f"a{src}", f"a{dst}", production, consumption, tokens
        )
        channel_id += 1

    # spanning structure: each actor (after the first) connects forward
    # from a random earlier actor, keeping the graph connected and the
    # forward edges token-free.
    for dst in range(1, count):
        add(rng.randrange(dst), dst)

    extra = int(parameters.extra_channel_fraction * count)
    for _ in range(extra):
        if count < 2:
            break
        src, dst = rng.sample(range(count), 2)
        if src > dst and rng.random() > parameters.back_edge_probability:
            src, dst = dst, src
        add(src, dst)

    for actor in range(count):
        if rng.random() < parameters.self_edge_fraction:
            add(actor, actor)

    validate_graph(graph)
    return graph
