"""The multimedia applications of the paper's Section 10.3.

* :func:`h263_decoder` — the H.263 decoder SDFG of Fig. 1: four actors
  (variable-length decoding, inverse quantisation, IDCT, motion
  compensation) with the macroblock multirate structure whose HSDFG has
  ``1 + 2376 + 2376 + 1 = 4754`` actors (the number the paper quotes).
* :func:`mp3_decoder` — a 13-actor single-rate MP3 decoder (the paper's
  multimedia system totals ``3 * 4754 + 13 = 14275`` HSDFG actors,
  which pins the MP3 model to 13 single-rate actors).

Execution times follow the published SDF3 models in spirit (VLD and
motion compensation dominate); DESIGN.md records this substitution.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.appmodel.application import ApplicationGraph
from repro.arch.tile import ProcessorType
from repro.sdf.graph import SDFGraph

#: macroblocks per QCIF frame group used by the SDF3 H.263 model
H263_MACROBLOCKS = 2376


def h263_decoder(
    name: str = "h263",
    macroblocks: int = H263_MACROBLOCKS,
    generic: Optional[ProcessorType] = None,
    accelerator: Optional[ProcessorType] = None,
    throughput_constraint: Optional[Fraction] = None,
) -> ApplicationGraph:
    """An H.263 decoder application graph (4 actors, Fig. 1).

    ``macroblocks`` scales the multirate factor (the default matches the
    paper: HSDFG size ``2 * macroblocks + 2 = 4754``).  ``generic`` and
    ``accelerator`` are the processor types the actors support; the
    control-flow actors (vld, mc) run on the generic processor, the
    kernels (iq, idct) on either.
    """
    generic = generic or ProcessorType("generic")
    accelerator = accelerator or ProcessorType("accelerator")

    graph = SDFGraph(name)
    graph.add_actor("vld", 1)
    graph.add_actor("iq", 1)
    graph.add_actor("idct", 1)
    graph.add_actor("mc", 1)
    graph.add_channel("vld-iq", "vld", "iq", macroblocks, 1)
    graph.add_channel("iq-idct", "iq", "idct", 1, 1)
    graph.add_channel("idct-mc", "idct", "mc", 1, macroblocks)
    # frame-level feedback: motion compensation uses the previous frame
    graph.add_channel("mc-vld", "mc", "vld", 1, 1, tokens=1)

    if throughput_constraint is None:
        # One frame (one vld firing) per ~10x the serial frame time:
        # loose enough that several decoders share the platform (the
        # paper's use case), tight enough to need real slices.
        serial = 2600 + macroblocks * (6 + 5) + 1100
        throughput_constraint = Fraction(1, 10 * serial)
    application = ApplicationGraph(
        graph, throughput_constraint=throughput_constraint, output_actor="mc"
    )
    application.set_actor_requirements("vld", (generic, 2600, 7000))
    application.set_actor_requirements(
        "iq", (generic, 12, 600), (accelerator, 6, 500)
    )
    application.set_actor_requirements(
        "idct", (generic, 10, 700), (accelerator, 5, 600)
    )
    application.set_actor_requirements("mc", (generic, 1100, 10000))
    application.set_channel_requirements(
        "vld-iq",
        token_size=384,
        buffer_tile=2 * macroblocks,
        buffer_src=2 * macroblocks,
        buffer_dst=2 * macroblocks,
        bandwidth=4000,
    )
    application.set_channel_requirements(
        "iq-idct",
        token_size=384,
        buffer_tile=2,
        buffer_src=2,
        buffer_dst=2,
        bandwidth=4000,
    )
    application.set_channel_requirements(
        "idct-mc",
        token_size=384,
        buffer_tile=2 * macroblocks,
        buffer_src=2 * macroblocks,
        buffer_dst=2 * macroblocks,
        bandwidth=4000,
    )
    application.set_channel_requirements(
        "mc-vld",
        token_size=16,
        buffer_tile=2,
        buffer_src=2,
        buffer_dst=2,
        bandwidth=100,
    )
    return application


def mp3_decoder(
    name: str = "mp3",
    generic: Optional[ProcessorType] = None,
    accelerator: Optional[ProcessorType] = None,
    throughput_constraint: Optional[Fraction] = None,
) -> ApplicationGraph:
    """A 13-actor single-rate MP3 decoder application graph.

    Topology: Huffman decoding fans out into left/right granule chains
    (requantise, reorder), joins for stereo processing, fans out again
    (antialias, hybrid synthesis/IMDCT, frequency inversion) and joins
    in the synthesis filterbank; a feedback edge from the filterbank to
    the Huffman decoder with two tokens allows double-buffered
    pipelining.
    """
    generic = generic or ProcessorType("generic")
    accelerator = accelerator or ProcessorType("accelerator")

    graph = SDFGraph(name)
    stages = [
        "huffman",
        "req_l",
        "req_r",
        "reorder_l",
        "reorder_r",
        "stereo",
        "antialias_l",
        "antialias_r",
        "hybrid_l",
        "hybrid_r",
        "freqinv_l",
        "freqinv_r",
        "synth",
    ]
    for stage in stages:
        graph.add_actor(stage, 1)
    edges = [
        ("huffman", "req_l"),
        ("huffman", "req_r"),
        ("req_l", "reorder_l"),
        ("req_r", "reorder_r"),
        ("reorder_l", "stereo"),
        ("reorder_r", "stereo"),
        ("stereo", "antialias_l"),
        ("stereo", "antialias_r"),
        ("antialias_l", "hybrid_l"),
        ("antialias_r", "hybrid_r"),
        ("hybrid_l", "freqinv_l"),
        ("hybrid_r", "freqinv_r"),
        ("freqinv_l", "synth"),
        ("freqinv_r", "synth"),
    ]
    for src, dst in edges:
        graph.add_channel(f"{src}-{dst}", src, dst)
    graph.add_channel("synth-huffman", "synth", "huffman", tokens=2)

    times = {
        "huffman": 450,
        "req_l": 120,
        "req_r": 120,
        "reorder_l": 80,
        "reorder_r": 80,
        "stereo": 70,
        "antialias_l": 60,
        "antialias_r": 60,
        "hybrid_l": 320,
        "hybrid_r": 320,
        "freqinv_l": 40,
        "freqinv_r": 40,
        "synth": 600,
    }
    if throughput_constraint is None:
        serial = sum(times.values())
        throughput_constraint = Fraction(1, 10 * serial)
    application = ApplicationGraph(
        graph, throughput_constraint=throughput_constraint, output_actor="synth"
    )
    accelerated = {"hybrid_l", "hybrid_r", "synth"}
    for stage in stages:
        base = times[stage]
        options = [(generic, base, 40 * base)]
        if stage in accelerated:
            options.append((accelerator, max(1, base // 2), 30 * base))
        application.set_actor_requirements(stage, *options)
    for channel in graph.channels:
        application.set_channel_requirements(
            channel.name,
            token_size=2304,
            buffer_tile=max(2, channel.tokens + 1),
            buffer_src=max(2, channel.tokens + 1),
            buffer_dst=max(2, channel.tokens + 1),
            bandwidth=2000,
        )
    return application
