"""CSDF graph data structures.

A CSDF actor has ``n`` phases; its ``k``-th firing executes phase
``k mod n``.  Each channel carries a production sequence (indexed by
the source actor's phase) and a consumption sequence (indexed by the
destination actor's phase).  Rates may be zero in individual phases —
that is the expressiveness CSDF adds over SDF — but a channel must move
at least one token over a full phase cycle in each direction it is
used (checked by validation, not construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass
class CSDFActor:
    """A cyclo-static actor: one execution time per phase."""

    name: str
    execution_times: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("actor name must be non-empty")
        if not self.execution_times:
            raise ValueError(f"actor {self.name!r}: needs at least one phase")
        if any(t < 0 for t in self.execution_times):
            raise ValueError(
                f"actor {self.name!r}: phase execution times must be >= 0"
            )

    @property
    def phase_count(self) -> int:
        return len(self.execution_times)

    def execution_time(self, firing_index: int) -> int:
        """Execution time of the ``firing_index``-th firing (0-based)."""
        return self.execution_times[firing_index % self.phase_count]


@dataclass
class CSDFChannel:
    """A channel with per-phase rate sequences.

    ``productions[i]`` tokens are produced when the source fires in its
    phase ``i``; ``consumptions[j]`` tokens are consumed when the
    destination fires in its phase ``j``.  Sequence lengths must match
    the endpoint actors' phase counts (validated by the graph).
    """

    name: str
    src: str
    dst: str
    productions: Tuple[int, ...]
    consumptions: Tuple[int, ...]
    tokens: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("channel name must be non-empty")
        if not self.productions or not self.consumptions:
            raise ValueError(
                f"channel {self.name!r}: rate sequences must be non-empty"
            )
        if any(rate < 0 for rate in self.productions + self.consumptions):
            raise ValueError(f"channel {self.name!r}: rates must be >= 0")
        if self.tokens < 0:
            raise ValueError(f"channel {self.name!r}: tokens must be >= 0")

    @property
    def is_self_loop(self) -> bool:
        return self.src == self.dst

    @property
    def total_production(self) -> int:
        """Tokens produced over one full phase cycle of the source."""
        return sum(self.productions)

    @property
    def total_consumption(self) -> int:
        """Tokens consumed over one full phase cycle of the destination."""
        return sum(self.consumptions)


class CSDFGraph:
    """A cyclo-static dataflow graph."""

    def __init__(self, name: str = "csdf") -> None:
        self.name = name
        self._actors: Dict[str, CSDFActor] = {}
        self._channels: Dict[str, CSDFChannel] = {}
        self._out: Dict[str, List[str]] = {}
        self._in: Dict[str, List[str]] = {}
        # Parse origin for lint locations, stamped by the serializer
        # (None for API-built graphs).
        self.source: Optional[str] = None
        self.provenance: Dict[Tuple[str, str], str] = {}

    def add_actor(
        self, name: str, execution_times: Sequence[int]
    ) -> CSDFActor:
        if name in self._actors:
            raise ValueError(f"duplicate actor {name!r}")
        actor = CSDFActor(name, tuple(execution_times))
        self._actors[name] = actor
        self._out[name] = []
        self._in[name] = []
        return actor

    def add_channel(
        self,
        name: str,
        src: str,
        dst: str,
        productions: Sequence[int],
        consumptions: Sequence[int],
        tokens: int = 0,
    ) -> CSDFChannel:
        if name in self._channels:
            raise ValueError(f"duplicate channel {name!r}")
        if src not in self._actors:
            raise KeyError(f"unknown source actor {src!r}")
        if dst not in self._actors:
            raise KeyError(f"unknown destination actor {dst!r}")
        channel = CSDFChannel(
            name, src, dst, tuple(productions), tuple(consumptions), tokens
        )
        if len(channel.productions) != self._actors[src].phase_count:
            raise ValueError(
                f"channel {name!r}: production sequence length "
                f"{len(channel.productions)} != phase count "
                f"{self._actors[src].phase_count} of {src!r}"
            )
        if len(channel.consumptions) != self._actors[dst].phase_count:
            raise ValueError(
                f"channel {name!r}: consumption sequence length "
                f"{len(channel.consumptions)} != phase count "
                f"{self._actors[dst].phase_count} of {dst!r}"
            )
        if channel.total_production == 0 or channel.total_consumption == 0:
            raise ValueError(
                f"channel {name!r}: a full phase cycle must move at "
                "least one token at each end"
            )
        self._channels[name] = channel
        self._out[src].append(name)
        self._in[dst].append(name)
        return channel

    # -- queries ----------------------------------------------------------
    @property
    def actors(self) -> List[CSDFActor]:
        return list(self._actors.values())

    @property
    def channels(self) -> List[CSDFChannel]:
        return list(self._channels.values())

    @property
    def actor_names(self) -> List[str]:
        return list(self._actors.keys())

    def actor(self, name: str) -> CSDFActor:
        return self._actors[name]

    def channel(self, name: str) -> CSDFChannel:
        return self._channels[name]

    def has_actor(self, name: str) -> bool:
        return name in self._actors

    def out_channels(self, actor: str) -> List[CSDFChannel]:
        return [self._channels[c] for c in self._out[actor]]

    def in_channels(self, actor: str) -> List[CSDFChannel]:
        return [self._channels[c] for c in self._in[actor]]

    def __len__(self) -> int:
        return len(self._actors)

    def __iter__(self) -> Iterator[CSDFActor]:
        return iter(self._actors.values())

    def __repr__(self) -> str:
        return (
            f"CSDFGraph({self.name!r}, actors={len(self._actors)}, "
            f"channels={len(self._channels)})"
        )
