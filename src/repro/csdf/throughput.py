"""Self-timed state-space throughput for CSDF graphs.

Same construction as the SDF engine (tokens consumed at firing start,
produced at completion, recurrence detection over the execution state)
with the state extended by each actor's phase position; every active
firing remembers the phase it started in, because production rates and
durations are phase-dependent.

The driver decomposes into strongly connected components like the SDF
driver: the iteration rate of the graph is the minimum over components
of their isolated rates (exact for self-timed executions with unbounded
inter-component buffers).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.csdf.analysis import csdf_repetition_vector
from repro.csdf.graph import CSDFGraph
from repro.throughput.state_space import (
    DEFAULT_MAX_STATES,
    StateSpaceExplosionError,
)

Rate = Union[Fraction, float]


@dataclass
class CSDFThroughputResult:
    """Iteration rate and per-actor firing rates of a CSDF graph."""

    iteration_rate: Rate
    gamma: Dict[str, int]
    states_explored: int = 0

    def of(self, actor: str) -> Rate:
        """Steady-state firings per time unit of ``actor``."""
        if self.iteration_rate == float("inf"):
            return float("inf")
        return self.iteration_rate * self.gamma[actor]

    @property
    def deadlocked(self) -> bool:
        return self.iteration_rate == 0


def _strongly_connected_components(graph: CSDFGraph) -> List[List[str]]:
    index_counter = 0
    indices: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []

    successors = {
        actor: sorted({c.dst for c in graph.out_channels(actor)})
        for actor in graph.actor_names
    }

    for root in graph.actor_names:
        if root in indices:
            continue
        work = [(root, iter(successors[root]))]
        indices[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, iterator = work[-1]
            advanced = False
            for succ in iterator:
                if succ not in indices:
                    indices[succ] = lowlink[succ] = index_counter
                    index_counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], indices[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


class _CSDFEngine:
    """Self-timed execution of one (bounded) CSDF sub-graph."""

    def __init__(
        self,
        graph: CSDFGraph,
        actor_names: Sequence[str],
        auto_concurrency: bool,
        max_states: int,
    ) -> None:
        self.max_states = max_states
        self.auto_concurrency = auto_concurrency
        keep = set(actor_names)
        self._actors = [a for a in graph.actor_names if a in keep]
        self._index = {a: i for i, a in enumerate(self._actors)}
        self._phases = [graph.actor(a).execution_times for a in self._actors]
        channels = [
            c
            for c in graph.channels
            if c.src in keep and c.dst in keep
        ]
        self._tokens0 = [c.tokens for c in channels]
        # per actor: [(channel idx, per-phase rates)]
        self._inputs: List[List[Tuple[int, Tuple[int, ...]]]] = [
            [] for _ in self._actors
        ]
        self._outputs: List[List[Tuple[int, Tuple[int, ...]]]] = [
            [] for _ in self._actors
        ]
        for channel_index, channel in enumerate(channels):
            self._outputs[self._index[channel.src]].append(
                (channel_index, channel.productions)
            )
            self._inputs[self._index[channel.dst]].append(
                (channel_index, channel.consumptions)
            )

    def run(self) -> Tuple[Optional[int], Dict[str, int], int]:
        """(period, firings per period, states) — period None on deadlock."""
        tokens = list(self._tokens0)
        # phase position of the *next* firing start, per actor
        next_phase = [0] * len(self._actors)
        # active firings: list of (remaining, phase) per actor
        active: List[List[Tuple[int, int]]] = [[] for _ in self._actors]
        completed = [0] * len(self._actors)
        time = 0
        seen: Dict[Tuple, Tuple[int, Tuple[int, ...]]] = {}

        def try_start(actor: int) -> bool:
            if not self.auto_concurrency and active[actor]:
                return False
            phase = next_phase[actor]
            phase_count = len(self._phases[actor])
            for channel, rates in self._inputs[actor]:
                if tokens[channel] < rates[phase]:
                    return False
            for channel, rates in self._inputs[actor]:
                tokens[channel] -= rates[phase]
            duration = self._phases[actor][phase]
            next_phase[actor] = (phase + 1) % phase_count
            if duration == 0:
                for channel, rates in self._outputs[actor]:
                    tokens[channel] += rates[phase]
                completed[actor] += 1
            else:
                active[actor].append((duration, phase))
            return True

        while True:
            guard = 0
            progress = True
            while progress:
                progress = False
                for actor in range(len(self._actors)):
                    while try_start(actor):
                        progress = True
                        guard += 1
                        if guard > 1_000_000:
                            raise StateSpaceExplosionError(
                                "unbounded firing burst in CSDF execution"
                            )

            key = (
                tuple(tokens),
                tuple(next_phase),
                tuple(
                    (i, tuple(sorted(entries)))
                    for i, entries in enumerate(active)
                    if entries
                ),
            )
            if key in seen:
                first_time, first_completed = seen[key]
                period = time - first_time
                firings = {
                    name: completed[i] - first_completed[i]
                    for i, name in enumerate(self._actors)
                }
                return period, firings, len(seen)
            seen[key] = (time, tuple(completed))
            if len(seen) > self.max_states:
                raise StateSpaceExplosionError(
                    f"exceeded {self.max_states} states in CSDF execution"
                )

            remaining_values = [
                remaining for entries in active for remaining, _ in entries
            ]
            if not remaining_values:
                return None, {}, len(seen)
            step = min(remaining_values)
            time += step
            for actor, entries in enumerate(active):
                if not entries:
                    continue
                finished: List[int] = []
                still: List[Tuple[int, int]] = []
                for remaining, phase in entries:
                    remaining -= step
                    if remaining == 0:
                        finished.append(phase)
                    else:
                        still.append((remaining, phase))
                active[actor] = still
                if finished:
                    for phase in finished:
                        for channel, rates in self._outputs[actor]:
                            tokens[channel] += rates[phase]
                    completed[actor] += len(finished)


def csdf_throughput(
    graph: CSDFGraph,
    auto_concurrency: bool = True,
    max_states: int = DEFAULT_MAX_STATES,
) -> CSDFThroughputResult:
    """Self-timed throughput of a CSDF graph (SCC-wise, exact)."""
    gamma = csdf_repetition_vector(graph)
    cycles = csdf_repetition_vector(graph, firings=False)
    overall: Rate = float("inf")
    states = 0
    for component in _strongly_connected_components(graph):
        cyclic = len(component) > 1 or any(
            c.is_self_loop for c in graph.out_channels(component[0])
        )
        if not cyclic:
            if not auto_concurrency:
                actor = graph.actor(component[0])
                cycle_time = sum(actor.execution_times)
                if cycle_time > 0:
                    rate = Fraction(1, cycle_time * cycles[actor.name])
                    if rate < overall:
                        overall = rate
            continue
        engine = _CSDFEngine(graph, component, auto_concurrency, max_states)
        period, firings, explored = engine.run()
        states += explored
        representative = component[0]
        if period is None or period == 0:
            rate = Fraction(0) if period is None else float("inf")
        else:
            rate = Fraction(
                firings.get(representative, 0), period
            ) / gamma[representative]
        if rate < overall:
            overall = rate
    return CSDFThroughputResult(
        iteration_rate=overall, gamma=gamma, states_explored=states
    )
