"""Cyclo-Static Dataflow (CSDF) support.

The paper's related work compares against Bilsen et al.'s cyclo-static
dataflow mapping ([6]); CSDF is also a first-class model of the SDF3
tool family this paper seeded.  A CSDF actor cycles through a fixed
sequence of *phases*; each phase has its own execution time and its own
production/consumption rates, which lets finer-grained pipelining be
expressed than SDF (an SDF actor is the special case of one phase).

Provided here:

* the CSDF graph model (:mod:`repro.csdf.graph`),
* phase-aware repetition vectors and liveness
  (:mod:`repro.csdf.analysis`),
* exact self-timed state-space throughput with per-firing phases
  (:mod:`repro.csdf.throughput`),
* lossless conversions between single-phase CSDF and SDF
  (:mod:`repro.csdf.convert`).
"""

from repro.csdf.graph import CSDFActor, CSDFChannel, CSDFGraph
from repro.csdf.analysis import (
    csdf_repetition_vector,
    is_csdf_consistent,
    is_csdf_deadlock_free,
)
from repro.csdf.throughput import csdf_throughput, CSDFThroughputResult
from repro.csdf.convert import (
    aggregate_csdf_to_sdf,
    csdf_to_sdf,
    sdf_to_csdf,
)
from repro.csdf.random_csdf import random_csdf, split_phases
from repro.csdf.serialization import (
    csdf_to_dict,
    csdf_from_dict,
    csdf_to_json,
    csdf_from_json,
)

__all__ = [
    "CSDFActor",
    "CSDFChannel",
    "CSDFGraph",
    "csdf_repetition_vector",
    "is_csdf_consistent",
    "is_csdf_deadlock_free",
    "csdf_throughput",
    "CSDFThroughputResult",
    "csdf_to_sdf",
    "sdf_to_csdf",
    "aggregate_csdf_to_sdf",
    "random_csdf",
    "split_phases",
    "csdf_to_dict",
    "csdf_from_dict",
    "csdf_to_json",
    "csdf_from_json",
]
