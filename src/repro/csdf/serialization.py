"""JSON serialisation of CSDF graphs.

Mirrors :mod:`repro.sdf.serialization`: per-actor phase execution-time
sequences and per-channel rate sequences are stored as JSON arrays.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.csdf.graph import CSDFGraph


def csdf_to_dict(graph: CSDFGraph) -> Dict[str, Any]:
    """A JSON-serialisable dictionary capturing the full CSDF graph."""
    return {
        "name": graph.name,
        "actors": [
            {"name": a.name, "execution_times": list(a.execution_times)}
            for a in graph.actors
        ],
        "channels": [
            {
                "name": c.name,
                "src": c.src,
                "dst": c.dst,
                "productions": list(c.productions),
                "consumptions": list(c.consumptions),
                "tokens": c.tokens,
            }
            for c in graph.channels
        ],
    }


def csdf_from_dict(
    data: Dict[str, Any], source: Optional[str] = None
) -> CSDFGraph:
    """Inverse of :func:`csdf_to_dict`.

    ``source`` (the file being parsed, when known) is stamped onto the
    graph together with per-element field provenance so lint findings
    can point back into the document.
    """
    graph = CSDFGraph(data.get("name", "csdf"))
    graph.source = source
    for index, actor in enumerate(data.get("actors", [])):
        graph.add_actor(
            actor["name"], [int(t) for t in actor["execution_times"]]
        )
        graph.provenance[("actor", actor["name"])] = f"actors[{index}]"
    for index, channel in enumerate(data.get("channels", [])):
        graph.add_channel(
            channel["name"],
            channel["src"],
            channel["dst"],
            [int(r) for r in channel["productions"]],
            [int(r) for r in channel["consumptions"]],
            int(channel.get("tokens", 0)),
        )
        graph.provenance[("channel", channel["name"])] = f"channels[{index}]"
    return graph


def csdf_to_json(graph: CSDFGraph, indent: int = 2) -> str:
    return json.dumps(csdf_to_dict(graph), indent=indent)


def csdf_from_json(text: str, source: Optional[str] = None) -> CSDFGraph:
    return csdf_from_dict(json.loads(text), source=source)
