"""Random CSDF generation by phase-splitting random SDF graphs.

A CSDF graph is obtained from a live SDF graph by splitting each
actor's single firing into ``k`` phases whose execution times sum to
the original and whose per-channel rate sequences sum to the original
rates.  Splitting can only *advance* behaviour (each phase consumes a
part of the inputs no earlier than the whole, produces a part of the
outputs no later), so the result is consistent and live by
construction, and its throughput dominates the original's — the
property the test suite checks against
:func:`repro.csdf.convert.aggregate_csdf_to_sdf`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.csdf.graph import CSDFGraph
from repro.generate.random_sdf import RandomSDFParameters, random_sdfg
from repro.sdf.graph import SDFGraph


def _split_amount(total: int, parts: int, rng: random.Random) -> List[int]:
    """Split ``total`` into ``parts`` non-negative integers summing to it."""
    if parts == 1:
        return [total]
    cuts = sorted(rng.randint(0, total) for _ in range(parts - 1))
    amounts = []
    previous = 0
    for cut in cuts:
        amounts.append(cut - previous)
        previous = cut
    amounts.append(total - previous)
    return amounts


def _split_positive(total: int, parts: int, rng: random.Random) -> List[int]:
    """Split ``total`` into ``parts`` strictly positive integers.

    Requires ``total >= parts``.  Used for phase durations: a
    zero-duration phase between a token-consuming and a token-producing
    phase would create an instantaneous token-return loop, whose
    self-timed firing rate is unbounded (the CSDF analogue of an SDF
    zero-time cycle).
    """
    if total < parts:
        raise ValueError("cannot split into that many positive parts")
    return [1 + part for part in _split_amount(total - parts, parts, rng)]


def split_phases(
    graph: SDFGraph,
    phase_counts: Dict[str, int],
    rng: Optional[random.Random] = None,
) -> CSDFGraph:
    """Split each SDF actor into the given number of CSDF phases.

    Execution times and channel rates are partitioned randomly (but
    reproducibly via ``rng``) across the phases; totals per phase cycle
    equal the original firing, so the repetition structure (in phase
    cycles) is preserved.
    """
    rng = rng or random.Random()
    csdf = CSDFGraph(f"{graph.name}-phased")
    for actor in graph.actors:
        count = max(phase_counts.get(actor.name, 1), 1)
        # each phase must take at least one time unit (see _split_positive)
        count = min(count, max(actor.execution_time, 1))
        times = _split_positive(max(actor.execution_time, count), count, rng)
        csdf.add_actor(actor.name, times)
    for channel in graph.channels:
        src_phases = csdf.actor(channel.src).phase_count
        dst_phases = csdf.actor(channel.dst).phase_count
        productions = _split_amount(channel.production, src_phases, rng)
        consumptions = _split_amount(channel.consumption, dst_phases, rng)
        csdf.add_channel(
            channel.name,
            channel.src,
            channel.dst,
            productions,
            consumptions,
            channel.tokens,
        )
    return csdf


def random_csdf(
    rng: Optional[random.Random] = None,
    parameters: Optional[RandomSDFParameters] = None,
    max_phases: int = 3,
    name: str = "random-csdf",
) -> CSDFGraph:
    """A random consistent, live CSDF graph.

    Generates a live SDF graph first (see
    :func:`repro.generate.random_sdf.random_sdfg`), assigns random
    execution times, then phase-splits every actor.
    """
    rng = rng or random.Random()
    sdf = random_sdfg(parameters, rng, name=name)
    for actor in sdf.actors:
        actor.execution_time = rng.randint(1, 8)
    phase_counts = {
        actor.name: rng.randint(1, max_phases) for actor in sdf.actors
    }
    return split_phases(sdf, phase_counts, rng)
