"""CSDF consistency and liveness.

The CSDF balance equations work on full phase cycles: with ``gamma(a)``
counting complete phase cycles of ``a``, every channel needs
``total_production * gamma(src) = total_consumption * gamma(dst)``.
The firing-level repetition vector is ``gamma(a) * phase_count(a)``.
Liveness is decided, as for SDF, by abstractly executing one complete
iteration phase-accurately.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, List

from repro.csdf.graph import CSDFGraph


class InconsistentCSDFError(ValueError):
    """Raised when a CSDF graph admits no non-trivial repetition vector."""


def _lcm(a: int, b: int) -> int:
    return a // gcd(a, b) * b


def csdf_repetition_vector(
    graph: CSDFGraph, firings: bool = True
) -> Dict[str, int]:
    """The smallest repetition vector of ``graph``.

    ``firings=True`` (default) returns firing counts per iteration
    (phase cycles times phase count); ``firings=False`` returns the
    phase-cycle counts the balance equations are solved in.
    """
    if len(graph) == 0:
        return {}
    fractional: Dict[str, Fraction] = {}
    for seed in graph.actor_names:
        if seed in fractional:
            continue
        fractional[seed] = Fraction(1)
        stack = [seed]
        while stack:
            actor = stack.pop()
            rate = fractional[actor]
            for channel in graph.out_channels(actor):
                implied = (
                    rate * channel.total_production / channel.total_consumption
                )
                known = fractional.get(channel.dst)
                if known is None:
                    fractional[channel.dst] = implied
                    stack.append(channel.dst)
                elif known != implied:
                    raise InconsistentCSDFError(
                        f"graph {graph.name!r}: channel {channel.name!r} "
                        f"implies gamma({channel.dst}) = {implied} != {known}"
                    )
            for channel in graph.in_channels(actor):
                implied = (
                    rate * channel.total_consumption / channel.total_production
                )
                known = fractional.get(channel.src)
                if known is None:
                    fractional[channel.src] = implied
                    stack.append(channel.src)
                elif known != implied:
                    raise InconsistentCSDFError(
                        f"graph {graph.name!r}: channel {channel.name!r} "
                        f"implies gamma({channel.src}) = {implied} != {known}"
                    )

    denominator_lcm = 1
    for value in fractional.values():
        denominator_lcm = _lcm(denominator_lcm, value.denominator)
    cycles = {
        name: int(value * denominator_lcm)
        for name, value in fractional.items()
    }
    overall = 0
    for value in cycles.values():
        overall = gcd(overall, value)
    cycles = {name: value // overall for name, value in cycles.items()}
    if not firings:
        return cycles
    return {
        name: value * graph.actor(name).phase_count
        for name, value in cycles.items()
    }


def is_csdf_consistent(graph: CSDFGraph) -> bool:
    """True when the graph has a non-trivial repetition vector."""
    try:
        csdf_repetition_vector(graph)
    except InconsistentCSDFError:
        return False
    return True


def is_csdf_deadlock_free(graph: CSDFGraph) -> bool:
    """True when one complete iteration executes phase-accurately."""
    remaining = csdf_repetition_vector(graph)
    tokens = {c.name: c.tokens for c in graph.channels}
    fired: Dict[str, int] = {a: 0 for a in graph.actor_names}

    def enabled(actor: str) -> bool:
        phase = fired[actor]
        return all(
            tokens[c.name]
            >= c.consumptions[phase % graph.actor(actor).phase_count]
            for c in graph.in_channels(actor)
        )

    progressed = True
    pending: List[str] = [a for a in graph.actor_names if remaining[a] > 0]
    while progressed:
        progressed = False
        still_pending: List[str] = []
        for actor in pending:
            moved = False
            while remaining[actor] > 0 and enabled(actor):
                phase_count = graph.actor(actor).phase_count
                phase = fired[actor] % phase_count
                for channel in graph.in_channels(actor):
                    tokens[channel.name] -= channel.consumptions[phase]
                for channel in graph.out_channels(actor):
                    tokens[channel.name] += channel.productions[phase]
                fired[actor] += 1
                remaining[actor] -= 1
                moved = True
            if moved:
                progressed = True
            if remaining[actor] > 0:
                still_pending.append(actor)
        pending = still_pending
    return not pending
