"""Conversions between SDF and CSDF.

SDF is the one-phase special case of CSDF, so lifting is lossless in
both directions when every actor has a single phase.  (General
multi-phase CSDF cannot be expressed as an SDF graph of the same
actors; analyses work on the CSDF directly via
:mod:`repro.csdf.throughput`.)
"""

from __future__ import annotations

from repro.csdf.graph import CSDFGraph
from repro.sdf.graph import SDFGraph


def sdf_to_csdf(graph: SDFGraph) -> CSDFGraph:
    """Lift an SDF graph to a single-phase CSDF graph (lossless)."""
    csdf = CSDFGraph(graph.name)
    for actor in graph.actors:
        csdf.add_actor(actor.name, [actor.execution_time])
    for channel in graph.channels:
        csdf.add_channel(
            channel.name,
            channel.src,
            channel.dst,
            [channel.production],
            [channel.consumption],
            channel.tokens,
        )
    return csdf


def aggregate_csdf_to_sdf(graph: CSDFGraph) -> SDFGraph:
    """Conservative SDF abstraction of a CSDF graph.

    Each actor's full phase cycle collapses into one SDF firing: the
    execution time is the cycle's total, each channel's rates are the
    cycle totals.  The abstraction consumes everything at the cycle
    start and produces everything at its end, i.e. strictly no earlier
    than the phased original, so its self-timed throughput is a *lower
    bound* on the CSDF throughput (property-tested in the suite).  It
    can therefore be fed to the SDF-only allocation strategy to obtain
    valid (if pessimistic) guarantees for CSDF applications.
    """
    sdf = SDFGraph(f"{graph.name}-aggregated")
    for actor in graph.actors:
        sdf.add_actor(actor.name, sum(actor.execution_times))
    for channel in graph.channels:
        sdf.add_channel(
            channel.name,
            channel.src,
            channel.dst,
            channel.total_production,
            channel.total_consumption,
            channel.tokens,
        )
    return sdf


def csdf_to_sdf(graph: CSDFGraph) -> SDFGraph:
    """Lower a single-phase CSDF graph back to SDF.

    Raises ``ValueError`` when any actor has more than one phase: the
    phase structure cannot be represented in SDF.
    """
    for actor in graph.actors:
        if actor.phase_count != 1:
            raise ValueError(
                f"actor {actor.name!r} has {actor.phase_count} phases; "
                "multi-phase CSDF has no SDF equivalent — analyse it "
                "directly with repro.csdf.throughput"
            )
    sdf = SDFGraph(graph.name)
    for actor in graph.actors:
        sdf.add_actor(actor.name, actor.execution_times[0])
    for channel in graph.channels:
        sdf.add_channel(
            channel.name,
            channel.src,
            channel.dst,
            channel.productions[0],
            channel.consumptions[0],
            channel.tokens,
        )
    return sdf
