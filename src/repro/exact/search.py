"""The branch-and-bound core of the exact allocator.

The search space is the cross product of actor-to-tile bindings and
discretised TDMA slice widths.  Static orders are *not* independent
decision variables: for every complete binding the deterministic §9.2
list scheduler derives them, so the optimum is exact **relative to the
paper's scheduling policy** (the same restriction the greedy flow
lives under, which is what makes "exact cost <= greedy cost" a sound
differential oracle; see ``docs/EXACT.md``).

Shape of the search:

1. **Binding nodes.**  Actors are branched in decreasing criticality
   order (:func:`repro.core.criticality.binding_order`), candidate
   tiles sorted greedy-style by provisional Eqn. 2 cost so good
   incumbents appear early.  A node is discarded when
   (a) the Section 7 resource constraints are already violated — all
   demands only grow as the binding is extended, so no completion can
   recover; (b) the refined static throughput bound
   (:func:`repro.exact.bounds.partial_throughput_bound`) falls below
   the constraint; or (c) the admissible cost lower bound (partial
   Eqn. 2 loads plus one minimal slice per used tile) already reaches
   the incumbent's cost.  (b) and (c) are the *relaxation* prunes and
   can be disabled with ``prune=False`` — the property tests compare
   both modes to show pruning never changes the optimum.
2. **Leaves.**  A complete binding gets its §9.2 static orders, then a
   depth-first search over per-tile slice widths on the grid
   ``{step, 2*step, ..., wheel_remaining}``.  Throughput is monotone
   non-decreasing in every slice width, so (i) if even the full
   remaining wheels miss the constraint the leaf is dead, (ii) per
   prefix the minimal width that works "with everything after it at
   maximum" is found by binary search and smaller widths need never be
   tried, and (iii) on the last tile the first feasible width is the
   cheapest completion of the prefix.  Every evaluation is one
   constrained state-space exploration whose certificate is kept, so
   the winning allocation carries the same :mod:`repro.verify` evidence
   a greedy allocation does.

With ``slice_step=1`` the slice grid is a superset of anything the
greedy binary search can return, hence for any binding both backends
agree on feasibility and the exact cost lower-bounds the greedy cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.bounds import static_throughput_bound
from repro.appmodel.application import ApplicationGraph
from repro.appmodel.binding import Allocation, Binding, SchedulingFunction
from repro.appmodel.binding_aware import (
    BindingAwareGraph,
    InfeasibleBindingError,
    build_binding_aware_graph,
)
from repro.arch.architecture import ArchitectureGraph
from repro.core.constraints import check_binding_constraints, reservation_for
from repro.core.criticality import binding_order
from repro.core.scheduling import SchedulingError, build_static_order_schedules
from repro.core.tile_cost import CostWeights, tile_cost
from repro.exact.bounds import partial_throughput_bound
from repro.exact.cost import binding_load_cost
from repro.obs import get_metrics
from repro.obs.trace import get_trace
from repro.resilience.budget import Budget, BudgetExceededError
from repro.resilience.faults import fault_point
from repro.throughput.constrained import constrained_throughput
from repro.throughput.state_space import (
    DEFAULT_MAX_STATES,
    StateSpaceExplosionError,
)


@dataclass
class ExactSearchResult:
    """Outcome and work counters of one branch-and-bound run.

    ``allocation`` is ``None`` when the search *proved* the constraint
    infeasible (an exhausted budget raises instead — an unfinished
    search proves nothing).  The counters are deterministic for a fixed
    input, which is what lets the ``exact-small`` bench workload pin
    them.
    """

    allocation: Optional[Allocation]
    #: objective value of ``allocation`` (None when infeasible)
    cost: Optional[Fraction]
    #: binding nodes visited (one per attempted actor-to-tile placement)
    nodes_explored: int
    #: nodes discarded by the bound/incumbent relaxation prunes
    nodes_pruned: int
    #: nodes discarded because Section 7 constraints were violated
    constraint_rejections: int
    #: complete bindings whose slice space was searched
    leaves_evaluated: int
    #: constrained state-space explorations spent
    throughput_checks: int
    #: leaves abandoned on a state-space explosion (documented caveat:
    #: such leaves are treated as infeasible, like the greedy flow does)
    explosions: int

    @property
    def feasible(self) -> bool:
        return self.allocation is not None


@dataclass
class _Stats:
    nodes: int = 0
    pruned: int = 0
    rejected: int = 0
    leaves: int = 0
    checks: int = 0
    explosions: int = 0


@dataclass
class _Incumbent:
    cost: Fraction
    binding: Binding
    schedules: Dict[str, Any]
    slices: Dict[str, int]
    achieved: Fraction
    certificate: Optional[Dict[str, Any]]


@dataclass
class _SliceOutcome:
    slices: Dict[str, int]
    cost: Fraction
    achieved: Fraction
    certificate: Optional[Dict[str, Any]]


def _slice_grid(remaining: int, step: int) -> List[int]:
    """Ascending candidate widths: multiples of ``step`` plus the cap."""
    widths = list(range(step, remaining + 1, step))
    if not widths or widths[-1] != remaining:
        widths.append(remaining)
    return widths


def _search_slices(
    bag: BindingAwareGraph,
    schedules: Dict[str, Any],
    base_cost: Fraction,
    incumbent_cost: Optional[Fraction],
    slice_step: int,
    max_states: int,
    budget: Optional[Budget],
    stats: _Stats,
) -> Optional[_SliceOutcome]:
    """Cheapest feasible slice vector for one complete binding.

    Returns ``None`` when no vector on the grid meets the constraint
    *or* none beats ``incumbent_cost`` (callers cannot distinguish the
    two, and need not: either way the leaf does not improve the
    incumbent).
    """
    application = bag.application
    constraint = application.throughput_constraint
    output_actor = application.output_actor
    names = bag.binding.used_tiles()
    remaining = {
        name: bag.architecture.tile(name).wheel_remaining for name in names
    }
    if any(value < 1 for value in remaining.values()):
        return None
    wheels = {name: bag.architecture.tile(name).wheel for name in names}
    grids = {
        name: _slice_grid(remaining[name], slice_step) for name in names
    }

    obs = get_metrics()
    scheduling = SchedulingFunction()
    for name, schedule in schedules.items():
        scheduling.set_schedule(name, schedule)

    memo: Dict[
        Tuple[int, ...], Tuple[Fraction, Optional[Dict[str, Any]]]
    ] = {}

    def evaluate(
        slices: Dict[str, int],
    ) -> Tuple[Fraction, Optional[Dict[str, Any]]]:
        key = tuple(slices[name] for name in names)
        cached = memo.get(key)
        if cached is not None:
            return cached
        stats.checks += 1
        obs.counter("exact.throughput_checks")
        if budget is not None:
            budget.charge_check()
        for name in names:
            scheduling.set_slice(name, slices[name])
        result = constrained_throughput(
            bag.graph,
            bag.tile_constraints(scheduling),
            max_states=max_states,
            budget=budget,
        )
        value = (result.of(output_actor), result.certificate)
        memo[key] = value
        return value

    # even the full remaining wheels miss the constraint: dead leaf, by
    # monotonicity of throughput in the slice widths
    achieved, _ = evaluate(dict(remaining))
    if achieved < constraint:
        return None

    best: Optional[_SliceOutcome] = None

    def best_known() -> Optional[Fraction]:
        if best is None:
            return incumbent_cost
        if incumbent_cost is None:
            return best.cost
        return min(best.cost, incumbent_cost)

    def minimal_tail(start: int) -> Fraction:
        total = Fraction(0)
        for j in range(start, len(names)):
            total += Fraction(grids[names[j]][0], wheels[names[j]])
        return total

    def extend(
        index: int, chosen: Dict[str, int], prefix_cost: Fraction
    ) -> None:
        nonlocal best
        if budget is not None:
            budget.checkpoint()
        name = names[index]
        grid = grids[name]
        last = index == len(names) - 1

        def feasible_with_max_rest(width: int) -> bool:
            candidate = dict(chosen)
            candidate[name] = width
            for j in range(index + 1, len(names)):
                candidate[names[j]] = remaining[names[j]]
            rate, _ = evaluate(candidate)
            return rate >= constraint

        # smallest width on the grid that can still reach the
        # constraint when every later tile takes its whole wheel;
        # anything below it is infeasible for *every* completion
        low, high = 0, len(grid) - 1
        if not feasible_with_max_rest(grid[high]):
            return
        while low < high:
            mid = (low + high) // 2
            if feasible_with_max_rest(grid[mid]):
                high = mid
            else:
                low = mid + 1

        tail = minimal_tail(index + 1)
        for position in range(low, len(grid)):
            width = grid[position]
            cost = prefix_cost + Fraction(width, wheels[name])
            known = best_known()
            if known is not None and cost + tail >= known:
                break  # widths only grow from here
            candidate = dict(chosen)
            candidate[name] = width
            if last:
                rate, certificate = evaluate(candidate)
                if rate >= constraint:
                    best = _SliceOutcome(
                        dict(candidate), cost, rate, certificate
                    )
                break  # minimal feasible width; larger only costs more
            extend(index + 1, candidate, cost)

    extend(0, {}, base_cost)
    return best


def exact_search(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    weights: Optional[CostWeights] = None,
    binding: Optional[Binding] = None,
    slice_step: int = 1,
    prune: bool = True,
    cycle_limit: Optional[int] = 20000,
    max_states: int = DEFAULT_MAX_STATES,
    budget: Optional[Budget] = None,
) -> ExactSearchResult:
    """Provably cheapest feasible allocation, or a proof there is none.

    ``weights`` defaults to :meth:`CostWeights.default` and must be
    non-negative (the admissible cost bound relies on monotone loads).
    A pre-computed (possibly partial) ``binding`` fixes those actors
    and branches only over the rest.  ``slice_step`` coarsens the slice
    grid; with the default of 1 the grid dominates everything the
    greedy search can return.  ``prune=False`` disables the relaxation
    prunes (exhaustive enumeration — the property-test oracle).

    The search is deterministic: identical inputs yield the identical
    allocation and identical work counters.  A :class:`Budget` is
    checked at every node and threaded into every engine call; on
    exhaustion the raised :class:`BudgetExceededError` carries the
    incumbent so far under ``error.partial["exact"]``.
    """
    if slice_step < 1:
        raise ValueError("slice_step must be >= 1")
    weights = weights if weights is not None else CostWeights.default()
    if min(weights.as_tuple()) < 0:
        raise ValueError(
            "exact search requires non-negative cost weights "
            f"(got {weights})"
        )
    application.check_complete()
    if budget is not None:
        budget.start()
    fault_point("exact.search", application=application.name)

    obs = get_metrics()
    tr = get_trace()
    started = tr.now() if tr.enabled else 0.0
    constraint = application.throughput_constraint
    stats = _Stats()
    incumbent: Optional[_Incumbent] = None

    partial = binding.copy() if binding is not None else Binding()
    order = [
        actor
        for actor in binding_order(application, cycle_limit=cycle_limit)
        if not partial.is_bound(actor)
    ]
    tile_rank = {
        name: rank for rank, name in enumerate(architecture.tile_names)
    }

    def finish(span: Any) -> ExactSearchResult:
        allocation: Optional[Allocation] = None
        cost: Optional[Fraction] = None
        if incumbent is not None:
            scheduling = SchedulingFunction()
            for tile_name, schedule in incumbent.schedules.items():
                scheduling.set_schedule(tile_name, schedule)
            for tile_name, width in incumbent.slices.items():
                scheduling.set_slice(tile_name, width)
            reservation = reservation_for(
                application, architecture, incumbent.binding, incumbent.slices
            )
            allocation = Allocation(
                application=application,
                binding=incumbent.binding,
                scheduling=scheduling,
                reservation=reservation,
                achieved_throughput=incumbent.achieved,
                throughput_checks=stats.checks,
                certificate=incumbent.certificate,
            )
            cost = incumbent.cost
        if obs.enabled:
            obs.counter("exact.searches")
            obs.counter("exact.nodes_explored", stats.nodes)
            obs.counter("exact.nodes_pruned", stats.pruned)
            obs.counter("exact.leaves_evaluated", stats.leaves)
            span.set("outcome", "feasible" if allocation else "infeasible")
            span.set("nodes_explored", stats.nodes)
            span.set("throughput_checks", stats.checks)
        if tr.enabled:
            tr.complete(
                "exact",
                "search",
                started,
                tr.now(),
                application=application.name,
                feasible=allocation is not None,
                cost=str(cost) if cost is not None else None,
                nodes_explored=stats.nodes,
                nodes_pruned=stats.pruned,
                leaves_evaluated=stats.leaves,
                throughput_checks=stats.checks,
            )
        return ExactSearchResult(
            allocation=allocation,
            cost=cost,
            nodes_explored=stats.nodes,
            nodes_pruned=stats.pruned,
            constraint_rejections=stats.rejected,
            leaves_evaluated=stats.leaves,
            throughput_checks=stats.checks,
            explosions=stats.explosions,
        )

    with obs.span("exact.search", application=application.name) as span:
        # static pre-gate: a constraint above the binding-independent
        # bound needs no search at all (mirrors the pre-flight gate)
        gate = static_throughput_bound(application, architecture)
        if gate is not None and gate < constraint:
            if obs.enabled:
                obs.counter("exact.static_rejections")
            return finish(span)

        def admissible(current: Binding) -> bool:
            """False when no completion of ``current`` can matter."""
            bound = partial_throughput_bound(
                application, architecture, current
            )
            if bound is not None and bound < constraint:
                return False
            if incumbent is not None:
                lower = binding_load_cost(
                    application, architecture, current, weights
                )
                for tile_name in current.used_tiles():
                    tile = architecture.tile(tile_name)
                    minimum = max(
                        0, min(slice_step, tile.wheel_remaining)
                    )
                    lower += Fraction(minimum, tile.wheel)
                if lower >= incumbent.cost:
                    return False
            return True

        def evaluate_leaf(current: Binding) -> None:
            nonlocal incumbent
            stats.leaves += 1
            try:
                bag = build_binding_aware_graph(
                    application, architecture, current
                )
                schedules = build_static_order_schedules(
                    bag, max_states=max_states, budget=budget
                )
            except (InfeasibleBindingError, SchedulingError):
                return
            except StateSpaceExplosionError:
                stats.explosions += 1
                return
            base = binding_load_cost(
                application, architecture, current, weights
            )
            try:
                outcome = _search_slices(
                    bag,
                    schedules,
                    base,
                    incumbent.cost if incumbent is not None else None,
                    slice_step,
                    max_states,
                    budget,
                    stats,
                )
            except StateSpaceExplosionError:
                stats.explosions += 1
                return
            if outcome is None:
                return
            if incumbent is None or outcome.cost < incumbent.cost:
                incumbent = _Incumbent(
                    cost=outcome.cost,
                    binding=current.copy(),
                    schedules=dict(schedules),
                    slices=outcome.slices,
                    achieved=outcome.achieved,
                    certificate=outcome.certificate,
                )
                if obs.enabled:
                    obs.counter("exact.incumbents")
                if tr.enabled:
                    tr.instant(
                        "exact",
                        "incumbent",
                        application=application.name,
                        cost=str(outcome.cost),
                        tiles_used=len(current.used_tiles()),
                    )

        def descend(index: int) -> None:
            if budget is not None:
                budget.checkpoint()
            if index == len(order):
                evaluate_leaf(partial)
                return
            actor = order[index]
            requirements = application.requirements(actor)
            candidates = [
                tile.name
                for tile in architecture.tiles
                if requirements.supports(tile.processor_type)
            ]

            def provisional(tile_name: str) -> float:
                partial.bind(actor, tile_name)
                try:
                    return tile_cost(
                        application, architecture, partial, tile_name, weights
                    )
                finally:
                    partial.unbind(actor)

            candidates.sort(key=lambda t: (provisional(t), tile_rank[t]))
            for tile_name in candidates:
                partial.bind(actor, tile_name)
                stats.nodes += 1
                if not check_binding_constraints(
                    application, architecture, partial
                ):
                    stats.rejected += 1
                elif prune and not admissible(partial):
                    stats.pruned += 1
                else:
                    descend(index + 1)
                partial.unbind(actor)

        try:
            descend(0)
        except BudgetExceededError as error:
            progress: Dict[str, Any] = {
                "nodes_explored": stats.nodes,
                "nodes_pruned": stats.pruned,
                "leaves_evaluated": stats.leaves,
                "throughput_checks": stats.checks,
            }
            if incumbent is not None:
                progress["incumbent_cost"] = str(incumbent.cost)
                progress["incumbent_binding"] = dict(
                    incumbent.binding.assignment
                )
                progress["incumbent_slices"] = dict(incumbent.slices)
            error.partial.setdefault("exact", progress)
            if obs.enabled:
                obs.counter("exact.budget_exceeded")
                span.set("outcome", "budget-exhausted")
                span.set("reason", error.reason)
            raise
        return finish(span)
