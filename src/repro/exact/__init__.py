"""``repro.exact`` — exact branch-and-bound resource allocation.

The paper's flow (Section 9) is a greedy heuristic: it commits each
binding, static order and slice width once and never proves it found
the cheapest feasible allocation.  This package is the exact
counterpart called for by ROADMAP item 4: a pure-python branch-and-bound
search over actor-to-tile bindings and discretised TDMA slice widths,
selectable through the :class:`~repro.core.strategy.ResourceAllocator`
facade with ``backend="exact"`` (CLI: ``repro-alloc allocate --backend
exact``).

* :mod:`repro.exact.cost` — the rational-arithmetic objective the
  search minimises (Eqn. 2 tile loads plus the occupied TDMA share);
* :mod:`repro.exact.bounds` — partial-binding refinements of the sound
  static bounds in :mod:`repro.analysis.bounds`, used as the pruning
  relaxation;
* :mod:`repro.exact.search` — the branch-and-bound core; every leaf is
  verified by the existing constrained state-space engine, so returned
  allocations carry a :mod:`repro.verify` certificate like greedy ones.

See ``docs/EXACT.md`` for the formulation, the bounding argument, and
the optimality-gap differential harness built on top
(``tests/test_differential_allocation.py``).
"""

from repro.exact.bounds import partial_throughput_bound
from repro.exact.cost import (
    allocation_cost,
    binding_load_cost,
    slice_cost,
)
from repro.exact.search import ExactSearchResult, exact_search

__all__ = [
    "ExactSearchResult",
    "allocation_cost",
    "binding_load_cost",
    "exact_search",
    "partial_throughput_bound",
    "slice_cost",
]
