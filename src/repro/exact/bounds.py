"""Partial-binding refinements of the static throughput bounds.

:mod:`repro.analysis.bounds` bounds what *any* allocation can deliver
using each actor's fastest supported execution time.  During the
branch-and-bound search part of the binding is already decided, which
sharpens both arguments without losing soundness:

* a bound actor's execution time is its *actual* time on the assigned
  tile's processor type (never faster than ``tau_min``), tightening the
  per-actor serialisation bound and the work term of the utilisation
  bound;
* actors sharing a tile serialise *jointly*: tile ``t`` can devote at
  most ``wheel_remaining(t) / wheel(t)`` of real time to the
  application, and one graph iteration needs
  ``sum_{a on t} gamma(a) * tau(a)`` time on it, giving the per-tile
  utilisation bound
  ``lambda <= gamma(out) * (r_t / w_t) / sum_{a on t} gamma(a)*tau(a)``.

Every completion of the partial binding only *adds* actors to tiles and
only assigns supported (hence ``>= tau_min``) execution times, so each
refined bound is an upper bound on the throughput of every completion —
exactly the property the search needs: a subtree whose bound is below
the constraint contains no feasible leaf and can be discarded.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.analysis.bounds import minimal_execution_times
from repro.appmodel.application import ApplicationGraph
from repro.appmodel.binding import Binding
from repro.arch.architecture import ArchitectureGraph


def partial_throughput_bound(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    binding: Binding,
) -> Optional[Fraction]:
    """Sound throughput upper bound over all completions of ``binding``.

    Returns ``None`` when nothing constrains the rate (no actor carries
    execution-time requirements).  With an empty binding this reduces
    to :func:`repro.analysis.bounds.static_throughput_bound` minus the
    per-tile term (which then has no used tiles to range over).
    """
    gamma = application.gamma
    gamma_out = gamma[application.output_actor]
    tau_min = minimal_execution_times(application)

    bound: Optional[Fraction] = None

    def tighten(candidate: Fraction) -> None:
        nonlocal bound
        if bound is None or candidate < bound:
            bound = candidate

    # -- per-actor serialisation + work for the global utilisation -----
    work = 0
    for actor in application.graph.actor_names:
        if binding.is_bound(actor):
            tile = architecture.tile(binding.tile_of(actor))
            tau = application.requirements(actor).execution_time(
                tile.processor_type
            )
        else:
            minimum = tau_min.get(actor)
            if minimum is None:
                continue
            tau = minimum
        if tau < 1:
            continue
        work += gamma[actor] * tau
        tighten(Fraction(gamma_out, gamma[actor] * tau))

    # -- global utilisation: platform capacity over total work ---------
    if work > 0:
        capacity = Fraction(0)
        for tile in architecture.tiles:
            remaining = max(0, tile.wheel_remaining)
            capacity += Fraction(remaining, tile.wheel)
        tighten(Fraction(gamma_out) * capacity / work)

    # -- per-tile utilisation: co-located actors share one wheel -------
    for tile_name in binding.used_tiles():
        tile = architecture.tile(tile_name)
        tile_work = sum(
            gamma[actor]
            * application.requirements(actor).execution_time(
                tile.processor_type
            )
            for actor in binding.actors_on(tile_name)
        )
        if tile_work > 0:
            share = Fraction(max(0, tile.wheel_remaining), tile.wheel)
            tighten(Fraction(gamma_out) * share / tile_work)

    return bound
