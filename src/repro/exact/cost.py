"""The objective of the exact backend, in exact rational arithmetic.

The greedy strategy uses Eqn. 2 (``c1*l_p + c2*l_m + c3*l_c``) only to
*rank* candidate tiles, so ``float`` precision is fine there.  The
branch-and-bound search instead *compares* complete allocations and
prunes subtrees against an incumbent, where float rounding could flip a
comparison and silently discard the optimum — so everything here is a
:class:`fractions.Fraction`.

The objective is::

    cost(B, S) = sum_{t in used(B)} (c1*l_p(t) + c2*l_m(t) + c3*l_c(t))
               + sum_{t in used(B)} omega_t / wheel_t

i.e. the Eqn. 2 load of every used tile plus the fraction of each TDMA
wheel the allocation occupies.  The slice term makes the objective
strictly monotone in the slice widths, so "cheapest feasible
allocation" coincides with the paper's goal of reserving as little of
the platform as possible for the application.

Both terms are monotone non-decreasing when a *partial* binding is
extended (every load numerator only grows with more bound actors and
channels, denominators are fixed by the architecture state), which is
what makes :func:`binding_load_cost` of a partial binding an admissible
lower bound for the search — provided all weights are non-negative,
which :func:`repro.exact.search.exact_search` enforces.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Tuple

from repro.appmodel.application import ApplicationGraph
from repro.appmodel.binding import Binding
from repro.arch.architecture import ArchitectureGraph
from repro.core.tile_cost import CostWeights, tile_loads


def weight_fractions(
    weights: CostWeights,
) -> Tuple[Fraction, Fraction, Fraction]:
    """``(c1, c2, c3)`` as exact fractions.

    ``Fraction(float)`` is exact (binary expansion), so ranking by this
    rational cost agrees with the float Eqn. 2 wherever the float
    arithmetic did not round.
    """
    return (
        Fraction(weights.processing),
        Fraction(weights.memory),
        Fraction(weights.communication),
    )


def binding_load_cost(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    binding: Binding,
    weights: CostWeights,
) -> Fraction:
    """Eqn. 2 summed over the used tiles of a (possibly partial) binding."""
    c1, c2, c3 = weight_fractions(weights)
    total = Fraction(0)
    for tile_name in binding.used_tiles():
        load = tile_loads(application, architecture, binding, tile_name)
        total += c1 * load.processing + c2 * load.memory + c3 * load.communication
    return total


def slice_cost(
    architecture: ArchitectureGraph, slices: Dict[str, int]
) -> Fraction:
    """The occupied TDMA share: ``sum_t omega_t / wheel_t``."""
    total = Fraction(0)
    for tile_name, width in slices.items():
        total += Fraction(width, architecture.tile(tile_name).wheel)
    return total


def allocation_cost(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    binding: Binding,
    slices: Dict[str, int],
    weights: CostWeights,
) -> Fraction:
    """The full objective of one complete allocation.

    The differential harness evaluates this on both the greedy and the
    exact backend's output (same weights, same architecture state) to
    quantify the heuristic's optimality gap.
    """
    return binding_load_cost(
        application, architecture, binding, weights
    ) + slice_cost(architecture, slices)
