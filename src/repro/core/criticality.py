"""Actor criticality estimation (paper Eqn. 1).

The throughput of an SDFG is limited by its critical cycle, but finding
it exactly requires the (potentially exponential) HSDFG.  The binding
step therefore estimates criticality directly on the SDFG: for every
actor, the maximum over simple cycles through it of

    sum_{b in cycle} gamma(b) * max_pt tau(b, pt)
    -----------------------------------------------
    sum_{d=(u,v,p,q) in cycle} Tok(d) / q

Actors on no cycle still carry work; the paper leaves their cost
undefined, so we fall back to the cycle-free workload ``gamma(a) *
tau_max(a)`` (always smaller than any cycle containing the actor would
give, since a cycle adds the other actors' work).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Union

from repro.appmodel.application import ApplicationGraph
from repro.sdf.cycles import per_actor_max_cycle_ratio

Criticality = Union[Fraction, float]


def actor_criticality(
    application: ApplicationGraph,
    cycle_limit: Optional[int] = 20000,
) -> Dict[str, Criticality]:
    """Eqn. 1 cost for every actor of ``application``.

    ``float('inf')`` marks actors on a token-free cycle (a modelling
    error that would deadlock; they bind first so the failure surfaces
    early).  ``cycle_limit`` caps cycle enumeration on dense graphs.
    """
    gamma = application.gamma
    weights = {
        name: gamma[name]
        * application.requirements(name).worst_case_execution_time
        for name in application.graph.actor_names
    }
    on_cycles = per_actor_max_cycle_ratio(
        application.graph, weights, limit=cycle_limit
    )
    result: Dict[str, Criticality] = {}
    for name in application.graph.actor_names:
        result[name] = on_cycles.get(name, Fraction(weights[name]))
    return result


def binding_order(
    application: ApplicationGraph,
    cycle_limit: Optional[int] = 20000,
) -> List[str]:
    """Actors sorted by decreasing criticality (stable: ties keep graph order)."""
    cost = actor_criticality(application, cycle_limit=cycle_limit)
    names = application.graph.actor_names
    return sorted(names, key=lambda a: (-cost[a], names.index(a)))
