"""The resource-binding step (paper Section 9.1).

Actors are processed in decreasing criticality order.  For every actor
the candidate tiles (those whose processor type supports it) are sorted
by the Eqn. 2 cost *with the actor provisionally bound there*; the first
candidate that keeps all Section 7 constraints satisfied wins.  When no
tile fits, the problem is infeasible.

A load-balancing optimisation pass then revisits the actors in reverse
order: each actor is unbound, the candidate tiles are re-sorted by the
cost of the binding *without* the actor, and the actor is re-bound to
the first feasible candidate.  The original tile is always among the
candidates, so the pass cannot fail.
"""

from __future__ import annotations

from typing import List, Optional

from repro.appmodel.application import ApplicationGraph
from repro.appmodel.binding import Binding
from repro.arch.architecture import ArchitectureGraph
from repro.core.constraints import binding_violations, check_binding_constraints
from repro.core.criticality import binding_order
from repro.core.tile_cost import CostWeights, tile_cost
from repro.obs import get_metrics
from repro.resilience.budget import Budget


class BindingError(RuntimeError):
    """Raised when no valid binding exists for some actor."""


def _candidate_tiles(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    actor: str,
) -> List[str]:
    requirements = application.requirements(actor)
    return [
        tile.name
        for tile in architecture.tiles
        if requirements.supports(tile.processor_type)
    ]


def bind_application(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    weights: CostWeights,
    optimise: bool = True,
    cycle_limit: Optional[int] = 20000,
    budget: Optional[Budget] = None,
) -> Binding:
    """Bind every actor of ``application`` to a tile (Section 9.1).

    Raises :class:`BindingError` when some actor cannot be placed
    without violating the resource constraints.  ``optimise=False``
    skips the reverse-order rebinding pass (used by the ablation
    benchmarks).  A :class:`Budget` deadline is checked once per actor.
    """
    application.check_complete()
    obs = get_metrics()
    order = binding_order(application, cycle_limit=cycle_limit)
    binding = Binding()
    retries = 0

    for actor in order:
        if budget is not None:
            budget.checkpoint()
        candidates = _candidate_tiles(application, architecture, actor)
        if not candidates:
            raise BindingError(
                f"actor {actor!r} is supported by no tile of "
                f"{architecture.name!r}"
            )

        def provisional_cost(tile_name: str) -> float:
            binding.bind(actor, tile_name)
            try:
                return tile_cost(
                    application, architecture, binding, tile_name, weights
                )
            finally:
                binding.unbind(actor)

        tile_order = {name: i for i, name in enumerate(architecture.tile_names)}
        candidates.sort(key=lambda t: (provisional_cost(t), tile_order[t]))

        placed = False
        for tile_name in candidates:
            binding.bind(actor, tile_name)
            if check_binding_constraints(application, architecture, binding):
                placed = True
                break
            binding.unbind(actor)
            retries += 1
        if not placed:
            violations = []
            for tile_name in candidates[:1]:
                binding.bind(actor, tile_name)
                violations = binding_violations(
                    application, architecture, binding
                )
                binding.unbind(actor)
            raise BindingError(
                f"no feasible tile for actor {actor!r}; e.g. on "
                f"{candidates[0]!r}: "
                + "; ".join(str(v) for v in violations)
            )

    if obs.enabled:
        obs.counter("binding.actors_bound", len(order))
        obs.counter("binding.retries", retries)
    if optimise:
        _rebalance(
            application, architecture, binding, order, weights, budget=budget
        )
    return binding


def _rebalance(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    binding: Binding,
    order: List[str],
    weights: CostWeights,
    budget: Optional[Budget] = None,
) -> None:
    """Reverse-order rebinding pass (always succeeds)."""
    obs = get_metrics()
    moves = 0
    tile_order = {name: i for i, name in enumerate(architecture.tile_names)}
    for actor in reversed(order):
        if budget is not None:
            budget.checkpoint()
        original = binding.tile_of(actor)
        binding.unbind(actor)
        candidates = _candidate_tiles(application, architecture, actor)
        # Cost of the binding *without* the actor steers the re-sort.
        candidates.sort(
            key=lambda t: (
                tile_cost(application, architecture, binding, t, weights),
                tile_order[t],
            )
        )
        placed = False
        for tile_name in candidates:
            binding.bind(actor, tile_name)
            if check_binding_constraints(application, architecture, binding):
                placed = True
                break
            binding.unbind(actor)
        if not placed:  # pragma: no cover - original tile always fits
            binding.bind(actor, original)
        elif binding.tile_of(actor) != original:
            moves += 1
    if obs.enabled:
        obs.counter("binding.rebalance_moves", moves)
