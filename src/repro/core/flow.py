"""Multi-application allocation flow (paper Section 10.1).

Applications are allocated one after the other on the same architecture
until the first failure; each success commits its resource reservation,
so later applications only see the remaining capacity.  The number of
applications placed is the paper's quality metric (Table 4), and the
total occupied resources at the stopping point its efficiency metric
(Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional

from repro.appmodel.application import ApplicationGraph
from repro.appmodel.binding import Allocation
from repro.arch.architecture import ArchitectureGraph
from repro.core.strategy import AllocationError, ResourceAllocator
from repro.core.tile_cost import CostWeights
from repro.obs import get_metrics


@dataclass
class FlowResult:
    """Outcome of one allocate-until-failure run."""

    allocations: List[Allocation] = field(default_factory=list)
    failed_application: Optional[str] = None
    failure_reason: Optional[str] = None
    #: occupied resources summed over tiles when the flow stopped
    resource_usage: Dict[str, int] = field(default_factory=dict)
    #: architecture capacity summed over tiles (for utilisation ratios)
    resource_capacity: Dict[str, int] = field(default_factory=dict)
    #: per-application outcome records: name, outcome ("allocated" /
    #: "failed"), wall-clock seconds, throughput checks, achieved rate
    application_stats: List[Dict[str, object]] = field(default_factory=list)

    @property
    def applications_bound(self) -> int:
        return len(self.allocations)

    @property
    def total_throughput_checks(self) -> int:
        return sum(a.throughput_checks for a in self.allocations)

    def utilisation(self) -> Dict[str, float]:
        """Occupied fraction per resource kind."""
        return {
            key: (
                self.resource_usage[key] / self.resource_capacity[key]
                if self.resource_capacity.get(key)
                else 0.0
            )
            for key in self.resource_usage
        }


def allocate_until_failure(
    architecture: ArchitectureGraph,
    applications: Iterable[ApplicationGraph],
    allocator: Optional[ResourceAllocator] = None,
    weights: Optional[CostWeights] = None,
    continue_after_failure: bool = False,
) -> FlowResult:
    """Allocate ``applications`` in order on ``architecture``.

    The architecture is mutated (reservations are committed); pass a
    copy when the original must stay clean.  By default the flow stops
    at the first failure (the paper's conservative estimate);
    ``continue_after_failure=True`` keeps trying the remaining
    applications (the improvement the paper suggests in §10.1).
    """
    if allocator is None:
        allocator = ResourceAllocator(weights=weights or CostWeights(1, 1, 1))
    elif weights is not None:
        raise ValueError("pass either an allocator or weights, not both")

    obs = get_metrics()
    result = FlowResult()
    for application in applications:
        started = perf_counter()
        with obs.span("flow.application", application=application.name) as span:
            try:
                allocation = allocator.allocate(application, architecture)
            except AllocationError as error:
                obs.counter("flow.failures")
                span.set("outcome", "failed")
                result.application_stats.append(
                    {
                        "application": application.name,
                        "outcome": "failed",
                        "seconds": perf_counter() - started,
                        "reason": str(error),
                    }
                )
                if result.failed_application is None:
                    result.failed_application = application.name
                    result.failure_reason = str(error)
                if not continue_after_failure:
                    break
                continue
            allocation.reservation.commit(architecture)
            result.allocations.append(allocation)
            obs.counter("flow.allocated")
            span.set("outcome", "allocated")
            result.application_stats.append(
                {
                    "application": application.name,
                    "outcome": "allocated",
                    "seconds": perf_counter() - started,
                    "throughput_checks": allocation.throughput_checks,
                    "achieved_throughput": str(allocation.achieved_throughput),
                    "tiles_used": len(allocation.binding.used_tiles()),
                }
            )
    result.resource_usage = architecture.total_usage()
    result.resource_capacity = architecture.total_capacity()
    if obs.enabled:
        obs.gauge("flow.applications_bound", result.applications_bound)
        obs.counter(
            "flow.throughput_checks", result.total_throughput_checks
        )
    return result
