"""Multi-application allocation flow (paper Section 10.1).

Applications are allocated one after the other on the same architecture
until the first failure; each success commits its resource reservation,
so later applications only see the remaining capacity.  The number of
applications placed is the paper's quality metric (Table 4), and the
total occupied resources at the stopping point its efficiency metric
(Table 5).

The flow is hardened for long batch runs: a shared
:class:`~repro.resilience.budget.Budget` bounds the whole run,
``degrade=True`` walks the :mod:`repro.resilience.policy` ladder
instead of failing outright when the exact strategy runs out of search
resources, and an unexpected exception from one application is isolated
as an ``"error"`` outcome rather than aborting the batch.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.appmodel.application import ApplicationGraph
from repro.appmodel.binding import Allocation
from repro.arch.architecture import ArchitectureGraph
from repro.core.strategy import AllocationError, ResourceAllocator
from repro.core.tile_cost import CostWeights
from repro.obs import get_metrics
from repro.obs.trace import get_trace
from repro.resilience.budget import Budget, BudgetExceededError
from repro.resilience.policy import DEFAULT_LADDER, Rung, resilient_allocate


@dataclass
class FlowResult:
    """Outcome of one allocate-until-failure run."""

    allocations: List[Allocation] = field(default_factory=list)
    #: ladder rung per committed allocation (parallel to ``allocations``;
    #: None when the exact strategy ran without the degradation ladder)
    rungs: List[Optional[str]] = field(default_factory=list)
    failed_application: Optional[str] = None
    failure_reason: Optional[str] = None
    #: occupied resources summed over tiles when the flow stopped
    resource_usage: Dict[str, int] = field(default_factory=dict)
    #: architecture capacity summed over tiles (for utilisation ratios)
    resource_capacity: Dict[str, int] = field(default_factory=dict)
    #: one record per attempted application, uniform schema (see
    #: :func:`_stat`): every record has the same keys, with ``None``
    #: where a key does not apply to the outcome.  ``outcome`` is one of
    #: ``"allocated"``, ``"degraded"``, ``"rejected"``, ``"failed"``,
    #: ``"budget-exhausted"`` or ``"error"``.
    application_stats: List[Dict[str, object]] = field(default_factory=list)

    @property
    def applications_bound(self) -> int:
        return len(self.allocations)

    @property
    def degraded_applications(self) -> int:
        """Applications placed by a fallback rung, not the exact strategy."""
        return sum(
            1
            for record in self.application_stats
            if record["outcome"] == "degraded"
        )

    @property
    def total_throughput_checks(self) -> int:
        return sum(a.throughput_checks for a in self.allocations)

    def utilisation(self) -> Dict[str, float]:
        """Occupied fraction per resource kind."""
        return {
            key: (
                self.resource_usage[key] / self.resource_capacity[key]
                if self.resource_capacity.get(key)
                else 0.0
            )
            for key in self.resource_usage
        }


def _stat(
    application: str,
    outcome: str,
    seconds: float,
    reason: Optional[str] = None,
    throughput_checks: Optional[int] = None,
    achieved_throughput: Optional[str] = None,
    tiles_used: Optional[int] = None,
    rung: Optional[str] = None,
) -> Dict[str, object]:
    """One ``application_stats`` record; every key always present."""
    return {
        "application": application,
        "outcome": outcome,
        "seconds": seconds,
        "reason": reason,
        "throughput_checks": throughput_checks,
        "achieved_throughput": achieved_throughput,
        "tiles_used": tiles_used,
        "rung": rung,
    }


def allocate_until_failure(
    architecture: ArchitectureGraph,
    applications: Iterable[ApplicationGraph],
    allocator: Optional[ResourceAllocator] = None,
    weights: Optional[CostWeights] = None,
    continue_after_failure: bool = False,
    budget: Optional[Budget] = None,
    degrade: bool = False,
    ladder: Sequence[Rung] = DEFAULT_LADDER,
    checkpoint_path: Optional[str] = None,
    resume: Optional[Union[str, Dict[str, Any]]] = None,
    preflight: bool = True,
) -> FlowResult:
    """Allocate ``applications`` in order on ``architecture``.

    The architecture is mutated (reservations are committed); pass a
    copy when the original must stay clean.  By default the flow stops
    at the first failure (the paper's conservative estimate);
    ``continue_after_failure=True`` keeps trying the remaining
    applications (the improvement the paper suggests in §10.1).

    A ``budget`` is shared by the whole run.  With ``degrade=False`` an
    exhausted budget records a ``"budget-exhausted"`` outcome (treated
    like a failure for the stopping rule); with ``degrade=True`` each
    application descends ``ladder`` instead, so a tight deadline yields
    conservative-but-complete allocations (``"degraded"`` outcomes)
    rather than a truncated flow.  An unexpected exception from one
    application — a bug, a malformed graph, an injected fault — is
    recorded as ``"error"`` and isolated from the other applications.

    With ``checkpoint_path`` set the flow is crash-safe: after every
    successful commit a flow checkpoint (kind ``"flow"``, the committed
    allocations in full) is atomically rewritten at that path, and an
    application interrupted mid-exploration leaves its engine frontier
    in the name-scoped file ``{checkpoint_path}.{application}.json``
    (removed again once that application eventually commits).  Passing
    a previously written flow checkpoint as ``resume`` re-applies the
    recorded commits without re-running their searches and continues
    with the remaining applications.

    With ``preflight=True`` (default) every application first passes
    through the static analyser (:func:`repro.analysis.preflight_check`)
    against the architecture's *current* occupancy.  An error-severity
    finding — inconsistent rates, structural deadlock, an actor without
    a Γ entry, a throughput constraint above the static bounds — proves
    no allocation exists, so the application is recorded as
    ``"rejected"`` without exploring a single state (treated like a
    failure for the stopping rule).
    """
    if allocator is None:
        allocator = ResourceAllocator(weights=weights or CostWeights(1, 1, 1))
    elif weights is not None:
        raise ValueError("pass either an allocator or weights, not both")
    if budget is not None:
        budget.start()

    obs = get_metrics()
    tr = get_trace()
    result = FlowResult()

    completed: List[str] = []  # committed application names, in order
    #: per name, how many upcoming occurrences were already committed by
    #: the resumed run and must be skipped (count-based so flows with
    #: repeated application names resume correctly)
    skip_restored: Dict[str, int] = {}
    committed_bundles: List[Dict[str, Any]] = []
    committed_stats: List[Dict[str, object]] = []
    if resume is not None:
        from repro.appmodel.serialization import allocation_from_dict
        from repro.resilience.checkpoint import CheckpointError, read_checkpoint

        data = read_checkpoint(resume) if isinstance(resume, str) else resume
        if data.get("kind") != "flow":
            raise CheckpointError(
                f"expected a flow checkpoint, got kind {data.get('kind')!r}",
                field="kind",
            )
        for key in ("allocations", "stats"):
            if key not in data:
                raise CheckpointError(
                    f"flow checkpoint is missing required field {key!r} "
                    "(truncated or hand-edited?)",
                    field=key,
                )
        obs.counter("checkpoint.flow_resumes")
        for entry, stat in zip(data["allocations"], data["stats"]):
            allocation = allocation_from_dict(entry)
            allocation.reservation.commit(architecture)
            result.allocations.append(allocation)
            result.rungs.append(entry.get("rung"))
            result.application_stats.append(dict(stat))
            name = allocation.application.name
            completed.append(name)
            skip_restored[name] = skip_restored.get(name, 0) + 1
            committed_bundles.append(entry)
            committed_stats.append(dict(stat))

    def write_flow_checkpoint() -> None:
        from repro.resilience.checkpoint import write_checkpoint

        write_checkpoint(
            checkpoint_path,
            {
                "format": "repro-checkpoint",
                "version": 1,
                "kind": "flow",
                "completed": list(completed),
                "allocations": committed_bundles,
                "stats": committed_stats,
            },
        )

    def record_failure(
        application: ApplicationGraph, record: Dict[str, object]
    ) -> bool:
        """Append a non-success record; True when the flow should stop."""
        result.application_stats.append(record)
        if tr.enabled:
            tr.complete(
                "flow",
                "application",
                trace_started,
                tr.now(),
                application=application.name,
                outcome=record["outcome"],
                reason=record["reason"],
            )
        if result.failed_application is None:
            result.failed_application = application.name
            result.failure_reason = record["reason"]  # type: ignore[assignment]
        return not continue_after_failure

    for application in applications:
        if skip_restored.get(application.name, 0) > 0:
            skip_restored[application.name] -= 1
            continue
        started = perf_counter()
        trace_started = tr.now() if tr.enabled else 0.0
        app_checkpoint = (
            f"{checkpoint_path}.{application.name}.json"
            if checkpoint_path is not None
            else None
        )
        with obs.span("flow.application", application=application.name) as span:
            if preflight:
                from repro.analysis.engine import preflight_check

                gate = preflight_check(application, architecture)
                if gate.has_errors:
                    obs.counter("flow.rejected")
                    span.set("outcome", "rejected")
                    stop = record_failure(
                        application,
                        _stat(
                            application.name,
                            "rejected",
                            perf_counter() - started,
                            reason=f"statically infeasible: {gate.summary()}",
                        ),
                    )
                    if stop:
                        break
                    continue
            try:
                if degrade:
                    resilient = resilient_allocate(
                        application,
                        architecture,
                        allocator=allocator,
                        budget=budget,
                        ladder=ladder,
                        checkpoint_path=app_checkpoint,
                        preflight=False,
                    )
                    allocation = resilient.allocation
                    rung: Optional[str] = resilient.rung
                    outcome = "degraded" if resilient.degraded else "allocated"
                else:
                    allocation = allocator.allocate(
                        application, architecture, budget=budget
                    )
                    rung = None
                    outcome = "allocated"
                allocation.reservation.commit(architecture)
            except AllocationError as error:
                obs.counter("flow.failures")
                span.set("outcome", "failed")
                stop = record_failure(
                    application,
                    _stat(
                        application.name,
                        "failed",
                        perf_counter() - started,
                        reason=str(error),
                    ),
                )
                if stop:
                    break
                continue
            except BudgetExceededError as error:
                obs.counter("flow.budget_exhausted")
                span.set("outcome", "budget-exhausted")
                if app_checkpoint and error.partial.get("checkpoint"):
                    from repro.resilience.checkpoint import write_checkpoint

                    write_checkpoint(
                        app_checkpoint, error.partial["checkpoint"]
                    )
                stop = record_failure(
                    application,
                    _stat(
                        application.name,
                        "budget-exhausted",
                        perf_counter() - started,
                        reason=str(error),
                    ),
                )
                if stop:
                    break
                continue
            except Exception as error:  # noqa: BLE001 - isolation boundary
                obs.counter("flow.errors")
                span.set("outcome", "error")
                span.set("error_type", type(error).__name__)
                stop = record_failure(
                    application,
                    _stat(
                        application.name,
                        "error",
                        perf_counter() - started,
                        reason=f"{type(error).__name__}: {error}",
                    ),
                )
                if stop:
                    break
                continue
            result.allocations.append(allocation)
            result.rungs.append(rung)
            obs.counter("flow.allocated")
            if outcome == "degraded":
                obs.counter("flow.degraded")
            span.set("outcome", outcome)
            if rung is not None:
                span.set("rung", rung)
            record = _stat(
                application.name,
                outcome,
                perf_counter() - started,
                throughput_checks=allocation.throughput_checks,
                achieved_throughput=str(allocation.achieved_throughput),
                tiles_used=len(allocation.binding.used_tiles()),
                rung=rung,
            )
            result.application_stats.append(record)
            if tr.enabled:
                tr.complete(
                    "flow",
                    "application",
                    trace_started,
                    tr.now(),
                    application=application.name,
                    outcome=outcome,
                    rung=rung,
                )
            completed.append(application.name)
            if checkpoint_path is not None:
                from repro.appmodel.serialization import allocation_to_dict

                # the committed allocation supersedes any frontier left
                # behind by an earlier interrupted attempt
                try:
                    os.unlink(app_checkpoint)
                except OSError:
                    pass
                committed_bundles.append(
                    allocation_to_dict(allocation, rung=rung)
                )
                committed_stats.append(dict(record))
                write_flow_checkpoint()
    result.resource_usage = architecture.total_usage()
    result.resource_capacity = architecture.total_capacity()
    if obs.enabled:
        obs.gauge("flow.applications_bound", result.applications_bound)
        obs.counter(
            "flow.throughput_checks", result.total_throughput_checks
        )
    return result
