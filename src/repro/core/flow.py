"""Multi-application allocation flow (paper Section 10.1).

Applications are allocated one after the other on the same architecture
until the first failure; each success commits its resource reservation,
so later applications only see the remaining capacity.  The number of
applications placed is the paper's quality metric (Table 4), and the
total occupied resources at the stopping point its efficiency metric
(Table 5).

The flow is hardened for long batch runs: a shared
:class:`~repro.resilience.budget.Budget` bounds the whole run,
``degrade=True`` walks the :mod:`repro.resilience.policy` ladder
instead of failing outright when the exact strategy runs out of search
resources, and an unexpected exception from one application is isolated
as an ``"error"`` outcome rather than aborting the batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence

from repro.appmodel.application import ApplicationGraph
from repro.appmodel.binding import Allocation
from repro.arch.architecture import ArchitectureGraph
from repro.core.strategy import AllocationError, ResourceAllocator
from repro.core.tile_cost import CostWeights
from repro.obs import get_metrics
from repro.resilience.budget import Budget, BudgetExceededError
from repro.resilience.policy import DEFAULT_LADDER, Rung, resilient_allocate


@dataclass
class FlowResult:
    """Outcome of one allocate-until-failure run."""

    allocations: List[Allocation] = field(default_factory=list)
    failed_application: Optional[str] = None
    failure_reason: Optional[str] = None
    #: occupied resources summed over tiles when the flow stopped
    resource_usage: Dict[str, int] = field(default_factory=dict)
    #: architecture capacity summed over tiles (for utilisation ratios)
    resource_capacity: Dict[str, int] = field(default_factory=dict)
    #: one record per attempted application, uniform schema (see
    #: :func:`_stat`): every record has the same keys, with ``None``
    #: where a key does not apply to the outcome.  ``outcome`` is one of
    #: ``"allocated"``, ``"degraded"``, ``"failed"``,
    #: ``"budget-exhausted"`` or ``"error"``.
    application_stats: List[Dict[str, object]] = field(default_factory=list)

    @property
    def applications_bound(self) -> int:
        return len(self.allocations)

    @property
    def degraded_applications(self) -> int:
        """Applications placed by a fallback rung, not the exact strategy."""
        return sum(
            1
            for record in self.application_stats
            if record["outcome"] == "degraded"
        )

    @property
    def total_throughput_checks(self) -> int:
        return sum(a.throughput_checks for a in self.allocations)

    def utilisation(self) -> Dict[str, float]:
        """Occupied fraction per resource kind."""
        return {
            key: (
                self.resource_usage[key] / self.resource_capacity[key]
                if self.resource_capacity.get(key)
                else 0.0
            )
            for key in self.resource_usage
        }


def _stat(
    application: str,
    outcome: str,
    seconds: float,
    reason: Optional[str] = None,
    throughput_checks: Optional[int] = None,
    achieved_throughput: Optional[str] = None,
    tiles_used: Optional[int] = None,
    rung: Optional[str] = None,
) -> Dict[str, object]:
    """One ``application_stats`` record; every key always present."""
    return {
        "application": application,
        "outcome": outcome,
        "seconds": seconds,
        "reason": reason,
        "throughput_checks": throughput_checks,
        "achieved_throughput": achieved_throughput,
        "tiles_used": tiles_used,
        "rung": rung,
    }


def allocate_until_failure(
    architecture: ArchitectureGraph,
    applications: Iterable[ApplicationGraph],
    allocator: Optional[ResourceAllocator] = None,
    weights: Optional[CostWeights] = None,
    continue_after_failure: bool = False,
    budget: Optional[Budget] = None,
    degrade: bool = False,
    ladder: Sequence[Rung] = DEFAULT_LADDER,
) -> FlowResult:
    """Allocate ``applications`` in order on ``architecture``.

    The architecture is mutated (reservations are committed); pass a
    copy when the original must stay clean.  By default the flow stops
    at the first failure (the paper's conservative estimate);
    ``continue_after_failure=True`` keeps trying the remaining
    applications (the improvement the paper suggests in §10.1).

    A ``budget`` is shared by the whole run.  With ``degrade=False`` an
    exhausted budget records a ``"budget-exhausted"`` outcome (treated
    like a failure for the stopping rule); with ``degrade=True`` each
    application descends ``ladder`` instead, so a tight deadline yields
    conservative-but-complete allocations (``"degraded"`` outcomes)
    rather than a truncated flow.  An unexpected exception from one
    application — a bug, a malformed graph, an injected fault — is
    recorded as ``"error"`` and isolated from the other applications.
    """
    if allocator is None:
        allocator = ResourceAllocator(weights=weights or CostWeights(1, 1, 1))
    elif weights is not None:
        raise ValueError("pass either an allocator or weights, not both")
    if budget is not None:
        budget.start()

    obs = get_metrics()
    result = FlowResult()

    def record_failure(
        application: ApplicationGraph, record: Dict[str, object]
    ) -> bool:
        """Append a non-success record; True when the flow should stop."""
        result.application_stats.append(record)
        if result.failed_application is None:
            result.failed_application = application.name
            result.failure_reason = record["reason"]  # type: ignore[assignment]
        return not continue_after_failure

    for application in applications:
        started = perf_counter()
        with obs.span("flow.application", application=application.name) as span:
            try:
                if degrade:
                    resilient = resilient_allocate(
                        application,
                        architecture,
                        allocator=allocator,
                        budget=budget,
                        ladder=ladder,
                    )
                    allocation = resilient.allocation
                    rung: Optional[str] = resilient.rung
                    outcome = "degraded" if resilient.degraded else "allocated"
                else:
                    allocation = allocator.allocate(
                        application, architecture, budget=budget
                    )
                    rung = None
                    outcome = "allocated"
                allocation.reservation.commit(architecture)
            except AllocationError as error:
                obs.counter("flow.failures")
                span.set("outcome", "failed")
                stop = record_failure(
                    application,
                    _stat(
                        application.name,
                        "failed",
                        perf_counter() - started,
                        reason=str(error),
                    ),
                )
                if stop:
                    break
                continue
            except BudgetExceededError as error:
                obs.counter("flow.budget_exhausted")
                span.set("outcome", "budget-exhausted")
                stop = record_failure(
                    application,
                    _stat(
                        application.name,
                        "budget-exhausted",
                        perf_counter() - started,
                        reason=str(error),
                    ),
                )
                if stop:
                    break
                continue
            except Exception as error:  # noqa: BLE001 - isolation boundary
                obs.counter("flow.errors")
                span.set("outcome", "error")
                span.set("error_type", type(error).__name__)
                stop = record_failure(
                    application,
                    _stat(
                        application.name,
                        "error",
                        perf_counter() - started,
                        reason=f"{type(error).__name__}: {error}",
                    ),
                )
                if stop:
                    break
                continue
            result.allocations.append(allocation)
            obs.counter("flow.allocated")
            if outcome == "degraded":
                obs.counter("flow.degraded")
            span.set("outcome", outcome)
            if rung is not None:
                span.set("rung", rung)
            result.application_stats.append(
                _stat(
                    application.name,
                    outcome,
                    perf_counter() - started,
                    throughput_checks=allocation.throughput_checks,
                    achieved_throughput=str(allocation.achieved_throughput),
                    tiles_used=len(allocation.binding.used_tiles()),
                    rung=rung,
                )
            )
    result.resource_usage = architecture.total_usage()
    result.resource_capacity = architecture.total_capacity()
    if obs.enabled:
        obs.gauge("flow.applications_bound", result.applications_bound)
        obs.counter(
            "flow.throughput_checks", result.total_throughput_checks
        )
    return result
