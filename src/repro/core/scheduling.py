"""Static-order schedule construction (paper Section 9.2).

A list scheduler executes the binding-aware SDFG assuming half of every
tile's remaining time wheel is allocated to the application.  A bound
actor that becomes enabled does not fire immediately; it is appended to
the ready list of its tile.  Whenever a tile is idle, the first actor of
its ready list starts firing and is appended to the tile's schedule.
Connection and alignment actors execute self-timed.  The execution runs
until a recurrent state, which yields a finite transient prefix plus a
periodic firing sequence per tile; the sequences are then compacted
(minimal repeating unit, transient absorbed into rotations of the
period — e.g. the paper's 17-entry schedule for ``t1`` collapses to
``(a1 a2)*``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.appmodel.binding_aware import BindingAwareGraph
from repro.resilience.budget import Budget, BudgetExceededError
from repro.resilience.faults import fault_point
from repro.throughput.constrained import (
    StaticOrderSchedule,
    busy_time,
    gated_finish,
)
from repro.throughput.state_space import (
    DEFAULT_MAX_STATES,
    StateSpaceExplosionError,
)


class SchedulingError(RuntimeError):
    """Raised when no periodic schedule exists (execution deadlocks)."""


def minimal_repeating_unit(sequence: Sequence[str]) -> List[str]:
    """The shortest unit ``u`` with ``sequence == u * k``."""
    n = len(sequence)
    sequence = list(sequence)
    for length in range(1, n + 1):
        if n % length:
            continue
        unit = sequence[:length]
        if unit * (n // length) == sequence:
            return unit
    return sequence


def compact_schedule(
    transient: Sequence[str], periodic: Sequence[str]
) -> StaticOrderSchedule:
    """Remove recurrent occurrences of the same scheduling sequence.

    The periodic part is reduced to its minimal repeating unit; then the
    transient prefix is absorbed from the right by rotating the periodic
    part (``u x (x u')* == u (x u' x)*`` when the transient ends in the
    period's last entry).
    """
    if not periodic:
        raise SchedulingError("periodic schedule part is empty")
    unit = minimal_repeating_unit(periodic)
    prefix = list(transient)
    while prefix and prefix[-1] == unit[-1]:
        prefix.pop()
        unit = [unit[-1]] + unit[:-1]
    unit = minimal_repeating_unit(unit)
    return StaticOrderSchedule(periodic=tuple(unit), transient=tuple(prefix))


def build_static_order_schedules(
    bag: BindingAwareGraph,
    slices: Optional[Dict[str, int]] = None,
    max_states: int = DEFAULT_MAX_STATES,
    budget: Optional[Budget] = None,
) -> Dict[str, StaticOrderSchedule]:
    """List-schedule the binding-aware graph; one schedule per used tile.

    ``slices`` defaults to the 50%-of-remaining-wheel assumption the
    binding-aware graph was built with (``bag.slices``).  A
    :class:`Budget` bounds the list-scheduling execution cooperatively.
    """
    fault_point("scheduling.build", graph=bag.graph.name)
    if budget is not None:
        budget.checkpoint()
    if slices is None:
        slices = dict(bag.slices)
    bag.update_slices(slices)
    graph = bag.graph

    tile_names = bag.binding.used_tiles()
    tile_index = {name: i for i, name in enumerate(tile_names)}
    wheels = [bag.architecture.tile(t).wheel for t in tile_names]
    tile_slices = [slices[t] for t in tile_names]

    actors = graph.actor_names
    index = {a: i for i, a in enumerate(actors)}
    times = [graph.actor(a).execution_time for a in actors]
    channels = graph.channel_names
    channel_index = {c: i for i, c in enumerate(channels)}
    tokens = [graph.channel(c).tokens for c in channels]
    inputs: List[List[Tuple[int, int]]] = []
    outputs: List[List[Tuple[int, int]]] = []
    for actor in actors:
        inputs.append(
            [(channel_index[c.name], c.consumption) for c in graph.in_channels(actor)]
        )
        outputs.append(
            [(channel_index[c.name], c.production) for c in graph.out_channels(actor)]
        )
    tile_of: List[Optional[int]] = [None] * len(actors)
    for actor_name, tile_name in bag.binding.assignment.items():
        tile_of[index[actor_name]] = tile_index[tile_name]

    ready: List[List[int]] = [[] for _ in tile_names]
    in_ready = [False] * len(actors)
    tile_active: List[Optional[Tuple[int, int]]] = [None] * len(tile_names)
    unscheduled_active: List[List[int]] = [[] for _ in actors]
    schedules: List[List[str]] = [[] for _ in tile_names]
    time = 0
    seen: Dict[Tuple, Tuple[int, Tuple[int, ...]]] = {}

    def enabled(actor: int) -> bool:
        return all(tokens[c] >= rate for c, rate in inputs[actor])

    def consume(actor: int) -> None:
        for c, rate in inputs[actor]:
            tokens[c] -= rate

    def produce(actor: int) -> None:
        for c, rate in outputs[actor]:
            tokens[c] += rate

    def dispatch() -> None:
        """Enqueue newly enabled actors; start firings on idle tiles."""
        progress = True
        while progress:
            progress = False
            for actor in range(len(actors)):
                tile = tile_of[actor]
                if tile is None:
                    while enabled(actor):
                        consume(actor)
                        if times[actor] == 0:
                            produce(actor)
                        else:
                            unscheduled_active[actor].append(times[actor])
                        progress = True
                elif not in_ready[actor] and enabled(actor):
                    ready[tile].append(actor)
                    in_ready[actor] = True
                    progress = True
            for tile in range(len(tile_names)):
                while tile_active[tile] is None and ready[tile]:
                    actor = ready[tile].pop(0)
                    in_ready[actor] = False
                    if not enabled(actor):
                        continue
                    consume(actor)
                    schedules[tile].append(actors[actor])
                    if times[actor] == 0:
                        produce(actor)
                    else:
                        tile_active[tile] = (actor, times[actor])
                    progress = True

    while True:
        if budget is not None:
            try:
                budget.tick()
            except BudgetExceededError as error:
                error.partial.setdefault("graph", bag.graph.name)
                error.partial.setdefault("states_explored", len(seen))
                raise
        dispatch()
        key = (
            tuple(tokens),
            tuple(tile_active),
            tuple(tuple(r) for r in ready),
            tuple(
                (i, tuple(sorted(remaining)))
                for i, remaining in enumerate(unscheduled_active)
                if remaining
            ),
            tuple(time % w for w in wheels),
        )
        if key in seen:
            first_time, first_lengths = seen[key]
            result: Dict[str, StaticOrderSchedule] = {}
            for tile, name in enumerate(tile_names):
                transient = schedules[tile][: first_lengths[tile]]
                periodic = schedules[tile][first_lengths[tile]:]
                if not periodic:
                    raise SchedulingError(
                        f"actors on tile {name!r} never fire in the "
                        "periodic phase (execution starves)"
                    )
                result[name] = compact_schedule(transient, periodic)
            return result
        seen[key] = (time, tuple(len(s) for s in schedules))
        if len(seen) > max_states:
            raise StateSpaceExplosionError(
                f"list scheduling exceeded {max_states} states"
            )

        next_event: Optional[int] = None
        for active in unscheduled_active:
            for remaining in active:
                candidate = time + remaining
                if next_event is None or candidate < next_event:
                    next_event = candidate
        for tile, firing in enumerate(tile_active):
            if firing is None:
                continue
            candidate = gated_finish(
                time, firing[1], wheels[tile], tile_slices[tile]
            )
            if candidate is None:
                continue
            if next_event is None or candidate < next_event:
                next_event = candidate
        if next_event is None:
            raise SchedulingError(
                "execution of the binding-aware graph deadlocks; "
                "no static-order schedule exists for this binding"
            )

        step = next_event - time
        for actor, active in enumerate(unscheduled_active):
            if not active:
                continue
            finished = 0
            for i in range(len(active)):
                active[i] -= step
                if active[i] == 0:
                    finished += 1
            if finished:
                unscheduled_active[actor] = [r for r in active if r > 0]
                for _ in range(finished):
                    produce(actor)
        for tile, firing in enumerate(tile_active):
            if firing is None:
                continue
            progressed = busy_time(
                time, next_event, wheels[tile], tile_slices[tile]
            )
            remaining = firing[1] - progressed
            if remaining <= 0:
                produce(firing[0])
                tile_active[tile] = None
            else:
                tile_active[tile] = (firing[0], remaining)
        time = next_event
