"""The paper's contribution: SDFG-level resource allocation (Section 9).

The strategy runs three steps, each exactly once:

1. **Resource binding** (:mod:`repro.core.binding`): actors are sorted
   by criticality (Eqn. 1, :mod:`repro.core.criticality`) and greedily
   bound to the tile minimising the load-balancing cost function
   (Eqn. 2, :mod:`repro.core.tile_cost`), subject to the Section 7
   resource constraints (:mod:`repro.core.constraints`); a reverse-order
   rebinding pass then improves the balance.
2. **Static-order scheduling** (:mod:`repro.core.scheduling`): a list
   scheduler executes the binding-aware graph (50% slice assumption)
   and records per-tile firing orders, which are then compacted.
3. **Time-slice allocation** (:mod:`repro.core.slices`): a binary
   search finds minimal TDMA slices meeting the throughput constraint,
   verified with the constrained state-space analysis of Section 8.2,
   followed by a per-tile refinement search.

:class:`repro.core.strategy.ResourceAllocator` chains the steps;
:mod:`repro.core.flow` runs the multi-application experiments of
Section 10.
"""

from repro.core.criticality import actor_criticality, binding_order
from repro.core.tile_cost import CostWeights, TileLoad, tile_cost, tile_loads
from repro.core.constraints import (
    ConstraintViolation,
    check_binding_constraints,
    reservation_for,
)
from repro.core.binding import BindingError, bind_application
from repro.core.scheduling import SchedulingError, build_static_order_schedules
from repro.core.slices import SliceAllocationError, allocate_time_slices
from repro.core.strategy import AllocationError, ResourceAllocator
from repro.core.flow import FlowResult, allocate_until_failure

__all__ = [
    "actor_criticality",
    "binding_order",
    "CostWeights",
    "TileLoad",
    "tile_cost",
    "tile_loads",
    "ConstraintViolation",
    "check_binding_constraints",
    "reservation_for",
    "BindingError",
    "bind_application",
    "SchedulingError",
    "build_static_order_schedules",
    "SliceAllocationError",
    "allocate_time_slices",
    "AllocationError",
    "ResourceAllocator",
    "FlowResult",
    "allocate_until_failure",
]
