"""TDMA time-slice allocation (paper Section 9.3).

Phase 1 binary-searches a single slice size shared by all used tiles
(capped per tile at the remaining wheel), between 1 and the largest
remaining wheel, until the constrained throughput of the binding-aware
graph meets the constraint — stopping early once it is within 10% above
it.  It fails when even the entire remaining wheels are insufficient.

Phase 2 exploits imbalanced load: per tile, a second binary search
shrinks the slice between ``floor(l_p(t) * omega_t / max_t' l_p(t'))``
and the phase-1 result, keeping the other tiles fixed, until no slice
can be reduced without violating the throughput constraint.

Every evaluation is one constrained state-space exploration; the count
is reported because the paper uses it (§10: 16.1 average checks per
allocation, 34 for the multimedia system).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, Optional

from repro.appmodel.binding_aware import BindingAwareGraph
from repro.appmodel.binding import SchedulingFunction
from repro.core.tile_cost import tile_loads
from repro.obs import get_metrics
from repro.resilience.budget import Budget, BudgetExceededError
from repro.throughput.constrained import (
    StaticOrderSchedule,
    constrained_throughput,
)
from repro.throughput.state_space import DEFAULT_MAX_STATES


class SliceAllocationError(RuntimeError):
    """Raised when no slice allocation can meet the throughput constraint."""


@dataclass
class SliceAllocationResult:
    """Slices found, the throughput they achieve, and the search cost."""

    slices: Dict[str, int]
    achieved_throughput: Fraction
    throughput_checks: int
    #: periodic-phase certificate of the constrained exploration that
    #: produced ``achieved_throughput`` (the accepted evaluation, not
    #: necessarily the last one the binary search tried)
    certificate: Optional[Dict[str, Any]] = None


def allocate_time_slices(
    bag: BindingAwareGraph,
    schedules: Dict[str, StaticOrderSchedule],
    relaxation: float = 0.1,
    refine: bool = True,
    max_states: int = DEFAULT_MAX_STATES,
    budget: Optional[Budget] = None,
) -> SliceAllocationResult:
    """Find minimal TDMA slices meeting the application's constraint.

    ``relaxation`` is the paper's 10% early-stop band; ``refine=False``
    skips phase 2 (used by the ablation benchmarks).  Raises
    :class:`SliceAllocationError` when the constraint is unreachable.
    A :class:`Budget` charges one throughput check per evaluation (its
    ``max_throughput_checks`` limit) and bounds the underlying
    constrained explorations; on a breach the raised
    :class:`~repro.resilience.budget.BudgetExceededError` carries the
    best slices found so far as partial progress.
    """
    application = bag.application
    constraint = application.throughput_constraint
    output_actor = application.output_actor
    tile_names = bag.binding.used_tiles()
    remaining = {
        name: bag.architecture.tile(name).wheel_remaining for name in tile_names
    }
    if any(value < 1 for value in remaining.values()):
        raise SliceAllocationError(
            "a used tile has no remaining time wheel"
        )

    checks = 0
    scheduling = SchedulingFunction()
    for name, schedule in schedules.items():
        scheduling.set_schedule(name, schedule)

    obs = get_metrics()

    # certificate of the most recent evaluation (index 0), copied into
    # best_certificate whenever that evaluation's slices are accepted
    last_certificate: list = [None]

    def evaluate(slices: Dict[str, int]) -> Fraction:
        nonlocal checks
        checks += 1
        obs.counter("slices.throughput_checks")
        if budget is not None:
            budget.charge_check()
        for name in tile_names:
            scheduling.set_slice(name, slices[name])
        constraints = bag.tile_constraints(scheduling)
        try:
            result = constrained_throughput(
                bag.graph, constraints, max_states=max_states, budget=budget
            )
        except BudgetExceededError as error:
            error.partial.setdefault("throughput_checks", checks)
            raise
        last_certificate[0] = result.certificate
        return result.of(output_actor)

    def shared(f: int) -> Dict[str, int]:
        return {name: min(f, remaining[name]) for name in tile_names}

    # -- phase 1: shared slice size ------------------------------------
    high = max(remaining.values())
    slices = shared(high)
    achieved = evaluate(slices)
    if achieved < constraint:
        raise SliceAllocationError(
            f"application {application.name!r}: even full remaining "
            f"wheels reach only {achieved} < constraint {constraint}"
        )
    best_f = high
    best_throughput = achieved
    best_certificate = last_certificate[0]
    try:
        low = 1
        while low < high:
            mid = (low + high) // 2
            throughput_mid = evaluate(shared(mid))
            if throughput_mid >= constraint:
                best_f, best_throughput = mid, throughput_mid
                best_certificate = last_certificate[0]
                high = mid
                if constraint > 0 and throughput_mid <= (1 + relaxation) * constraint:
                    break
            else:
                low = mid + 1
        slices = shared(best_f)
        achieved = best_throughput
        phase1_checks = checks
        if obs.enabled:
            obs.counter("slices.phase1_checks", phase1_checks)
            obs.gauge("slices.shared_slice", best_f)

        # -- phase 2: per-tile refinement ------------------------------
        if refine and len(tile_names) > 0:
            loads = {
                name: tile_loads(
                    application, bag.architecture, bag.binding, name
                ).processing
                for name in tile_names
            }
            max_load = max(loads.values())
            for name in tile_names:
                upper = slices[name]
                if max_load > 0:
                    lower = int(loads[name] * upper / max_load)
                else:
                    lower = 1
                lower = max(lower, 1)
                low_t, high_t = lower, upper
                while low_t < high_t:
                    mid = (low_t + high_t) // 2
                    candidate = dict(slices)
                    candidate[name] = mid
                    throughput_mid = evaluate(candidate)
                    if throughput_mid >= constraint:
                        slices = candidate
                        achieved = throughput_mid
                        best_certificate = last_certificate[0]
                        high_t = mid
                    else:
                        low_t = mid + 1
    except BudgetExceededError as error:
        # the last confirmed-feasible slices are genuine partial progress
        error.partial.setdefault("feasible_slices", dict(shared(best_f)))
        error.partial.setdefault("achieved_throughput", str(best_throughput))
        raise

    if obs.enabled:
        obs.counter("slices.phase2_checks", checks - phase1_checks)
    return SliceAllocationResult(
        slices=slices,
        achieved_throughput=achieved,
        throughput_checks=checks,
        certificate=best_certificate,
    )
