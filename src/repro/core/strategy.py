"""The complete resource-allocation strategy (paper Section 9).

:class:`ResourceAllocator` chains the three steps — binding, static-order
scheduling, slice allocation — and returns an :class:`Allocation` whose
reservation can be committed to the architecture.  Each step's failure
mode surfaces as a distinct exception, all subclasses of
:class:`AllocationError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.appmodel.application import ApplicationGraph
from repro.appmodel.binding import Allocation, Binding, SchedulingFunction
from repro.appmodel.binding_aware import (
    InfeasibleBindingError,
    build_binding_aware_graph,
)
from repro.arch.architecture import ArchitectureGraph
from repro.core.binding import BindingError, bind_application
from repro.core.constraints import reservation_for
from repro.core.scheduling import SchedulingError, build_static_order_schedules
from repro.core.slices import SliceAllocationError, allocate_time_slices
from repro.core.tile_cost import CostWeights
from repro.obs import get_metrics
from repro.resilience.budget import Budget, BudgetExceededError
from repro.throughput.state_space import (
    DEFAULT_MAX_STATES,
    StateSpaceExplosionError,
)


class AllocationError(RuntimeError):
    """A resource allocation could not be found.

    The ``__cause__`` chain identifies the failing step (binding,
    scheduling or slice allocation).
    """


@dataclass
class ResourceAllocator:
    """Configurable facade over the three-step strategy.

    Parameters mirror the paper's knobs: the Eqn. 2 weights, the 10%
    early-stop band of the slice search, whether the rebinding and
    slice-refinement optimisation passes run, and the state budget of
    the throughput engine.

    ``backend`` selects the strategy implementation: ``"greedy"`` (the
    paper's three-step heuristic, the default) or ``"exact"`` (the
    :mod:`repro.exact` branch-and-bound search, which returns the
    provably cheapest feasible allocation at combinatorial cost — see
    ``docs/EXACT.md``).  The exact backend honours ``weights``,
    ``cycle_limit`` and ``max_states``; the greedy-only knobs
    (``relaxation``, ``optimise_binding``, ``refine_slices``,
    ``trim_buffers``) do not apply to it, and ``slice_step`` coarsens
    only the exact backend's slice grid.
    """

    weights: CostWeights = CostWeights(1, 1, 1)
    relaxation: float = 0.1
    optimise_binding: bool = True
    refine_slices: bool = True
    #: optional 4th step: shrink channel buffers after slice allocation
    #: while the throughput guarantee holds (ref [21] style); reduces
    #: the committed memory so later applications fit more easily
    trim_buffers: bool = False
    cycle_limit: Optional[int] = 20000
    max_states: int = DEFAULT_MAX_STATES
    #: strategy implementation: "greedy" or "exact"
    backend: str = "greedy"
    #: slice-grid granularity of the exact backend (1 = every width)
    slice_step: int = 1

    def allocate(
        self,
        application: ApplicationGraph,
        architecture: ArchitectureGraph,
        binding: Optional[Binding] = None,
        budget: Optional[Budget] = None,
    ) -> Allocation:
        """Run the strategy for one application.

        A pre-computed ``binding`` skips step 1 (used by experiments
        that sweep schedules or slices for a fixed binding).  The
        returned allocation is *not* committed; call
        ``allocation.reservation.commit(architecture)`` to occupy the
        resources (as :mod:`repro.core.flow` does).

        A :class:`Budget` is threaded through every step; on exhaustion
        the raised :class:`BudgetExceededError` propagates *unwrapped*
        (it is not an :class:`AllocationError` — the allocation is
        neither proven feasible nor infeasible, merely unfinished).
        """
        if self.backend not in ("greedy", "exact"):
            raise ValueError(
                f"unknown backend {self.backend!r} "
                "(expected 'greedy' or 'exact')"
            )
        obs = get_metrics()
        if budget is not None:
            budget.start()
        if self.backend == "exact":
            return self._allocate_exact(
                application, architecture, binding, budget
            )
        with obs.span("allocate", application=application.name) as span:
            try:
                if binding is None:
                    with obs.timer("allocate.binding"):
                        binding = bind_application(
                            application,
                            architecture,
                            self.weights,
                            optimise=self.optimise_binding,
                            cycle_limit=self.cycle_limit,
                            budget=budget,
                        )
                with obs.timer("allocate.binding_aware"):
                    bag = build_binding_aware_graph(
                        application, architecture, binding
                    )
                with obs.timer("allocate.scheduling"):
                    schedules = build_static_order_schedules(
                        bag, max_states=self.max_states, budget=budget
                    )
                with obs.timer("allocate.slices"):
                    slice_result = allocate_time_slices(
                        bag,
                        schedules,
                        relaxation=self.relaxation,
                        refine=self.refine_slices,
                        max_states=self.max_states,
                        budget=budget,
                    )
            except BudgetExceededError as error:
                if obs.enabled:
                    obs.counter("allocate.budget_exceeded")
                    span.set("outcome", "budget-exhausted")
                    span.set("reason", error.reason)
                raise
            except (
                BindingError,
                InfeasibleBindingError,
                SchedulingError,
                SliceAllocationError,
                StateSpaceExplosionError,
            ) as error:
                if obs.enabled:
                    obs.counter("allocate.failures")
                    span.set("outcome", "failed")
                    span.set("reason", str(error))
                raise AllocationError(
                    f"no valid allocation for {application.name!r}: {error}"
                ) from error

            scheduling = SchedulingFunction()
            for tile_name, schedule in schedules.items():
                scheduling.set_schedule(tile_name, schedule)
            for tile_name, size in slice_result.slices.items():
                scheduling.set_slice(tile_name, size)

            achieved = slice_result.achieved_throughput
            checks = slice_result.throughput_checks
            certificate = slice_result.certificate
            if self.trim_buffers:
                # deferred import: extensions sit above core in the layering
                from repro.extensions.buffer_sizing import minimise_buffers

                with obs.timer("allocate.trim_buffers"):
                    sizing = minimise_buffers(
                        application,
                        architecture,
                        binding,
                        scheduling,
                        max_states=self.max_states,
                    )
                achieved = sizing.achieved_throughput
                checks += sizing.throughput_checks
                certificate = sizing.certificate

            reservation = reservation_for(
                application, architecture, binding, slice_result.slices
            )
            if obs.enabled:
                obs.counter("allocate.successes")
                obs.counter("allocate.throughput_checks", checks)
                span.set("outcome", "allocated")
                span.set("throughput_checks", checks)
                span.set("achieved_throughput", str(achieved))
                span.set("tiles_used", len(binding.used_tiles()))
            return Allocation(
                application=application,
                binding=binding,
                scheduling=scheduling,
                reservation=reservation,
                achieved_throughput=achieved,
                throughput_checks=checks,
                certificate=certificate,
            )

    def _allocate_exact(
        self,
        application: ApplicationGraph,
        architecture: ArchitectureGraph,
        binding: Optional[Binding],
        budget: Optional[Budget],
    ) -> Allocation:
        """The ``backend="exact"`` path: delegate to :mod:`repro.exact`.

        Keeps the facade's contract: an infeasibility proof surfaces as
        :class:`AllocationError`, a :class:`BudgetExceededError`
        propagates unwrapped (the search is merely unfinished and
        carries its incumbent as partial progress).
        """
        # deferred import: repro.exact sits above core in the layering
        from repro.exact.search import exact_search

        obs = get_metrics()
        try:
            result = exact_search(
                application,
                architecture,
                weights=self.weights,
                binding=binding,
                slice_step=self.slice_step,
                cycle_limit=self.cycle_limit,
                max_states=self.max_states,
                budget=budget,
            )
        except BudgetExceededError:
            if obs.enabled:
                obs.counter("allocate.budget_exceeded")
            raise
        if result.allocation is None:
            if obs.enabled:
                obs.counter("allocate.failures")
            raise AllocationError(
                f"no valid allocation for {application.name!r}: the exact "
                f"search proved the constraint infeasible "
                f"({result.nodes_explored} nodes, "
                f"{result.throughput_checks} throughput checks)"
            )
        if obs.enabled:
            obs.counter("allocate.successes")
            obs.counter("allocate.throughput_checks", result.throughput_checks)
        return result.allocation
