"""Section 7 resource constraints and reservation construction.

A binding is resource-feasible when, for every tile,

1. a non-empty time slice can still be allocated
   (``Omega(t) < w_t`` for tiles with bound actors),
2. the memory demand (actor state + channel buffers) fits,
3. the NI connection count fits (``|D_src| + |D_dst| <= c_t``),
4. the summed channel bandwidths fit the incoming/outgoing limits.

The same accounting, after slice allocation, yields the
:class:`~repro.arch.resources.ResourceReservation` an accepted
application commits to the architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.appmodel.application import ApplicationGraph
from repro.appmodel.binding import Binding
from repro.arch.architecture import ArchitectureGraph
from repro.arch.resources import ResourceReservation
from repro.core.tile_cost import channel_sets, memory_demand


@dataclass
class ConstraintViolation:
    """One violated Section 7 constraint (for diagnostics)."""

    tile: str
    constraint: str
    demanded: int
    available: int

    def __str__(self) -> str:
        return (
            f"tile {self.tile!r}: {self.constraint} needs {self.demanded}, "
            f"only {self.available} available"
        )


def binding_violations(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    binding: Binding,
) -> List[ConstraintViolation]:
    """All Section 7 violations of a (partial) binding.

    Channels to unbound actors are not yet counted (consistent with the
    cost function); cross-tile channels additionally require a
    connection in the architecture and a crossable channel (beta > 0),
    which are reported as ``connection-missing`` violations.
    """
    violations: List[ConstraintViolation] = []
    for tile_name in binding.used_tiles():
        tile = architecture.tile(tile_name)
        sets = channel_sets(application, binding, tile_name)

        if tile.wheel_remaining < 1:
            violations.append(
                ConstraintViolation(tile_name, "time-slice", 1, 0)
            )

        demand = memory_demand(application, binding, tile)
        if demand > tile.memory_remaining:
            violations.append(
                ConstraintViolation(
                    tile_name, "memory", demand, tile.memory_remaining
                )
            )

        connection_count = len(sets.src) + len(sets.dst)
        if connection_count > tile.connections_remaining:
            violations.append(
                ConstraintViolation(
                    tile_name,
                    "connections",
                    connection_count,
                    tile.connections_remaining,
                )
            )

        outgoing = sum(application.channel(c.name).bandwidth for c in sets.src)
        if outgoing > tile.bandwidth_out_remaining:
            violations.append(
                ConstraintViolation(
                    tile_name,
                    "output-bandwidth",
                    outgoing,
                    tile.bandwidth_out_remaining,
                )
            )
        incoming = sum(application.channel(c.name).bandwidth for c in sets.dst)
        if incoming > tile.bandwidth_in_remaining:
            violations.append(
                ConstraintViolation(
                    tile_name,
                    "input-bandwidth",
                    incoming,
                    tile.bandwidth_in_remaining,
                )
            )

        for channel in sets.src:
            dst_tile = binding.tile_of(channel.dst)
            if not application.channel(channel.name).crossable:
                violations.append(
                    ConstraintViolation(tile_name, "connection-missing", 1, 0)
                )
            elif not architecture.connected(tile_name, dst_tile):
                violations.append(
                    ConstraintViolation(tile_name, "connection-missing", 1, 0)
                )
    return violations


def check_binding_constraints(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    binding: Binding,
) -> bool:
    """True when the (partial) binding violates no Section 7 constraint."""
    return not binding_violations(application, architecture, binding)


def reservation_for(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    binding: Binding,
    slices: Optional[Dict[str, int]] = None,
) -> ResourceReservation:
    """The resource claims of a complete binding (plus optional slices)."""
    reservation = ResourceReservation()
    for tile_name in binding.used_tiles():
        tile = architecture.tile(tile_name)
        sets = channel_sets(application, binding, tile_name)
        claim = reservation.tile(tile_name)
        claim.memory = memory_demand(application, binding, tile)
        claim.connections = len(sets.src) + len(sets.dst)
        claim.bandwidth_out = sum(
            application.channel(c.name).bandwidth for c in sets.src
        )
        claim.bandwidth_in = sum(
            application.channel(c.name).bandwidth for c in sets.dst
        )
        if slices is not None:
            claim.time_slice = slices.get(tile_name, 0)
    return reservation
