"""Tile load estimation and the Eqn. 2 cost function.

Given a (partial) binding, each tile's load is captured by three
normalised quantities (paper Section 9.1):

* ``l_p`` — processing: work bound to the tile over the application's
  total worst-case work;
* ``l_m`` — memory: actor state plus channel buffers over the tile's
  available memory;
* ``l_c`` — communication: the average of outgoing-bandwidth,
  incoming-bandwidth and NI-connection usage fractions.

Channels are classified relative to a tile exactly as in Section 7
(``D_t,tile``, ``D_t,src``, ``D_t,dst``); channels whose other endpoint
is still unbound are not counted (the greedy binder learns about them
when that endpoint is placed).  The combined cost is
``c1*l_p + c2*l_m + c3*l_c`` with user-chosen weights — the knob the
paper's Tables 3-5 sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List

from repro.appmodel.application import ApplicationGraph
from repro.appmodel.binding import Binding
from repro.arch.architecture import ArchitectureGraph
from repro.arch.tile import Tile
from repro.sdf.graph import Channel


@dataclass(frozen=True)
class CostWeights:
    """The constants ``(c1, c2, c3)`` of Eqn. 2."""

    processing: float = 1.0
    memory: float = 1.0
    communication: float = 1.0

    @classmethod
    def default(cls) -> "CostWeights":
        """The repository-wide default ``(0, 1, 2)``.

        The best-performing sweep point of the paper's Tables 3-5
        (processing load is ignored, communication weighs double).
        Every entry point — the CLI, the dimensioning and ordering
        extensions, the throughput-frontier baseline, the bench
        workloads — shares this single definition; a regression test
        (``tests/test_cost_weights_default.py``) keeps literal copies
        from creeping back in.
        """
        return cls(0.0, 1.0, 2.0)

    def as_tuple(self) -> tuple:
        return (self.processing, self.memory, self.communication)

    def __str__(self) -> str:
        return f"({self.processing:g},{self.memory:g},{self.communication:g})"


@dataclass
class ChannelSets:
    """The Section 7 channel sets of one tile under a binding."""

    tile: List[Channel]
    src: List[Channel]
    dst: List[Channel]


def channel_sets(
    application: ApplicationGraph, binding: Binding, tile_name: str
) -> ChannelSets:
    """``D_t,tile``, ``D_t,src`` and ``D_t,dst`` for ``tile_name``.

    Only channels with both endpoints bound are classified.
    """
    sets = ChannelSets([], [], [])
    for channel in application.graph.channels:
        if not (binding.is_bound(channel.src) and binding.is_bound(channel.dst)):
            continue
        src_tile = binding.tile_of(channel.src)
        dst_tile = binding.tile_of(channel.dst)
        if src_tile == tile_name and dst_tile == tile_name:
            sets.tile.append(channel)
        elif src_tile == tile_name:
            sets.src.append(channel)
        elif dst_tile == tile_name:
            sets.dst.append(channel)
    return sets


@dataclass
class TileLoad:
    """The three load fractions of one tile."""

    processing: Fraction
    memory: Fraction
    communication: Fraction

    def combined(self, weights: CostWeights) -> float:
        """Eqn. 2: ``c1*l_p + c2*l_m + c3*l_c``."""
        return (
            weights.processing * float(self.processing)
            + weights.memory * float(self.memory)
            + weights.communication * float(self.communication)
        )


def memory_demand(
    application: ApplicationGraph,
    binding: Binding,
    tile: Tile,
) -> int:
    """Bits of memory the binding claims on ``tile`` (§7 constraint 2)."""
    sets = channel_sets(application, binding, tile.name)
    total = 0
    for actor in binding.actors_on(tile.name):
        total += application.requirements(actor).memory(tile.processor_type)
    for channel in sets.tile:
        requirements = application.channel(channel.name)
        total += requirements.buffer_tile * requirements.token_size
    for channel in sets.src:
        requirements = application.channel(channel.name)
        total += requirements.buffer_src * requirements.token_size
    for channel in sets.dst:
        requirements = application.channel(channel.name)
        total += requirements.buffer_dst * requirements.token_size
    return total


def tile_loads(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    binding: Binding,
    tile_name: str,
) -> TileLoad:
    """The ``(l_p, l_m, l_c)`` of ``tile_name`` under ``binding``.

    Denominators use the tile's *remaining* capacities, so the cost
    naturally steers later applications away from occupied tiles (the
    paper assumes unavailable resources are simply not specified).
    """
    tile = architecture.tile(tile_name)
    sets = channel_sets(application, binding, tile_name)

    work_on_tile = sum(
        application.gamma[a]
        * application.requirements(a).execution_time(tile.processor_type)
        for a in binding.actors_on(tile_name)
    )
    total_work = application.total_worst_case_work()
    processing = Fraction(work_on_tile, total_work) if total_work else Fraction(0)

    memory_available = tile.memory_remaining
    demand = memory_demand(application, binding, tile)
    memory = (
        Fraction(demand, memory_available)
        if memory_available > 0
        else (Fraction(0) if demand == 0 else Fraction(10**9))
    )

    outgoing = sum(application.channel(c.name).bandwidth for c in sets.src)
    incoming = sum(application.channel(c.name).bandwidth for c in sets.dst)
    connection_count = len(sets.src) + len(sets.dst)

    def fraction_or_penalty(amount: int, available: int) -> Fraction:
        if available > 0:
            return Fraction(amount, available)
        return Fraction(0) if amount == 0 else Fraction(10**9)

    communication = (
        fraction_or_penalty(outgoing, tile.bandwidth_out_remaining)
        + fraction_or_penalty(incoming, tile.bandwidth_in_remaining)
        + fraction_or_penalty(connection_count, tile.connections_remaining)
    ) / 3
    return TileLoad(processing, memory, communication)


def tile_cost(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    binding: Binding,
    tile_name: str,
    weights: CostWeights,
) -> float:
    """Eqn. 2 evaluated on one tile under ``binding``."""
    return tile_loads(application, architecture, binding, tile_name).combined(
        weights
    )
