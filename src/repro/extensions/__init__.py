"""Extensions: the follow-ups the paper sketches but does not evaluate.

* :mod:`repro.extensions.ordering` — §10.1's "design-time preprocessing
  step that orders the applications" before the allocate-until-failure
  flow.
* :mod:`repro.extensions.dimensioning` — §10.1's "platform dimensioning
  step": the smallest mesh that hosts a given application mix.
* :mod:`repro.extensions.buffer_sizing` — the storage-space /
  throughput trade-off of the authors' companion work (the paper's
  ref [21]): shrink channel buffers while preserving the constraint.
* :mod:`repro.extensions.latency` — end-to-end latency from the same
  self-timed semantics the throughput engine uses.
* :mod:`repro.extensions.tracing` — Gantt-style execution traces of
  constrained executions.
* :mod:`repro.extensions.noc_model` — a detailed wormhole-style NoC
  connection model plugging into §8.1's extension point (paper ref
  [14]).
* :mod:`repro.extensions.dot` — Graphviz/DOT export of graphs,
  architectures and bindings.
"""

from repro.extensions.ordering import (
    ORDERING_STRATEGIES,
    order_applications,
    compare_orderings,
)
from repro.extensions.dimensioning import DimensioningResult, dimension_platform
from repro.extensions.buffer_sizing import (
    BufferSizingResult,
    minimise_buffers,
    buffer_throughput_tradeoff,
)
from repro.extensions.latency import LatencyResult, output_latency
from repro.extensions.tracing import trace_allocation, render_gantt
from repro.extensions.vcd import trace_to_vcd, write_vcd
from repro.extensions.noc_model import NocConnectionModel
from repro.extensions.weight_tuning import (
    TuningResult,
    tune_weights,
    weight_grid,
)
from repro.extensions.dot import (
    sdfg_to_dot,
    architecture_to_dot,
    binding_to_dot,
)

__all__ = [
    "ORDERING_STRATEGIES",
    "order_applications",
    "compare_orderings",
    "DimensioningResult",
    "dimension_platform",
    "BufferSizingResult",
    "minimise_buffers",
    "buffer_throughput_tradeoff",
    "LatencyResult",
    "output_latency",
    "trace_allocation",
    "render_gantt",
    "trace_to_vcd",
    "write_vcd",
    "NocConnectionModel",
    "TuningResult",
    "tune_weights",
    "weight_grid",
    "sdfg_to_dot",
    "architecture_to_dot",
    "binding_to_dot",
]
