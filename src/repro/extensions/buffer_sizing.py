"""Buffer sizing under a throughput constraint (the paper's ref [21]).

The allocation strategy takes the channel buffer sizes in ``Theta`` as
given.  The authors' companion work (Stuijk et al., DAC'06 — "Exploring
trade-offs in buffer requirements and throughput constraints for
synchronous dataflow graphs") asks the converse question: how small can
the buffers get while a throughput constraint still holds?  This module
answers it for a *mapped* application: buffers are shrunk against the
schedule/TDMA-constrained throughput of the binding-aware graph, so the
result accounts for binding, schedules and slices.

Two entry points:

* :func:`minimise_buffers` — per-channel binary search for the minimal
  buffer (intra-tile: ``alpha_tile``; cross-tile: ``alpha_src`` and
  ``alpha_dst`` separately) that keeps the constrained throughput at or
  above the application's constraint.
* :func:`buffer_throughput_tradeoff` — the trade-off curve: constrained
  throughput as a function of a global buffer scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.appmodel.application import ApplicationGraph, ChannelRequirements
from repro.appmodel.binding import Binding, SchedulingFunction
from repro.appmodel.binding_aware import (
    InfeasibleBindingError,
    build_binding_aware_graph,
)
from repro.arch.architecture import ArchitectureGraph
from repro.throughput.constrained import constrained_throughput
from repro.throughput.state_space import DEFAULT_MAX_STATES


@dataclass
class BufferSizingResult:
    """Minimised buffers and what they save.

    ``buffers`` maps channel name -> the new
    :class:`ChannelRequirements`; ``memory_saved`` is in bits (summed
    over the affected tiles), ``throughput_checks`` counts constrained
    explorations spent by the search.
    """

    buffers: Dict[str, ChannelRequirements]
    original: Dict[str, ChannelRequirements]
    achieved_throughput: Fraction
    throughput_checks: int
    #: periodic-phase certificate of the final evaluation (the one that
    #: produced ``achieved_throughput`` with the minimised buffers)
    certificate: Optional[dict] = None

    @property
    def memory_saved(self) -> int:
        saved = 0
        for name, new in self.buffers.items():
            old = self.original[name]
            saved += (old.buffer_tile - new.buffer_tile) * old.token_size
            saved += (old.buffer_src - new.buffer_src) * old.token_size
            saved += (old.buffer_dst - new.buffer_dst) * old.token_size
        return saved

    @property
    def total_buffer_tokens(self) -> int:
        return sum(
            r.buffer_tile + r.buffer_src + r.buffer_dst
            for r in self.buffers.values()
        )


def _evaluate(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    binding: Binding,
    scheduling: SchedulingFunction,
    max_states: int,
):
    """Constrained throughput of the output actor (rate, certificate)."""
    try:
        bag = build_binding_aware_graph(
            application, architecture, binding, slices=dict(scheduling.slices)
        )
    except InfeasibleBindingError:
        return Fraction(0), None
    result = constrained_throughput(
        bag.graph, bag.tile_constraints(scheduling), max_states=max_states
    )
    return result.of(application.output_actor), result.certificate


def minimise_buffers(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    binding: Binding,
    scheduling: SchedulingFunction,
    channels: Optional[Sequence[str]] = None,
    max_states: int = DEFAULT_MAX_STATES,
) -> BufferSizingResult:
    """Shrink channel buffers while keeping the throughput constraint.

    The application's ``Theta`` is updated in place to the minimised
    values (also returned); pass a copy if the original must survive.
    Channels are processed in graph order; per channel each buffer
    bound is binary-searched independently with the others fixed, so
    the result is a (good) greedy local minimum, as in ref [21]'s
    heuristic mode, not a global one.
    """
    constraint = application.throughput_constraint
    names = list(channels) if channels else application.graph.channel_names
    original = {
        name: application.channel_requirements[name] for name in names
    }
    checks = 0

    def meets() -> bool:
        nonlocal checks
        checks += 1
        achieved, _ = _evaluate(
            application, architecture, binding, scheduling, max_states
        )
        return achieved >= constraint and achieved > 0

    if not meets():
        raise ValueError(
            "the starting buffers do not meet the throughput constraint"
        )

    for name in names:
        channel = application.graph.channel(name)
        crosses = (
            not channel.is_self_loop
            and binding.tile_of(channel.src) != binding.tile_of(channel.dst)
        )
        fields = ["buffer_src", "buffer_dst"] if crosses else ["buffer_tile"]
        for field in fields:
            current = getattr(application.channel_requirements[name], field)
            low, high = channel.tokens, current
            while low < high:
                mid = (low + high) // 2
                application.channel_requirements[name] = replace(
                    application.channel_requirements[name], **{field: mid}
                )
                if meets():
                    high = mid
                else:
                    low = mid + 1
            application.channel_requirements[name] = replace(
                application.channel_requirements[name], **{field: high}
            )

    achieved, certificate = _evaluate(
        application, architecture, binding, scheduling, max_states
    )
    checks += 1
    return BufferSizingResult(
        buffers={
            name: application.channel_requirements[name] for name in names
        },
        original=original,
        achieved_throughput=achieved,
        throughput_checks=checks,
        certificate=certificate,
    )


def buffer_throughput_tradeoff(
    application: ApplicationGraph,
    architecture: ArchitectureGraph,
    binding: Binding,
    scheduling: SchedulingFunction,
    scales: Sequence[Fraction] = (
        Fraction(1, 4),
        Fraction(1, 2),
        Fraction(3, 4),
        Fraction(1),
        Fraction(3, 2),
        Fraction(2),
    ),
    max_states: int = DEFAULT_MAX_STATES,
) -> List[Tuple[int, Fraction]]:
    """(total buffer tokens, constrained throughput) per buffer scale.

    Buffers are scaled multiplicatively (floored at the channel's
    initial tokens so the graph stays constructible); the application's
    ``Theta`` is restored afterwards.
    """
    original = dict(application.channel_requirements)
    points: List[Tuple[int, Fraction]] = []
    try:
        for scale in scales:
            total = 0
            for name, theta in original.items():
                channel = application.graph.channel(name)
                floor = channel.tokens

                def scaled(value: int) -> int:
                    return max(int(value * scale), floor, 0)

                new = replace(
                    theta,
                    buffer_tile=scaled(theta.buffer_tile),
                    buffer_src=scaled(theta.buffer_src),
                    buffer_dst=scaled(theta.buffer_dst),
                )
                application.channel_requirements[name] = new
                total += new.buffer_tile + new.buffer_src + new.buffer_dst
            achieved, _ = _evaluate(
                application, architecture, binding, scheduling, max_states
            )
            points.append((total, achieved))
    finally:
        application.channel_requirements.clear()
        application.channel_requirements.update(original)
    return points
