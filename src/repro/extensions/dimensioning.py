"""Platform dimensioning (§10.1): the smallest mesh hosting a mix.

The paper suggests "a platform dimensioning step" as one way to improve
resource utilisation.  :func:`dimension_platform` searches mesh sizes
in increasing tile count (1x1, 1x2, 2x2, 2x3, ...) until the whole
application mix allocates, reporting the smallest sufficient platform
and the utilisation achieved on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.appmodel.application import ApplicationGraph
from repro.arch.architecture import ArchitectureGraph
from repro.arch.presets import mesh_architecture
from repro.arch.tile import ProcessorType
from repro.core.flow import FlowResult, allocate_until_failure
from repro.core.strategy import ResourceAllocator
from repro.core.tile_cost import CostWeights


def _mesh_shapes(max_tiles: int) -> List[Tuple[int, int]]:
    """(rows, cols) pairs sorted by tile count, ties by squareness."""
    shapes = []
    for rows in range(1, max_tiles + 1):
        for cols in range(rows, max_tiles + 1):
            if rows * cols <= max_tiles:
                shapes.append((rows, cols))
    shapes.sort(key=lambda s: (s[0] * s[1], s[1] - s[0]))
    return shapes


@dataclass
class DimensioningResult:
    """Smallest sufficient platform and the flow result on it.

    ``attempts`` records (rows, cols, applications bound) for every
    platform tried, in search order.
    """

    architecture: Optional[ArchitectureGraph]
    flow: Optional[FlowResult]
    attempts: List[Tuple[int, int, int]]

    @property
    def found(self) -> bool:
        return self.architecture is not None

    @property
    def tile_count(self) -> int:
        return len(self.architecture) if self.architecture else 0


def dimension_platform(
    applications: Sequence[ApplicationGraph],
    processor_types: Sequence[ProcessorType],
    weights: Optional[CostWeights] = None,
    max_tiles: int = 16,
    wheel: int = 100,
    memory: int = 1_000_000,
    max_connections: int = 32,
    bandwidth: int = 10_000,
) -> DimensioningResult:
    """Smallest mesh (by tile count) on which every application binds.

    Tile capacities are uniform and given by the keyword arguments;
    processor types rotate over the tiles, so a mesh must have at least
    ``len(processor_types)`` tiles before every type is available.
    Returns a result with ``found=False`` when even ``max_tiles`` tiles
    are insufficient.
    """
    allocator = ResourceAllocator(weights=weights or CostWeights.default())
    attempts: List[Tuple[int, int, int]] = []
    applications = list(applications)
    for rows, cols in _mesh_shapes(max_tiles):
        architecture = mesh_architecture(
            rows,
            cols,
            processor_types,
            wheel=wheel,
            memory=memory,
            max_connections=max_connections,
            bandwidth_in=bandwidth,
            bandwidth_out=bandwidth,
            name=f"mesh{rows}x{cols}-candidate",
        )
        result = allocate_until_failure(
            architecture, applications, allocator=allocator
        )
        attempts.append((rows, cols, result.applications_bound))
        if result.applications_bound == len(applications):
            return DimensioningResult(
                architecture=architecture, flow=result, attempts=attempts
            )
    return DimensioningResult(architecture=None, flow=None, attempts=attempts)
