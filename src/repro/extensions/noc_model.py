"""A detailed NoC connection model (paper §8.1's extension point).

The paper models a connection with a single actor of execution time
``L + ceil(sz/beta)`` and notes that it "can be replaced with a more
detailed model if available, such as the network-on-chip connection
model of [14]" (Moonen et al.).  This module provides such a model for
wormhole-switched guaranteed-service NoCs: a token is serialised into
flits at the source network interface, then pipelined through the
network.

Two sequential stages per connection:

* **injection** — the NI serialises the token at the channel's reserved
  bandwidth: ``ceil(sz / beta)`` time units; one token at a time.
* **traversal** — the head flit takes the path latency ``L`` and the
  remaining flits stream behind it: ``L + ceil(sz / flit_size) - 1``
  time units; one token in flight per connection (conservative for a
  guaranteed-service circuit).

Compared to the simple model the pipeline overlaps injection of token
``k+1`` with traversal of token ``k``, so sustained cross-tile
throughput improves while per-token latency stays conservative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.appmodel.binding_aware import ConnectionModel, ConnectionStage


def _ceil_div(numerator: int, denominator: int) -> int:
    return -(-numerator // denominator)


@dataclass
class NocConnectionModel(ConnectionModel):
    """Wormhole NoC connection model with ``flit_size``-bit flits."""

    flit_size: int = 32

    def __post_init__(self) -> None:
        if self.flit_size < 1:
            raise ValueError("flit size must be at least one bit")

    def stages(self, connection, requirements) -> List[ConnectionStage]:
        injection = _ceil_div(requirements.token_size, requirements.bandwidth)
        flits = max(_ceil_div(requirements.token_size, self.flit_size), 1)
        traversal = connection.latency + flits - 1
        return [
            ConnectionStage(
                suffix="inj", execution_time=max(injection, 1), sequential=True
            ),
            ConnectionStage(
                suffix="net", execution_time=traversal, sequential=True
            ),
        ]
