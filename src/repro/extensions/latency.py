"""End-to-end latency analysis from the self-timed semantics.

Throughput (the paper's constraint metric) says nothing about how long
the *first* result takes.  The same self-timed execution that yields
throughput also yields latency: the completion time of the output
actor's first firing(s) from a cold start.  This module exposes both
the platform-independent latency of an (application) SDFG and the
latency of a binding-aware graph, reusing
:meth:`repro.throughput.state_space.SelfTimedExecution.execute_until`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector
from repro.throughput.state_space import (
    DEFAULT_MAX_STATES,
    SelfTimedExecution,
    throughput,
)


@dataclass
class LatencyResult:
    """First-output latency plus the steady-state period.

    ``latency`` is the completion time of the output actor's first
    ``firings`` firings under self-timed execution from the initial
    token distribution; ``iteration_period`` is the reciprocal of the
    steady-state iteration rate (None when the rate is unbounded),
    ``deadlocked`` flags graphs that never produce the output.
    """

    output_actor: str
    firings: int
    latency: Optional[int]
    iteration_period: Optional[Fraction]

    @property
    def deadlocked(self) -> bool:
        return self.latency is None


def output_latency(
    graph: SDFGraph,
    output_actor: str,
    firings: Optional[int] = None,
    execution_times: Optional[Dict[str, int]] = None,
    auto_concurrency: bool = True,
    max_states: int = DEFAULT_MAX_STATES,
) -> LatencyResult:
    """Latency of the first ``firings`` completions of ``output_actor``.

    ``firings`` defaults to the actor's repetition-vector entry (one
    full graph iteration's worth of outputs).  Execution uses the same
    semantics as the throughput engine, so on a binding-aware graph the
    result reflects buffer limits and connection delays (not TDMA
    gating — combine with a full-wheel slice assumption or interpret as
    the application-exclusive latency).
    """
    if not graph.has_actor(output_actor):
        raise KeyError(f"unknown actor {output_actor!r}")
    if firings is None:
        firings = repetition_vector(graph)[output_actor]
    engine = SelfTimedExecution(
        graph,
        execution_times=execution_times,
        auto_concurrency=auto_concurrency,
        max_states=max_states,
    )
    latency = engine.execute_until(output_actor, firings)

    rate = throughput(
        graph,
        execution_times=execution_times,
        auto_concurrency=auto_concurrency,
        max_states=max_states,
    ).iteration_rate
    if rate == float("inf"):
        period: Optional[Fraction] = None
    elif rate == 0:
        period = None
    else:
        period = 1 / rate
    return LatencyResult(
        output_actor=output_actor,
        firings=firings,
        latency=latency,
        iteration_period=period,
    )
