"""Graphviz/DOT export of SDFGs, architectures and bindings.

Pure string generation (no graphviz dependency); the output renders
with ``dot -Tpdf``.  Bindings are drawn as one cluster per tile, which
makes cost-weight effects (clustering vs. spreading) visible at a
glance.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.appmodel.application import ApplicationGraph
from repro.appmodel.binding import Binding
from repro.arch.architecture import ArchitectureGraph
from repro.sdf.graph import SDFGraph


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def _edge_label(channel) -> str:
    parts = []
    if channel.production != 1 or channel.consumption != 1:
        parts.append(f"{channel.production},{channel.consumption}")
    if channel.tokens:
        parts.append(f"{channel.tokens}T")
    return " ".join(parts)


def sdfg_to_dot(graph: SDFGraph, name: Optional[str] = None) -> str:
    """DOT digraph of an SDFG: rates and initial tokens on the edges."""
    lines = [f"digraph {_quote(name or graph.name)} {{"]
    lines.append("  rankdir=LR;")
    lines.append("  node [shape=circle];")
    for actor in graph.actors:
        lines.append(
            f"  {_quote(actor.name)} "
            f"[label={_quote(f'{actor.name} ({actor.execution_time})')}];"
        )
    for channel in graph.channels:
        label = _edge_label(channel)
        attributes = f" [label={_quote(label)}]" if label else ""
        lines.append(
            f"  {_quote(channel.src)} -> {_quote(channel.dst)}{attributes};"
        )
    lines.append("}")
    return "\n".join(lines)


def architecture_to_dot(architecture: ArchitectureGraph) -> str:
    """DOT digraph of an architecture: tiles as boxes, links with latency."""
    lines = [f"digraph {_quote(architecture.name)} {{"]
    lines.append("  node [shape=box];")
    for tile in architecture.tiles:
        label = (
            f"{tile.name}\\n{tile.processor_type.name}\\n"
            f"w={tile.wheel} m={tile.memory}"
        )
        lines.append(f"  {_quote(tile.name)} [label={_quote(label)}];")
    for connection in architecture.connections:
        lines.append(
            f"  {_quote(connection.src)} -> {_quote(connection.dst)} "
            f"[label={_quote(str(connection.latency))}];"
        )
    lines.append("}")
    return "\n".join(lines)


def binding_to_dot(
    application: ApplicationGraph,
    binding: Binding,
    architecture: Optional[ArchitectureGraph] = None,
) -> str:
    """DOT digraph of a bound application: one cluster per tile.

    Cross-tile channels are drawn dashed (they occupy NI connections
    and bandwidth); intra-tile channels solid.
    """
    graph = application.graph
    lines = [f"digraph {_quote(f'{graph.name}-binding')} {{"]
    lines.append("  rankdir=LR;")
    lines.append("  node [shape=circle];")
    by_tile: Dict[str, list] = {}
    for actor in graph.actor_names:
        by_tile.setdefault(binding.tile_of(actor), []).append(actor)
    for index, (tile, actors) in enumerate(sorted(by_tile.items())):
        processor = ""
        if architecture is not None and architecture.has_tile(tile):
            processor = f" ({architecture.tile(tile).processor_type.name})"
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(tile + processor)};")
        for actor in actors:
            lines.append(f"    {_quote(actor)};")
        lines.append("  }")
    for channel in graph.channels:
        crosses = (
            not channel.is_self_loop
            and binding.tile_of(channel.src) != binding.tile_of(channel.dst)
        )
        label = _edge_label(channel)
        attributes = []
        if label:
            attributes.append(f"label={_quote(label)}")
        if crosses:
            attributes.append("style=dashed")
        rendered = f" [{', '.join(attributes)}]" if attributes else ""
        lines.append(
            f"  {_quote(channel.src)} -> {_quote(channel.dst)}{rendered};"
        )
    lines.append("}")
    return "\n".join(lines)
